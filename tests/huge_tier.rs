//! Gated `huge`-tier drill: generate a million-node topology, round-trip
//! it through the streamed MCTB pack/unpack path, and run one batched
//! totals sweep, checking bit-identity across BFS lane widths.
//!
//! This is the end-to-end proof behind `mcs suite --scale huge`: the
//! streaming generator, the compact CSR build, the out-of-core store
//! path, and the leaf-folded totals kernel all touch a graph three
//! orders of magnitude past the paper's. It is `#[ignore]`d because the
//! build takes minutes and gigabytes; CI's `huge-smoke` job and
//! `cargo test --release --test huge_tier -- --ignored` run it.

use mcast_core::gen::tiers::{tiers, TiersParams};
use mcast_core::store::format::{load_graph, save_graph};
use mcast_core::topology::batch::BatchBfs;
use mcast_core::topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
#[ignore = "million-node build (minutes, GiBs); run with --ignored or via CI huge-smoke"]
fn million_node_generate_pack_sweep_round_trip() {
    let params = TiersParams::ti1000000();
    assert_eq!(params.node_count(), 1_015_200);
    let graph = tiers(params, &mut StdRng::seed_from_u64(1999)).expect("huge tiers params valid");
    assert_eq!(graph.node_count(), 1_015_200);
    assert!(graph.edge_count() >= 1_000_000, "{}", graph.edge_count());

    // Out-of-core round trip: the streamed save must reload into the
    // same graph, byte-validated (header + payload checksums) on the way
    // back in.
    let dir = std::env::temp_dir().join(format!("mcast-huge-tier-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("ti1000000.mct");
    save_graph(&path, &graph).expect("streamed save");
    let back = load_graph(&path).expect("streamed load");
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(graph, back);

    // One batched totals sweep over 64 spread-out sources. The suite's
    // S(r) numbers come from exactly this histogram, so the lane width
    // must never change a bit: 8 narrow (64-lane) sweeps folded together
    // equal one wide (512-lane) sweep.
    let n = graph.node_count();
    let sources: Vec<NodeId> = (0..64).map(|i| ((i * (n / 64)) + n / 128) as NodeId).collect();

    let mut narrow = BatchBfs::new(&graph);
    narrow.force_words(Some(1));
    let mut folded: Vec<u64> = Vec::new();
    for chunk in sources.chunks(8) {
        narrow.run_totals(chunk);
        let t = narrow.level_totals();
        if t.len() > folded.len() {
            folded.resize(t.len(), 0);
        }
        for (r, &c) in t.iter().enumerate() {
            folded[r] += c;
        }
    }

    let mut wide = BatchBfs::new(&graph);
    wide.force_words(Some(8));
    wide.run_totals(&sources);
    assert_eq!(folded, wide.level_totals().to_vec());

    // Sanity on the histogram itself: r = 0 counts the sources, the
    // topology is connected so every lane reaches every node.
    assert_eq!(folded[0], 64);
    assert_eq!(folded.iter().sum::<u64>(), 64 * n as u64);
}
