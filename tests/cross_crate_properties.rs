//! Property-based tests spanning crates: generator outputs feed the tree
//! machinery, and the measured quantities obey the paper's structural
//! inequalities on arbitrary random inputs.

use mcast_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Reference delivery-tree size: explicit union of BFS paths.
fn brute_tree_links(graph: &Graph, source: NodeId, receivers: &[NodeId]) -> u64 {
    let tree = Bfs::new(graph).run(source);
    let mut edges: HashSet<(NodeId, NodeId)> = HashSet::new();
    for &r in receivers {
        if let Some(path) = tree.path_to(r) {
            for w in path.windows(2) {
                let e = if w[0] < w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                };
                edges.insert(e);
            }
        }
    }
    edges.len() as u64
}

fn arbitrary_connected_graph() -> impl Strategy<Value = Graph> {
    (3usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        // Degree 3 needs enough pairs; clamp for the tiniest graphs.
        let degree = 3.0f64.min((n - 1) as f64);
        mcast_core::gen::random::random_with_degree(n, degree, &mut rng).expect("valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sizer_matches_brute_force_on_random_graphs(
        graph in arbitrary_connected_graph(),
        source_pick in any::<u32>(),
        receiver_picks in proptest::collection::vec(any::<u32>(), 1..25),
    ) {
        let n = graph.node_count() as u32;
        let source = source_pick % n;
        let receivers: Vec<NodeId> = receiver_picks.iter().map(|&r| r % n).collect();
        let mut sizer = DeliverySizer::from_graph(&graph, source);
        let fast = sizer.tree_links(&receivers);
        let brute = brute_tree_links(&graph, source, &receivers);
        prop_assert_eq!(fast, brute);
    }

    #[test]
    fn tree_size_is_monotone_under_receiver_addition(
        graph in arbitrary_connected_graph(),
        receiver_picks in proptest::collection::vec(any::<u32>(), 2..20),
    ) {
        let n = graph.node_count() as u32;
        let receivers: Vec<NodeId> = receiver_picks.iter().map(|&r| r % n).collect();
        let mut sizer = DeliverySizer::from_graph(&graph, 0);
        let mut prev = 0;
        for cut in 1..=receivers.len() {
            let l = sizer.tree_links(&receivers[..cut]);
            prop_assert!(l >= prev, "shrank from {prev} to {l}");
            prev = l;
        }
    }

    #[test]
    fn tree_bounded_by_unicast_and_distinct_count(
        graph in arbitrary_connected_graph(),
        receiver_picks in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let n = graph.node_count() as u32;
        let receivers: Vec<NodeId> = receiver_picks
            .iter()
            .map(|&r| 1 + (r % (n - 1))) // never the source 0
            .collect();
        let mut sizer = DeliverySizer::from_graph(&graph, 0);
        let (tree, unicast) = sizer.sample(&receivers);
        prop_assert!(tree <= unicast, "tree {tree} > unicast {unicast}");
        let distinct: HashSet<_> = receivers.iter().collect();
        // Reaching d distinct non-source nodes needs at least d links and
        // at most the whole graph.
        prop_assert!(tree >= distinct.len() as u64);
        prop_assert!(tree <= graph.edge_count() as u64);
    }

    #[test]
    fn reachability_profile_consistent_with_mean_distance(
        graph in arbitrary_connected_graph(),
    ) {
        // ū from metrics == Σ r·S(r)/(N−1) from the profile.
        let prof = Reachability::from_source(&graph, 0);
        let n = graph.node_count() as f64;
        let from_profile: f64 = (1..=prof.eccentricity())
            .map(|r| r as f64 * prof.s(r) as f64)
            .sum::<f64>() / (n - 1.0);
        let direct = mcast_core::topology::metrics::mean_distance_from(&graph, 0);
        prop_assert!((from_profile - direct).abs() < 1e-9);
    }

    #[test]
    fn generated_topologies_always_satisfy_cleaning_invariants(
        seed in any::<u64>(),
        choice in 0usize..4,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = match choice {
            0 => mcast_core::gen::transit_stub::transit_stub(
                TransitStubParams {
                    transit_domains: 2,
                    transit_domain_size: 3,
                    stubs_per_transit_node: 2,
                    stub_domain_size: 3,
                    transit_edge_prob: 0.5,
                    stub_edge_prob: 0.5,
                    extra_transit_stub_edges: 4,
                    extra_stub_stub_edges: 4,
                },
                &mut rng,
            )
            .unwrap(),
            1 => mcast_core::gen::tiers::tiers(
                TiersParams {
                    wan_nodes: 6,
                    man_count: 2,
                    man_nodes: 5,
                    lans_per_man: 2,
                    lan_hosts: 4,
                    wan_redundancy: 1,
                    man_redundancy: 1,
                },
                &mut rng,
            )
            .unwrap(),
            2 => mcast_core::gen::power_law::power_law(
                PowerLawParams { nodes: 60, edges_per_node: 1.5 },
                &mut rng,
            )
            .unwrap(),
            _ => mcast_core::gen::overlay::overlay(
                OverlayParams {
                    grid_dim: 3,
                    cluster_size: 6,
                    intra_extra_edges: 1,
                    tunnel_length: 1,
                    long_range_tunnels: 2,
                },
                &mut rng,
            )
            .unwrap(),
        };
        // Connected, deduplicated, no self-loops, symmetric.
        prop_assert!(Components::find(&graph).is_connected());
        for v in graph.nodes() {
            let ns = graph.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!ns.contains(&v));
        }
    }

    #[test]
    fn ratio_sample_is_at_least_longest_path_fraction(
        graph in arbitrary_connected_graph(),
        seed in any::<u64>(),
    ) {
        // L ≥ max distance and Σdist ≤ m·max ⇒ ratio = L·m/Σdist ≥ 1.
        let mut measurer = SourceMeasurer::new(&graph, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = 3.min(graph.node_count() - 1);
        let ratio = measurer.ratio_sample(m, &mut rng);
        prop_assert!(ratio >= 1.0 - 1e-12, "ratio {ratio}");
        prop_assert!(ratio <= m as f64 + 1e-12, "ratio {ratio}");
    }
}
