//! §5 end to end: the Metropolis sampler's tree sizes are monotone in β,
//! sandwiched by the closed-form β = ±∞ extremes, and the normalised
//! affinity effect is stable under network growth (the §5.4 conjecture).

use mcast_core::prelude::*;
use mcast_core::tree::affinity::mean_tree_size;
use mcast_core::tree::extremes;
use rand::SeedableRng;

fn l_beta(depth: u32, n: usize, beta: f64, seed: u64) -> f64 {
    let graph = KaryTree::new(2, depth).unwrap().into_graph();
    let tree = RootedTree::from_graph(&graph, 0);
    mean_tree_size(
        &tree,
        n,
        &AffinityConfig {
            beta,
            burn_in_sweeps: 120,
            sample_sweeps: 200,
            seed,
        },
    )
    .mean()
}

#[test]
fn tree_size_is_monotone_decreasing_in_beta() {
    let depth = 8;
    let n = 40;
    let betas = [-10.0, -1.0, 0.0, 1.0, 10.0];
    let sizes: Vec<f64> = betas.iter().map(|&b| l_beta(depth, n, b, 3)).collect();
    for w in sizes.windows(2) {
        assert!(
            w[0] > w[1] - 2.0, // allow MC slack on neighbouring betas
            "sizes not decreasing: {sizes:?}"
        );
    }
    // The strong ends must be decisively ordered.
    assert!(sizes[0] > sizes[4] + 10.0, "{sizes:?}");
}

#[test]
fn extremes_sandwich_the_sampled_chain() {
    let depth = 8u32;
    for n in [5usize, 20, 80] {
        let packed = extremes::affinity_with_replacement(depth, n as u64) as f64;
        let spread = extremes::disaffinity_with_replacement(2, depth, n as u64) as f64;
        for beta in [-5.0, 0.0, 5.0] {
            let l = l_beta(depth, n, beta, 17 ^ n as u64);
            assert!(
                l >= packed - 1e-9,
                "n={n} beta={beta}: L={l} below packed bound {packed}"
            );
            assert!(
                l <= spread + 1e-9,
                "n={n} beta={beta}: L={l} above spread bound {spread}"
            );
        }
    }
}

#[test]
fn strong_affinity_approaches_the_packed_bound() {
    let depth = 8;
    let n = 30;
    let l = l_beta(depth, n, 60.0, 5);
    let packed = extremes::affinity_with_replacement(depth, n as u64) as f64;
    // β = 60 is effectively β = ∞: within a few links of a single path.
    assert!(l < packed + 6.0, "L = {l}, bound {packed}");
}

#[test]
fn strong_disaffinity_approaches_the_spread_bound() {
    let depth = 7;
    let n = 16;
    let l = l_beta(depth, n, -60.0, 7);
    let spread = extremes::disaffinity_with_replacement(2, depth, n as u64) as f64;
    assert!(
        l > 0.85 * spread,
        "L = {l} vs spread bound {spread} (should be close)"
    );
}

#[test]
fn normalised_affinity_effect_is_stable_under_growth() {
    // §5.4: going from D = 8 to D = 10 (4x nodes), the *difference* in
    // L_β(n)/L_0(n) at fixed n stays roughly constant.
    let n = 64;
    let effect = |depth: u32| {
        let base = l_beta(depth, n, 0.0, 11);
        let strong = l_beta(depth, n, 1.0, 11);
        (base - strong) / base
    };
    let e8 = effect(8);
    let e10 = effect(10);
    assert!(
        (e8 - e10).abs() < 0.15,
        "relative affinity effect drifted: D=8 {e8:.3} vs D=10 {e10:.3}"
    );
}

#[test]
fn beta_zero_equals_uniform_sampling_on_the_tree_graph() {
    // Independent check across crates: β = 0 chain vs DeliverySizer
    // uniform sampling.
    let depth = 7u32;
    let n = 25usize;
    let graph = KaryTree::new(2, depth).unwrap().into_graph();
    let mcmc = l_beta(depth, n, 0.0, 23);

    let mut sizer = DeliverySizer::from_graph(&graph, 0);
    let pool = ReceiverPool::AllExceptSource {
        nodes: graph.node_count(),
        source: 0,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(29);
    let mut buf = Vec::new();
    let mut direct = RunningStats::new();
    for _ in 0..3000 {
        mcast_core::tree::sampling::with_replacement(&pool, n, &mut rng, &mut buf);
        direct.push(sizer.tree_links(&buf) as f64);
    }
    assert!(
        (mcmc - direct.mean()).abs() < 3.0,
        "mcmc {mcmc} vs direct {}",
        direct.mean()
    );
}
