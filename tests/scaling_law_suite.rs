//! The headline reproduction: across the full eight-topology suite, the
//! measured `L(m)/ū` curves follow the Chuang–Sirbu law `m^0.8` to the
//! same rough degree the paper reports.

use mcast_core::experiments::{networks, suite, RunConfig};
use mcast_core::prelude::*;

#[test]
fn every_suite_network_fits_an_exponent_near_0_8() {
    let cfg = RunConfig::fast();
    // The paper's own caveat applies: the topologies with sub-exponential
    // reachability (ti5000, ARPA, MBone) are "somewhat less in agreement"
    // with m^0.8 — and our stand-ins land their fitted exponents lower
    // (0.60–0.65) than the exponential family (0.76–0.85).
    let sub_exponential = ["ti5000", "ARPA", "MBone"];
    for net in networks::suite(&cfg) {
        let study = ScalingStudy::new(net.graph.clone())
            .with_samples(8, 8)
            .with_seed(cfg.seed);
        let fit = study.scaling_exponent();
        let range = if sub_exponential.contains(&net.name) {
            0.55..0.85
        } else {
            0.70..0.92
        };
        assert!(
            range.contains(&fit.exponent),
            "{}: exponent {} outside {range:?}",
            net.name,
            fit.exponent
        );
        assert!(
            fit.r2 > 0.93,
            "{}: poor power-law fit R2 {}",
            net.name,
            fit.r2
        );
    }
}

#[test]
fn fig1_report_exponents_cluster_around_0_8() {
    let cfg = RunConfig::fast();
    let report = suite::run("fig1", &cfg).unwrap();
    let exponents: Vec<f64> = report
        .notes
        .iter()
        .filter(|n| n.contains("fitted exponent"))
        .map(|n| {
            n.split("exponent ")
                .nth(1)
                .and_then(|t| t.split(' ').next())
                .and_then(|t| t.parse().ok())
                .expect("parsable exponent note")
        })
        .collect();
    assert_eq!(exponents.len(), 8);
    let mean = exponents.iter().sum::<f64>() / exponents.len() as f64;
    assert!(
        (0.7..0.9).contains(&mean),
        "mean exponent {mean} across suite (values {exponents:?})"
    );
}

#[test]
fn multicast_beats_unicast_everywhere() {
    // The efficiency claim behind the whole literature: L(m) < ū·m for
    // m ≥ 2 on every topology.
    let cfg = RunConfig::fast();
    for net in networks::suite(&cfg) {
        let study = ScalingStudy::new(net.graph.clone())
            .with_samples(6, 6)
            .with_seed(1);
        let ms = [2usize, 8, 32];
        for p in study.ratio_curve(&ms) {
            let mean = p.stats.mean();
            assert!(
                mean < p.x as f64,
                "{}: L/u = {mean} at m = {} (no multicast gain?)",
                net.name,
                p.x
            );
            assert!(mean >= 1.0, "{}: ratio below 1 at m = {}", net.name, p.x);
        }
    }
}

#[test]
fn reachability_classes_split_the_suite_as_in_the_paper() {
    let cfg = RunConfig::fast();
    let expect_exponential = ["r100", "ts1000", "ts1008", "Internet", "AS"];
    let expect_sub = ["ti5000", "ARPA", "MBone"];
    for net in networks::suite(&cfg) {
        let class = ScalingStudy::new(net.graph.clone()).reachability_class();
        if expect_exponential.contains(&net.name) {
            assert_eq!(
                class,
                ReachabilityClass::Exponential,
                "{} should be exponential",
                net.name
            );
        } else {
            assert!(expect_sub.contains(&net.name));
            assert_eq!(
                class,
                ReachabilityClass::SubExponential,
                "{} should be sub-exponential",
                net.name
            );
        }
    }
}
