//! Structural checks over every experiment report: each paper artefact
//! regenerates, carries the right panels and series, and its rendered
//! forms round-trip.

use mcast_core::experiments::{render, suite, Report, RunConfig};

fn fast() -> RunConfig {
    RunConfig::fast()
}

fn assert_renders(report: &Report) {
    let ascii = render::report_ascii(report);
    assert!(ascii.contains(&report.id), "ascii missing id");
    let json = render::report_json(report);
    let back: Report = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(&back, report);
    for d in &report.datasets {
        let csv = render::dataset_csv(d);
        assert!(csv.lines().count() > 1, "{}: empty CSV", d.id);
        let dat = render::dataset_gnuplot(d);
        assert!(dat.contains("# series:"), "{}: empty dat", d.id);
    }
}

#[test]
fn table1_has_all_eight_networks() {
    let r = suite::run("table1", &fast()).unwrap();
    assert_eq!(r.tables.len(), 1);
    assert_eq!(r.tables[0].rows.len(), 8);
    assert_renders(&r);
}

#[test]
fn exact_figures_have_expected_panels() {
    for (id, panels) in [
        ("fig2", vec![("fig2a", 4usize), ("fig2b", 4)]),
        ("fig3", vec![("fig3a", 4), ("fig3b", 4)]),
        ("fig4", vec![("fig4a", 4), ("fig4b", 4)]),
        ("fig5", vec![("fig5a", 4), ("fig5b", 4)]),
        ("fig8", vec![("fig8", 3), ("fig8-sim", 2)]),
    ] {
        let r = suite::run(id, &fast()).unwrap();
        assert_eq!(r.datasets.len(), panels.len(), "{id}");
        for (p, series_count) in &panels {
            let d = r.dataset(p).unwrap_or_else(|| panic!("{id}: missing {p}"));
            assert_eq!(d.series.len(), *series_count, "{p}");
            for s in &d.series {
                assert!(!s.points.is_empty(), "{p}/{}", s.label);
                assert!(
                    s.points.iter().all(|p| p.0.is_finite() && p.1.is_finite()),
                    "{p}/{}: non-finite point",
                    s.label
                );
            }
        }
        assert_renders(&r);
    }
}

#[test]
fn fig7_reports_reachability_for_all_networks() {
    let r = suite::run("fig7", &fast()).unwrap();
    let a = r.dataset("fig7a").unwrap();
    let b = r.dataset("fig7b").unwrap();
    assert_eq!(a.series.len() + b.series.len(), 8);
    assert_renders(&r);
}

#[test]
fn unknown_experiment_is_none() {
    assert!(suite::run("fig99", &fast()).is_none());
}

#[test]
fn serde_json_is_available_for_artifacts() {
    // The CLI writes .json artefacts; this pins the dependency contract.
    let r = suite::run("fig8", &fast()).unwrap();
    let json = render::report_json(&r);
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["id"], "fig8");
}
