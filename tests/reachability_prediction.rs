//! §4's approximation chain, end to end: the Eq 30 prediction driven by a
//! topology's *measured* reachability function should track the
//! *simulated* tree size on exponential-reachability networks, and the
//! k-ary asymptotic slope should emerge on them too.

use mcast_core::experiments::{networks, RunConfig};
use mcast_core::prelude::*;

fn relative_prediction_error(net: &mcast_core::experiments::networks::Network, n: usize) -> f64 {
    let study = ScalingStudy::new(net.graph.clone())
        .with_samples(10, 10)
        .with_seed(77);
    let predicted = study.predicted_tree_size(n);
    // Measured: recover raw links from the normalised curve via ū.
    let curve = study.normalized_tree_curve(&[n]);
    let normalised = curve[0].stats.mean();
    let sources: Vec<NodeId> = (0..32)
        .map(|i| (i * net.graph.node_count() / 32) as NodeId)
        .collect();
    let (ubar, _) = mcast_core::topology::metrics::sampled_path_stats(&net.graph, &sources);
    let measured = normalised * n as f64 * ubar;
    (predicted - measured).abs() / measured
}

#[test]
fn eq30_tracks_simulation_on_exponential_networks() {
    let cfg = RunConfig::fast();
    // The Eq 30 "receivers equally likely downstream of every level-l
    // link" assumption is exact-ish on homogeneous graphs but crude on
    // heavy-tailed ones (hubs concentrate downstream mass), so the
    // power-law AS stand-in gets a looser band.
    for (net, tol) in [
        (networks::r100(&cfg), 0.25),
        (networks::ts1000(&cfg), 0.25),
        (networks::as_map(&cfg), 0.45),
    ] {
        for n in [8usize, 64, 512] {
            let n = n.min(net.graph.node_count() / 2);
            let err = relative_prediction_error(&net, n);
            assert!(
                err < tol,
                "{} at n={n}: Eq 30 off by {:.0}%",
                net.name,
                err * 100.0
            );
        }
    }
}

#[test]
fn normalized_curve_is_linear_in_ln_n_only_for_exponential_reachability() {
    let cfg = RunConfig::fast();
    let linearity = |net: &networks::Network| -> f64 {
        let study = ScalingStudy::new(net.graph.clone())
            .with_samples(8, 8)
            .with_seed(5);
        let cap = net.graph.node_count().min(4000);
        // Start at n = 8: the first couple of points carry the small-n
        // curvature the paper's asymptote explicitly excludes (5 < n).
        let ns: Vec<usize> = (3..)
            .map(|i| 2usize.pow(i))
            .take_while(|&n| n <= cap)
            .collect();
        let curve = study.normalized_tree_curve(&ns);
        let pts: Vec<(f64, f64)> = curve
            .iter()
            .map(|p| ((p.x as f64).ln(), p.stats.mean()))
            .collect();
        linear_fit(&pts).unwrap().r2
    };
    let ts1000 = linearity(&networks::ts1000(&cfg));
    let ti5000 = linearity(&networks::ti5000(&cfg));
    assert!(ts1000 > 0.97, "ts1000 linearity {ts1000}");
    assert!(
        ti5000 < ts1000,
        "ti5000 ({ti5000}) should fit worse than ts1000 ({ts1000})"
    );
}

#[test]
fn empirical_profiles_agree_with_topology_reachability() {
    // The S(r) the prediction consumes is exactly what BFS reports.
    let cfg = RunConfig::fast();
    let net = networks::arpa(&cfg);
    let profile = Reachability::from_source(&net.graph, 0);
    assert_eq!(profile.total() as usize, net.graph.node_count());
    assert_eq!(profile.s(0), 1);
    // ARPA is chain-heavy: eccentricity near the diameter (10 ± a few).
    assert!(profile.eccentricity() >= 6, "{}", profile.eccentricity());
}
