//! Cross-crate ground truth: the analytical formulas of `mcast-analysis`
//! (§3 of the paper) must agree with brute-force Monte-Carlo simulation
//! on real k-ary tree graphs built by `mcast-gen` and measured by
//! `mcast-tree`.

use mcast_core::analysis::{kary, nm};
use mcast_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn simulate_leaves(k: u32, depth: u32, n: usize, trials: usize, seed: u64) -> RunningStats {
    let tree = KaryTree::new(k, depth).unwrap();
    let graph = tree.graph();
    let pool = ReceiverPool::IdRange(tree.first_leaf()..graph.node_count() as NodeId);
    let mut measurer = SourceMeasurer::with_pool(graph, tree.root(), pool);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    for _ in 0..trials {
        stats.push(measurer.tree_sample(n, &mut rng) as f64);
    }
    stats
}

fn simulate_all_sites(k: u32, depth: u32, n: usize, trials: usize, seed: u64) -> RunningStats {
    let tree = KaryTree::new(k, depth).unwrap();
    let graph = tree.graph();
    let mut measurer = SourceMeasurer::new(graph, tree.root());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RunningStats::new();
    for _ in 0..trials {
        stats.push(measurer.tree_sample(n, &mut rng) as f64);
    }
    stats
}

#[test]
fn eq4_matches_simulation_across_k_and_depth() {
    for (k, depth) in [(2u32, 8u32), (3, 5), (4, 4)] {
        for n in [1usize, 3, 10, 50, 400] {
            let exact = kary::l_hat_leaves(f64::from(k), depth, n as f64);
            let sim = simulate_leaves(k, depth, n, 600, 0xE44 ^ n as u64);
            let tol = 4.0 * sim.std_err() + 0.02 * exact;
            assert!(
                (exact - sim.mean()).abs() < tol,
                "k={k} D={depth} n={n}: exact {exact} vs sim {} ± {}",
                sim.mean(),
                sim.std_err()
            );
        }
    }
}

#[test]
fn eq21_matches_simulation_with_receivers_everywhere() {
    for (k, depth) in [(2u32, 8u32), (3, 5)] {
        for n in [1usize, 8, 64, 512] {
            let exact = kary::l_hat_all_sites(f64::from(k), depth, n as f64);
            let sim = simulate_all_sites(k, depth, n, 600, 0xE21 ^ n as u64);
            let tol = 4.0 * sim.std_err() + 0.02 * exact;
            assert!(
                (exact - sim.mean()).abs() < tol,
                "k={k} D={depth} n={n}: exact {exact} vs sim {} ± {}",
                sim.mean(),
                sim.std_err()
            );
        }
    }
}

#[test]
fn eq18_matches_distinct_receiver_simulation() {
    let (k, depth) = (2u32, 10u32);
    let tree = KaryTree::new(k, depth).unwrap();
    let graph = tree.graph();
    let pool = ReceiverPool::IdRange(tree.first_leaf()..graph.node_count() as NodeId);
    let mut measurer = SourceMeasurer::with_pool(graph, tree.root(), pool);
    let mut rng = StdRng::seed_from_u64(0xE18);
    for m in [1usize, 16, 128, 700] {
        let theory = nm::l_of_m_leaves(f64::from(k), depth, m as f64);
        let mut stats = RunningStats::new();
        for _ in 0..600 {
            // ratio · (m·D / m) recovers L because every leaf sits at
            // depth D; ratio_sample returns L·m/Σdist = L/D.
            stats.push(measurer.ratio_sample(m, &mut rng) * f64::from(depth));
        }
        let tol = 4.0 * stats.std_err() + 0.02 * theory;
        assert!(
            (theory - stats.mean()).abs() < tol,
            "m={m}: theory {theory} vs sim {} ± {}",
            stats.mean(),
            stats.std_err()
        );
    }
}

#[test]
fn occupancy_conversion_matches_observed_distinct_counts() {
    // Eq 1 in vivo: draw n with replacement, count distinct leaves.
    let tree = KaryTree::new(2, 9).unwrap();
    let m_total = tree.leaf_count();
    let pool = ReceiverPool::IdRange(tree.first_leaf()..tree.node_count() as NodeId);
    let mut rng = StdRng::seed_from_u64(0xE01);
    let mut buf = Vec::new();
    for n in [10usize, 100, 1000] {
        let mut stats = RunningStats::new();
        for _ in 0..300 {
            mcast_core::tree::sampling::with_replacement(&pool, n, &mut rng, &mut buf);
            let mut seen = buf.clone();
            seen.sort_unstable();
            seen.dedup();
            stats.push(seen.len() as f64);
        }
        let predicted = nm::expected_distinct(m_total as f64, n as f64);
        assert!(
            (stats.mean() - predicted).abs() < 4.0 * stats.std_err() + 0.5,
            "n={n}: predicted {predicted} vs observed {}",
            stats.mean()
        );
    }
}

#[test]
fn asymptote_slope_emerges_in_simulation() {
    // The paper's core claim, measured end-to-end: L̂(n)/n declines
    // linearly in ln n with slope −1/ln k on a big binary tree.
    let (k, depth) = (2u32, 13u32);
    let ns = [32usize, 128, 512, 2048];
    let mut pts = Vec::new();
    for &n in &ns {
        let sim = simulate_leaves(k, depth, n, 300, 0xA5);
        pts.push(((n as f64).ln(), sim.mean() / n as f64));
    }
    let fit = linear_fit(&pts).unwrap();
    let predicted = -1.0 / f64::from(k).ln();
    assert!(
        (fit.slope - predicted).abs() / predicted.abs() < 0.1,
        "slope {} vs predicted {predicted}",
        fit.slope
    );
    assert!(fit.r2 > 0.99, "r2 {}", fit.r2);
}
