//! Property-based tests for the topology generators.

use mcast_gen::hierarchical::{hierarchical, HierarchicalParams, Level};
use mcast_gen::kary::KaryTree;
use mcast_gen::lattice::{grid_2d, torus_2d};
use mcast_gen::overlay::{overlay, OverlayParams};
use mcast_gen::power_law::{power_law, PowerLawParams};
use mcast_gen::random::{gnm, gnp};
use mcast_gen::tiers::{euclidean_mst, tiers, TiersParams};
use mcast_gen::transit_stub::{transit_stub_with_layout, TransitStubParams};
use mcast_gen::waxman::{waxman, WaxmanParams};
use mcast_topology::bfs::Bfs;
use mcast_topology::components::Components;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn kary_structure_invariants(k in 1u32..6, depth in 0u32..8) {
        let t = KaryTree::new(k, depth).unwrap();
        let g = t.graph();
        // A tree: E = V − 1, connected.
        prop_assert_eq!(g.edge_count() + 1, g.node_count());
        prop_assert!(Components::find(g).is_connected());
        // Leaf count and layout.
        prop_assert_eq!(t.leaves().count(), t.leaf_count());
        prop_assert_eq!(t.leaf_count() as u128, (k as u128).pow(depth));
        // Every node's level equals its BFS distance from the root.
        let bfs = Bfs::new(g).run(t.root());
        for v in g.nodes() {
            prop_assert_eq!(t.level_of(v), bfs.distance(v).unwrap());
        }
    }

    #[test]
    fn gnm_produces_exactly_m_edges(n in 2usize..60, seed in any::<u64>()) {
        let max_edges = n * (n - 1) / 2;
        let m = max_edges / 2;
        let g = gnm(n, m, &mut SmallRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.edge_count(), m);
        prop_assert_eq!(g.node_count(), n);
    }

    #[test]
    fn gnp_monotone_in_p_on_average(n in 20usize..80, seed in any::<u64>()) {
        let mut rng1 = SmallRng::seed_from_u64(seed);
        let mut rng2 = SmallRng::seed_from_u64(seed.wrapping_add(1));
        let sparse = gnp(n, 0.05, &mut rng1).unwrap();
        let dense = gnp(n, 0.5, &mut rng2).unwrap();
        // Not guaranteed pointwise, but the densities are far enough
        // apart that a violation means a broken sampler.
        prop_assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn transit_stub_layout_is_a_partition(
        domains in 1usize..4,
        dsize in 1usize..5,
        stubs in 0usize..4,
        ssize in 1usize..5,
        seed in any::<u64>(),
    ) {
        let params = TransitStubParams {
            transit_domains: domains,
            transit_domain_size: dsize,
            stubs_per_transit_node: stubs,
            stub_domain_size: ssize,
            transit_edge_prob: 0.4,
            stub_edge_prob: 0.4,
            extra_transit_stub_edges: 2,
            extra_stub_stub_edges: 2,
        };
        let (g, layout) = transit_stub_with_layout(params, &mut SmallRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.node_count(), params.node_count());
        prop_assert!(Components::find(&g).is_connected());
        let covered: usize = layout.stub_ranges.iter().map(|r| r.len()).sum();
        prop_assert_eq!(layout.transit_count + covered, g.node_count());
    }

    #[test]
    fn tiers_counts_and_connectivity(
        wan in 2usize..8,
        mans in 0usize..4,
        msize in 1usize..6,
        lans in 0usize..3,
        hosts in 1usize..6,
        seed in any::<u64>(),
    ) {
        let params = TiersParams {
            wan_nodes: wan,
            man_count: mans,
            man_nodes: msize,
            lans_per_man: lans,
            lan_hosts: hosts,
            wan_redundancy: 1,
            man_redundancy: 1,
        };
        let g = tiers(params, &mut SmallRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.node_count(), params.node_count());
        prop_assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn euclidean_mst_is_minimal_under_edge_swap(seed in any::<u64>()) {
        // Cut property spot check: every MST edge is no longer than the
        // direct distance between any pair it separates… cheap version:
        // total MST length <= total length of the star from node 0.
        let mut rng = SmallRng::seed_from_u64(seed);
        use rand::Rng;
        let pts: Vec<(f64, f64)> = (0..12).map(|_| (rng.gen(), rng.gen())).collect();
        let dist = |a: usize, b: usize| {
            let (p, q) = (pts[a], pts[b]);
            ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt()
        };
        let mst = euclidean_mst(&pts);
        prop_assert_eq!(mst.len(), pts.len() - 1);
        let mst_len: f64 = mst.iter().map(|&(a, b)| dist(a, b)).sum();
        let star_len: f64 = (1..pts.len()).map(|v| dist(0, v)).sum();
        prop_assert!(mst_len <= star_len + 1e-12);
    }

    #[test]
    fn power_law_connected_and_sized(n in 2usize..300, epn in 1.0f64..2.5, seed in any::<u64>()) {
        let g = power_law(
            PowerLawParams { nodes: n, edges_per_node: epn },
            &mut SmallRng::seed_from_u64(seed),
        ).unwrap();
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(Components::find(&g).is_connected());
        // Every arriving node adds >= 1 edge: E >= n − 1.
        prop_assert!(g.edge_count() >= n - 1);
    }

    #[test]
    fn overlay_connected(dim in 1usize..5, cs in 1usize..10, tl in 0usize..3, seed in any::<u64>()) {
        let p = OverlayParams {
            grid_dim: dim,
            cluster_size: cs,
            intra_extra_edges: 1,
            tunnel_length: tl,
            long_range_tunnels: 2,
        };
        let g = overlay(p, &mut SmallRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.node_count(), p.node_count());
        prop_assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn lattice_counts(w in 1usize..12, h in 1usize..12) {
        let grid = grid_2d(w, h).unwrap();
        prop_assert_eq!(grid.node_count(), w * h);
        prop_assert_eq!(grid.edge_count(), (w - 1) * h + w * (h - 1));
        prop_assert!(Components::find(&grid).is_connected());
        let torus = torus_2d(w, h).unwrap();
        prop_assert!(Components::find(&torus).is_connected());
        // Torus has at least as many edges as the grid.
        prop_assert!(torus.edge_count() >= grid.edge_count());
    }

    #[test]
    fn hierarchical_counts(l1 in 1usize..5, l2 in 1usize..6, l3 in 1usize..6, seed in any::<u64>()) {
        let p = HierarchicalParams {
            levels: vec![
                Level { size: l1, edge_prob: 0.3 },
                Level { size: l2, edge_prob: 0.3 },
                Level { size: l3, edge_prob: 0.3 },
            ],
        };
        let g = hierarchical(&p, &mut SmallRng::seed_from_u64(seed)).unwrap();
        prop_assert_eq!(g.node_count() as u128, p.node_count());
        prop_assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn waxman_respects_density_ordering(seed in any::<u64>()) {
        let lo = waxman(80, WaxmanParams { alpha: 0.05, beta: 0.15 }, &mut SmallRng::seed_from_u64(seed)).unwrap();
        let hi = waxman(80, WaxmanParams { alpha: 0.95, beta: 0.5 }, &mut SmallRng::seed_from_u64(seed)).unwrap();
        prop_assert!(hi.edge_count() > lo.edge_count());
    }
}
