//! Complete k-ary trees — the tractable test case of the paper's §3.
//!
//! The source sits at the root; the paper's leaf-only receiver model picks
//! among the `M = k^D` leaves, and the all-sites model (§3.4) among every
//! non-root node.

use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};

/// A complete k-ary tree of a given depth, with level-order node ids
/// (root = 0; the children of node `i` are `k·i + 1 ..= k·i + k`).
///
/// ```
/// use mcast_gen::kary::KaryTree;
/// let tree = KaryTree::new(2, 3).unwrap();
/// assert_eq!(tree.node_count(), 15);
/// assert_eq!(tree.leaf_count(), 8);
/// assert!(tree.is_leaf(7) && !tree.is_leaf(6));
/// ```
#[derive(Clone, Debug)]
pub struct KaryTree {
    k: u32,
    depth: u32,
    graph: Graph,
    /// id of the first leaf (all later ids are leaves too).
    first_leaf: NodeId,
}

impl KaryTree {
    /// Build the complete `k`-ary tree of depth `depth`.
    ///
    /// `k = 1` degenerates to a path (useful because the paper treats `k`
    /// as a continuous parameter in its asymptotics); `depth = 0` is a
    /// single root node.
    ///
    /// # Errors
    /// Fails if `k == 0` or the node count would overflow `NodeId`.
    pub fn new(k: u32, depth: u32) -> Result<Self, GenError> {
        if k == 0 {
            return Err(GenError::invalid("k", "degree must be at least 1"));
        }
        let node_count = node_count_u128(k, depth);
        if node_count > NodeId::MAX as u128 {
            return Err(GenError::TooLarge {
                requested: node_count,
            });
        }
        let n = node_count as usize;
        let mut b = GraphBuilder::new(n);
        for child in 1..n as u64 {
            let parent = (child - 1) / u64::from(k);
            b.add_edge(parent as NodeId, child as NodeId);
        }
        let internal = node_count - leaf_count_u128(k, depth);
        Ok(Self {
            k,
            depth,
            graph: b.build(),
            first_leaf: internal as NodeId,
        })
    }

    /// Branching factor.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Depth `D` (root at level 0, leaves at level `D`).
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consume into the underlying graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Total number of nodes, `(k^(D+1) − 1)/(k − 1)`.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of leaves, `M = k^D`.
    pub fn leaf_count(&self) -> usize {
        leaf_count_u128(self.k, self.depth) as usize
    }

    /// The root (the paper's source location).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Id of the first leaf; ids `first_leaf()..node_count()` are leaves.
    pub fn first_leaf(&self) -> NodeId {
        self.first_leaf
    }

    /// Iterator over all leaf ids.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.first_leaf..self.node_count() as NodeId
    }

    /// Whether `v` is a leaf.
    pub fn is_leaf(&self, v: NodeId) -> bool {
        v >= self.first_leaf
    }

    /// Level (= hop distance from the root) of node `v`.
    pub fn level_of(&self, v: NodeId) -> u32 {
        if self.k == 1 {
            return v;
        }
        // Level l starts at id (k^l - 1)/(k - 1).
        let mut level = 0u32;
        let mut start = 0u128;
        let mut width = 1u128;
        let v = v as u128;
        loop {
            if v < start + width {
                return level;
            }
            start += width;
            width *= u128::from(self.k);
            level += 1;
        }
    }

    /// Parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if v == 0 {
            None
        } else {
            Some((u64::from(v) - 1) as NodeId / self.k)
        }
    }
}

fn leaf_count_u128(k: u32, depth: u32) -> u128 {
    (u128::from(k)).pow(depth)
}

fn node_count_u128(k: u32, depth: u32) -> u128 {
    if k == 1 {
        u128::from(depth) + 1
    } else {
        ((u128::from(k)).pow(depth + 1) - 1) / (u128::from(k) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::bfs::Bfs;

    #[test]
    fn binary_depth3_counts() {
        let t = KaryTree::new(2, 3).unwrap();
        assert_eq!(t.node_count(), 15);
        assert_eq!(t.leaf_count(), 8);
        assert_eq!(t.first_leaf(), 7);
        assert_eq!(t.graph().edge_count(), 14);
        assert_eq!(t.leaves().count(), 8);
        assert!(t.is_leaf(7));
        assert!(!t.is_leaf(6));
    }

    #[test]
    fn levels_match_bfs_distance() {
        let t = KaryTree::new(3, 4).unwrap();
        let bfs = Bfs::new(t.graph()).run(t.root());
        for v in t.graph().nodes() {
            assert_eq!(t.level_of(v), bfs.distance(v).unwrap(), "node {v}");
        }
    }

    #[test]
    fn leaves_are_exactly_depth_d() {
        let t = KaryTree::new(4, 3).unwrap();
        let bfs = Bfs::new(t.graph()).run(0);
        for v in t.graph().nodes() {
            let is_leaf_by_distance = bfs.distance(v).unwrap() == t.depth();
            assert_eq!(t.is_leaf(v), is_leaf_by_distance, "node {v}");
        }
    }

    #[test]
    fn parent_is_graph_neighbor() {
        let t = KaryTree::new(3, 3).unwrap();
        for v in t.graph().nodes().skip(1) {
            let p = t.parent(v).unwrap();
            assert!(t.graph().has_edge(p, v));
            assert_eq!(t.level_of(p) + 1, t.level_of(v));
        }
        assert_eq!(t.parent(0), None);
    }

    #[test]
    fn unary_tree_is_path() {
        let t = KaryTree::new(1, 5).unwrap();
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.first_leaf(), 5);
        assert_eq!(t.level_of(4), 4);
    }

    #[test]
    fn depth_zero_is_single_node() {
        let t = KaryTree::new(2, 0).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.first_leaf(), 0);
        assert!(t.is_leaf(0));
    }

    #[test]
    fn zero_degree_rejected() {
        assert!(matches!(
            KaryTree::new(0, 3),
            Err(GenError::InvalidParameter { name: "k", .. })
        ));
    }

    #[test]
    fn overflow_rejected() {
        assert!(matches!(
            KaryTree::new(2, 40),
            Err(GenError::TooLarge { .. })
        ));
    }

    #[test]
    fn paper_scale_trees_build() {
        // The largest tree in the paper's figures: k=2, D=17 (262,143 nodes).
        let t = KaryTree::new(2, 17).unwrap();
        assert_eq!(t.leaf_count(), 1 << 17);
        assert_eq!(t.node_count(), (1 << 18) - 1);
        // k=4, D=9 (349,525 nodes).
        let t4 = KaryTree::new(4, 9).unwrap();
        assert_eq!(t4.leaf_count(), 4usize.pow(9));
    }
}
