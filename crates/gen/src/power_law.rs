//! Preferential-attachment graphs with power-law degree distributions.
//!
//! The paper's Internet router map (SCAN '99) and NLANR AS map are not
//! retrievable; per the Faloutsos³ observation the paper itself cites \[8\],
//! their degree distributions follow power laws, and such graphs exhibit
//! the exponential-then-saturating reachability `T(r)` the paper measures
//! for them (Fig 7b). We therefore stand them in with Barabási–Albert-style
//! preferential attachment, parameterised to match node count and average
//! degree (see `DESIGN.md` §3).

use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Parameters of the preferential-attachment generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLawParams {
    /// Total node count.
    pub nodes: usize,
    /// Mean number of edges each arriving node creates. Fractional values
    /// are realised stochastically (⌊m⌋ edges plus one more with
    /// probability frac(m)), letting the average degree `≈ 2m` be tuned
    /// continuously.
    pub edges_per_node: f64,
}

impl PowerLawParams {
    /// Stand-in for the paper's NLANR AS map (March 1999): ~4,902 nodes,
    /// average degree ≈ 3.6.
    pub fn as_map() -> Self {
        Self {
            nodes: 4902,
            edges_per_node: 1.8,
        }
    }

    /// Stand-in for the paper's SCAN Internet router map: 56,317 nodes,
    /// average degree ≈ 3.0. (The experiment suite's fast mode shrinks
    /// this; see `mcast-experiments`.)
    pub fn internet_map() -> Self {
        Self {
            nodes: 56_317,
            edges_per_node: 1.5,
        }
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.nodes < 2 {
            return Err(GenError::invalid("nodes", "need at least 2 nodes"));
        }
        if self.edges_per_node.is_nan() || self.edges_per_node < 1.0 {
            return Err(GenError::invalid(
                "edges_per_node",
                "must be at least 1 to keep the graph connected",
            ));
        }
        if self.nodes > NodeId::MAX as usize {
            return Err(GenError::TooLarge {
                requested: self.nodes as u128,
            });
        }
        Ok(())
    }
}

/// Generate a preferential-attachment graph; connected by construction
/// (every arriving node links to at least one existing node).
pub fn power_law<R: Rng + ?Sized>(params: PowerLawParams, rng: &mut R) -> Result<Graph, GenError> {
    params.validate()?;
    let _span = mcast_obs::span("gen.power_law");
    let n = params.nodes;
    let m_floor = params.edges_per_node.floor() as usize;
    let m_frac = params.edges_per_node - m_floor as f64;

    let mut b = GraphBuilder::new(n);
    // `endpoints` holds each node once per incident edge: sampling a
    // uniform element is sampling proportionally to degree.
    let mut endpoints: Vec<NodeId> =
        Vec::with_capacity((2.2 * params.edges_per_node * n as f64) as usize);
    // Seed: a single edge 0–1.
    b.add_edge(0, 1);
    endpoints.extend_from_slice(&[0, 1]);

    for v in 2..n as NodeId {
        let mut links = m_floor + usize::from(rng.gen::<f64>() < m_frac);
        links = links.clamp(1, v as usize); // can't exceed existing nodes
        let mut chosen: Vec<NodeId> = Vec::with_capacity(links);
        let mut guard = 0usize;
        while chosen.len() < links {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * links {
                // Extremely unlikely; fall back to any unchosen node.
                for u in 0..v {
                    if !chosen.contains(&u) {
                        chosen.push(u);
                        break;
                    }
                }
            }
        }
        for t in chosen {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use mcast_topology::metrics::degree_stats;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn as_map_stand_in_shape() {
        let p = PowerLawParams::as_map();
        let g = power_law(p, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 4902);
        assert!(Components::find(&g).is_connected());
        let deg = g.average_degree();
        assert!((3.2..4.0).contains(&deg), "average degree {deg}");
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let p = PowerLawParams {
            nodes: 3000,
            edges_per_node: 1.5,
        };
        let g = power_law(p, &mut SmallRng::seed_from_u64(2)).unwrap();
        let stats = degree_stats(&g).unwrap();
        // A hub far above the mean is the signature of preferential
        // attachment; G(n,p) at this density would max out around 12.
        assert!(
            stats.max as f64 > 10.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
        assert_eq!(stats.min, 1);
    }

    #[test]
    fn fractional_edges_per_node_tunes_density() {
        let lo = power_law(
            PowerLawParams {
                nodes: 2000,
                edges_per_node: 1.0,
            },
            &mut SmallRng::seed_from_u64(3),
        )
        .unwrap();
        let hi = power_law(
            PowerLawParams {
                nodes: 2000,
                edges_per_node: 1.9,
            },
            &mut SmallRng::seed_from_u64(3),
        )
        .unwrap();
        assert!(
            (lo.average_degree() - 2.0).abs() < 0.2,
            "{}",
            lo.average_degree()
        );
        assert!(
            (hi.average_degree() - 3.8).abs() < 0.3,
            "{}",
            hi.average_degree()
        );
    }

    #[test]
    fn degree_distribution_follows_a_power_law() {
        // Faloutsos et al. (the paper's [8]) report degree exponents
        // around 2.2 for AS-level maps; preferential attachment predicts
        // 3 in the large-n limit and lands in between at these sizes.
        use mcast_topology::metrics::degree_histogram;
        let g = power_law(
            PowerLawParams {
                nodes: 20_000,
                edges_per_node: 1.8,
            },
            &mut SmallRng::seed_from_u64(6),
        )
        .unwrap();
        let hist = degree_histogram(&g);
        let pts: Vec<(f64, f64)> = hist
            .iter()
            .enumerate()
            .filter(|&(d, &c)| d >= 2 && c >= 5)
            .map(|(d, &c)| (d as f64, c as f64))
            .collect();
        assert!(pts.len() >= 8, "need a tail to fit ({} pts)", pts.len());
        // Log-log least squares.
        let logs: Vec<(f64, f64)> = pts.iter().map(|p| (p.0.ln(), p.1.ln())).collect();
        let n = logs.len() as f64;
        let mx = logs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = logs.iter().map(|p| p.1).sum::<f64>() / n;
        let sxy: f64 = logs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let sxx: f64 = logs.iter().map(|p| (p.0 - mx).powi(2)).sum();
        let slope = sxy / sxx;
        assert!(
            (-3.8..-1.8).contains(&slope),
            "degree exponent {slope} outside the power-law band"
        );
    }

    #[test]
    fn stand_in_is_disassortative_like_real_maps() {
        use mcast_topology::metrics::degree_assortativity;
        let g = power_law(PowerLawParams::as_map(), &mut SmallRng::seed_from_u64(7)).unwrap();
        let a = degree_assortativity(&g);
        assert!(a < -0.02, "assortativity {a} should be negative");
    }

    #[test]
    fn validation() {
        assert!(PowerLawParams {
            nodes: 1,
            edges_per_node: 1.0
        }
        .validate()
        .is_err());
        assert!(PowerLawParams {
            nodes: 10,
            edges_per_node: 0.5
        }
        .validate()
        .is_err());
        assert!(PowerLawParams {
            nodes: 10,
            edges_per_node: f64::NAN
        }
        .validate()
        .is_err());
        assert!(PowerLawParams::as_map().validate().is_ok());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = PowerLawParams {
            nodes: 500,
            edges_per_node: 1.5,
        };
        let a = power_law(p, &mut SmallRng::seed_from_u64(4)).unwrap();
        let b = power_law(p, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_graph() {
        let p = PowerLawParams {
            nodes: 2,
            edges_per_node: 1.0,
        };
        let g = power_law(p, &mut SmallRng::seed_from_u64(5)).unwrap();
        assert_eq!(g.edge_count(), 1);
    }
}
