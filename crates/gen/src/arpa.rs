//! Embedded 47-node ARPANET reconstruction.
//!
//! The paper's "ARPA" topology "reflects the original ARPANET topology
//! (this topology has been used in several other studies, such as \[13\] and
//! \[3\])": 47 nodes with average degree just under 3. The original file is
//! not retrievable, so this module embeds a hand-built reconstruction with
//! the same gross shape as the late-1970s ARPANET maps: two coastal chains
//! with local loops, northern and southern cross-country routes, and a
//! handful of long-haul shortcuts. It matches the published statistics
//! (47 nodes, 68 links, average degree ≈ 2.89, diameter ≈ 10) and — like
//! the real ARPA map in the paper's Fig 7(b) — has a visibly concave
//! (sub-exponential) `ln T(r)`.

use mcast_topology::graph::from_edges;
use mcast_topology::Graph;

/// Number of nodes in the embedded map.
pub const ARPA_NODES: usize = 47;

/// The embedded edge list (68 undirected links).
pub const ARPA_EDGES: [(u32, u32); 68] = [
    // West-coast chain with local loops.
    (0, 1),
    (1, 2),
    (2, 3),
    (3, 4),
    (4, 5),
    (5, 6),
    (6, 7),
    (7, 8),
    (8, 9),
    (0, 4),
    (2, 6),
    (5, 9),
    // Mountain chain.
    (9, 10),
    (10, 11),
    (11, 12),
    (12, 13),
    (13, 14),
    // Midwest chain with loops.
    (14, 15),
    (15, 16),
    (16, 17),
    (17, 18),
    (18, 19),
    (19, 20),
    (20, 21),
    (21, 22),
    (15, 19),
    (17, 21),
    // East-coast chain with loops.
    (22, 23),
    (23, 24),
    (24, 25),
    (25, 26),
    (26, 27),
    (27, 28),
    (28, 29),
    (29, 30),
    (30, 31),
    (31, 32),
    (32, 33),
    (33, 34),
    (23, 27),
    (25, 29),
    (28, 32),
    (30, 34),
    // Southern cross-country route.
    (3, 35),
    (35, 36),
    (36, 37),
    (37, 38),
    (38, 39),
    (39, 40),
    (40, 24),
    // Northern cross-country route.
    (1, 41),
    (41, 42),
    (42, 43),
    (43, 44),
    (44, 45),
    (45, 46),
    (46, 26),
    // Long-haul shortcuts and regional ties.
    (8, 12),
    (13, 18),
    (5, 36),
    (16, 38),
    (20, 39),
    (14, 43),
    (22, 45),
    (34, 40),
    (7, 35),
    (12, 16),
    (26, 31),
];

/// Build the embedded ARPA graph.
pub fn arpa() -> Graph {
    from_edges(ARPA_NODES, &ARPA_EDGES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use mcast_topology::metrics::{degree_stats, exact_path_stats};

    #[test]
    fn published_statistics() {
        let g = arpa();
        assert_eq!(g.node_count(), 47);
        assert_eq!(g.edge_count(), 68);
        let deg = g.average_degree();
        assert!((2.7..3.1).contains(&deg), "average degree {deg}");
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn no_hubs_like_the_real_arpanet() {
        // ARPANET IMPs had at most a handful of trunks.
        let s = degree_stats(&arpa()).unwrap();
        assert!(s.max <= 5, "max degree {}", s.max);
        assert!(s.min >= 2, "min degree {}", s.min);
    }

    #[test]
    fn path_stats_are_wide_area() {
        let (avg, diam) = exact_path_stats(&arpa());
        assert!((4.0..8.0).contains(&avg), "avg path {avg}");
        assert!((8..=14).contains(&diam), "diameter {diam}");
    }

    #[test]
    fn edge_list_has_no_duplicates() {
        let g = arpa();
        // from_edges dedupes; equality of counts proves the list was clean.
        assert_eq!(g.edge_count(), ARPA_EDGES.len());
    }
}
