//! Sparse cluster-and-tunnel overlays — the MBone stand-in.
//!
//! The paper notes that "the MBone remains partially an overlay network,
//! which may affect the nature of T(r)": its measured `ln T(r)` has a
//! slight concavity (sub-exponential growth), and its `L̂(n)` fits the
//! exponential-case prediction poorly (Figs 6b/7b). We reproduce that
//! *shape* with a spatial overlay: dense router clusters arranged on a 2-D
//! grid, neighbouring clusters joined by tunnel chains, plus a few random
//! long-range tunnels. Grid locality makes the reachable ball grow
//! polynomially (`T(r) ~ r²`) at the inter-cluster scale — mildly concave
//! on a log plot, exactly the MBone signature.

use crate::connect::random_tree_edges;
use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Parameters of the overlay generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverlayParams {
    /// Clusters are arranged on a `grid_dim × grid_dim` grid.
    pub grid_dim: usize,
    /// Routers per cluster (internally a random connected block).
    pub cluster_size: usize,
    /// Extra intra-cluster edges per node beyond the spanning tree.
    pub intra_extra_edges: usize,
    /// Intermediate nodes on each inter-cluster tunnel chain (0 = a direct
    /// edge between border routers).
    pub tunnel_length: usize,
    /// Random long-range tunnels added across the whole overlay.
    pub long_range_tunnels: usize,
}

impl OverlayParams {
    /// Stand-in for the paper's MBone map: ≈ 4,000 nodes, average degree
    /// ≈ 2.8, sub-exponential reachability.
    pub fn mbone() -> Self {
        Self {
            grid_dim: 10,
            cluster_size: 38,
            intra_extra_edges: 1,
            tunnel_length: 1,
            long_range_tunnels: 8,
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        let clusters = self.grid_dim * self.grid_dim;
        let chains = 2 * self.grid_dim * (self.grid_dim.saturating_sub(1));
        clusters * self.cluster_size + chains * self.tunnel_length
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.grid_dim == 0 {
            return Err(GenError::invalid("grid_dim", "must be at least 1"));
        }
        if self.cluster_size == 0 {
            return Err(GenError::invalid("cluster_size", "must be at least 1"));
        }
        if self.node_count() > NodeId::MAX as usize {
            return Err(GenError::TooLarge {
                requested: self.node_count() as u128,
            });
        }
        Ok(())
    }
}

/// Generate an overlay topology; connected by construction.
pub fn overlay<R: Rng + ?Sized>(params: OverlayParams, rng: &mut R) -> Result<Graph, GenError> {
    params.validate()?;
    let _span = mcast_obs::span("gen.overlay");
    let dim = params.grid_dim;
    let cs = params.cluster_size;
    let clusters = dim * dim;
    let mut b = GraphBuilder::new(params.node_count());

    // Cluster interiors: spanning tree + a few extra edges.
    for c in 0..clusters {
        let base = (c * cs) as NodeId;
        for (u, v) in random_tree_edges(cs, rng) {
            b.add_edge(base + u, base + v);
        }
        let extras = params.intra_extra_edges * cs / 2;
        for _ in 0..extras {
            let u = base + rng.gen_range(0..cs) as NodeId;
            let v = base + rng.gen_range(0..cs) as NodeId;
            if u != v {
                b.add_edge(u, v);
            }
        }
    }

    // Tunnels between grid-adjacent clusters.
    let mut next = (clusters * cs) as NodeId;
    let tunnel = |b: &mut GraphBuilder, ca: usize, cb: usize, rng: &mut R, next: &mut NodeId| {
        let u = (ca * cs) as NodeId + rng.gen_range(0..cs) as NodeId;
        let v = (cb * cs) as NodeId + rng.gen_range(0..cs) as NodeId;
        if params.tunnel_length == 0 {
            b.add_edge(u, v);
            return;
        }
        let mut prev = u;
        for _ in 0..params.tunnel_length {
            let mid = *next;
            *next += 1;
            b.add_edge(prev, mid);
            prev = mid;
        }
        b.add_edge(prev, v);
    };
    for row in 0..dim {
        for col in 0..dim {
            let c = row * dim + col;
            if col + 1 < dim {
                tunnel(&mut b, c, c + 1, rng, &mut next);
            }
            if row + 1 < dim {
                tunnel(&mut b, c, c + dim, rng, &mut next);
            }
        }
    }

    // Long-range tunnels (direct edges) between random clusters.
    for _ in 0..params.long_range_tunnels {
        let ca = rng.gen_range(0..clusters);
        let cb = rng.gen_range(0..clusters);
        if ca != cb {
            let u = (ca * cs) as NodeId + rng.gen_range(0..cs) as NodeId;
            let v = (cb * cs) as NodeId + rng.gen_range(0..cs) as NodeId;
            b.add_edge(u, v);
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use mcast_topology::reachability::AverageReachability;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mbone_stand_in_shape() {
        let p = OverlayParams::mbone();
        assert_eq!(p.node_count(), 100 * 38 + 180);
        let g = overlay(p, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), p.node_count());
        assert!(Components::find(&g).is_connected());
        let deg = g.average_degree();
        assert!((2.2..3.4).contains(&deg), "average degree {deg}");
    }

    #[test]
    fn reachability_is_subexponential() {
        // The whole point of the stand-in: ln T(r) should fit a straight
        // line *worse* than a comparable random graph.
        let p = OverlayParams {
            grid_dim: 8,
            cluster_size: 20,
            intra_extra_edges: 1,
            tunnel_length: 1,
            long_range_tunnels: 0,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let g = overlay(p, &mut rng).unwrap();
        let sources: Vec<_> = (0..20u32).map(|i| i * 37 % g.node_count() as u32).collect();
        let overlay_r2 = AverageReachability::over_sources(&g, &sources)
            .unwrap()
            .exponential_fit_r2(0.9);
        let rnd = crate::random::random_with_degree(g.node_count(), g.average_degree(), &mut rng)
            .unwrap();
        let rnd_r2 = AverageReachability::over_sources(&rnd, &sources)
            .unwrap()
            .exponential_fit_r2(0.9);
        assert!(
            overlay_r2 < rnd_r2,
            "overlay r2 {overlay_r2} should be below random-graph r2 {rnd_r2}"
        );
    }

    #[test]
    fn single_cluster_no_tunnels() {
        let p = OverlayParams {
            grid_dim: 1,
            cluster_size: 10,
            intra_extra_edges: 0,
            tunnel_length: 5,
            long_range_tunnels: 0,
        };
        assert_eq!(p.node_count(), 10);
        let g = overlay(p, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert!(Components::find(&g).is_connected());
        assert_eq!(g.edge_count(), 9); // just the spanning tree
    }

    #[test]
    fn zero_length_tunnels_are_direct_edges() {
        let p = OverlayParams {
            grid_dim: 2,
            cluster_size: 5,
            intra_extra_edges: 0,
            tunnel_length: 0,
            long_range_tunnels: 0,
        };
        assert_eq!(p.node_count(), 20);
        let g = overlay(p, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert!(Components::find(&g).is_connected());
        // 4 clusters × 4 tree edges + 4 grid tunnels.
        assert_eq!(g.edge_count(), 16 + 4);
    }

    #[test]
    fn validation() {
        let mut p = OverlayParams::mbone();
        p.grid_dim = 0;
        assert!(p.validate().is_err());
        let mut p = OverlayParams::mbone();
        p.cluster_size = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = OverlayParams::mbone();
        let a = overlay(p, &mut SmallRng::seed_from_u64(6)).unwrap();
        let b = overlay(p, &mut SmallRng::seed_from_u64(6)).unwrap();
        assert_eq!(a, b);
    }
}
