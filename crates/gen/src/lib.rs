//! Topology generators for the multicast-scaling study.
//!
//! The paper's experiments run over eight topologies: four *generated*
//! (GT-ITM-style flat random "r100", GT-ITM-style transit-stub "ts1000" /
//! "ts1008", TIERS-style "ti5000") and four *real* (ARPA, MBone, Internet
//! router map, NLANR AS map). This crate provides from-scratch
//! implementations of all the generator families plus stand-ins for the
//! real maps (see `DESIGN.md` §3 for the substitution rationale):
//!
//! * [`kary`] — complete k-ary trees (the analytical workhorse of §3);
//! * [`lattice`] — 2-D grids and tori: real graphs with the polynomial
//!   reachability of §4.3's non-exponential analysis;
//! * [`random`] — Erdős–Rényi `G(n, p)` / `G(n, m)` flat random graphs;
//! * [`waxman`] — Waxman's distance-biased random graphs;
//! * [`transit_stub`] — two-level transit/stub hierarchies in the GT-ITM
//!   style;
//! * [`hierarchical`] — GT-ITM's general N-level hierarchical method;
//! * [`tiers`] — three-level WAN/MAN/LAN hierarchies in the TIERS style,
//!   built from Euclidean spanning trees plus redundancy edges;
//! * [`power_law`] — preferential-attachment graphs with power-law degrees
//!   (stand-ins for the Internet router and AS maps);
//! * [`overlay`] — sparse cluster-and-tunnel overlays (stand-in for the
//!   MBone map, whose sub-exponential reachability the paper highlights);
//! * [`arpa`] — an embedded 47-node reconstruction of the ARPANET topology.
//!
//! All generators are deterministic given an explicit [`rand::Rng`]; the
//! experiment suite derives every RNG from a fixed seed so published tables
//! regenerate exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arpa;
pub mod connect;
pub mod error;
pub mod hierarchical;
pub mod kary;
pub mod lattice;
pub mod overlay;
pub mod power_law;
pub mod random;
pub mod tiers;
pub mod transit_stub;
pub mod waxman;

pub use error::GenError;
pub use kary::KaryTree;
