//! Three-level WAN/MAN/LAN hierarchies in the TIERS style
//! (Doar, GLOBECOM '96 — reference \[7\] of the paper).
//!
//! TIERS lays each network's nodes out in the plane, connects them with a
//! Euclidean minimum spanning tree, and adds a configurable number of
//! redundant links from each node to its nearest non-neighbours. LANs are
//! star-shaped host clusters hanging off MAN nodes; MAN gateways hang off
//! WAN nodes. The resulting `ti5000`-style topologies have long spatial
//! paths, which is exactly why the paper finds their reachability function
//! `T(r)` *sub-exponential* (Fig 7) and their `L̂(n)` fit to the
//! exponential-case prediction poor (Fig 6).

use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Parameters of the TIERS-style generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TiersParams {
    /// Nodes in the single WAN.
    pub wan_nodes: usize,
    /// Number of MANs (each attached to a random WAN node).
    pub man_count: usize,
    /// Nodes per MAN.
    pub man_nodes: usize,
    /// LANs per MAN (each attached to a random MAN node).
    pub lans_per_man: usize,
    /// Hosts per LAN (a star: one hub + hosts−1 leaves).
    pub lan_hosts: usize,
    /// Redundant extra links per WAN node (to nearest non-neighbours).
    pub wan_redundancy: usize,
    /// Redundant extra links per MAN node.
    pub man_redundancy: usize,
}

impl TiersParams {
    /// Parameters reproducing the paper's `ti5000`: 5000 nodes.
    pub fn ti5000() -> Self {
        Self {
            wan_nodes: 50,
            man_count: 15,
            man_nodes: 30,
            lans_per_man: 10,
            lan_hosts: 30,
            wan_redundancy: 1,
            man_redundancy: 1,
        }
    }

    /// `huge`-tier scaling of `ti5000`: 1,015,200 nodes. Per-domain sizes
    /// stay small (the spatial MST is quadratic in *domain* size), so the
    /// million-node build is dominated by the linear LAN-star pass.
    pub fn ti1000000() -> Self {
        Self {
            wan_nodes: 200,
            man_count: 250,
            man_nodes: 60,
            lans_per_man: 40,
            lan_hosts: 100,
            wan_redundancy: 1,
            man_redundancy: 1,
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.wan_nodes
            + self.man_count * self.man_nodes
            + self.man_count * self.lans_per_man * self.lan_hosts
    }

    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.wan_nodes == 0 {
            return Err(GenError::invalid("wan_nodes", "must be at least 1"));
        }
        if self.man_count > 0 && self.man_nodes == 0 {
            return Err(GenError::invalid("man_nodes", "must be at least 1"));
        }
        if self.man_count > 0 && self.lans_per_man > 0 && self.lan_hosts == 0 {
            return Err(GenError::invalid("lan_hosts", "must be at least 1"));
        }
        if self.node_count() > NodeId::MAX as usize {
            return Err(GenError::TooLarge {
                requested: self.node_count() as u128,
            });
        }
        Ok(())
    }
}

/// Generate a TIERS-style topology; connected by construction.
pub fn tiers<R: Rng + ?Sized>(params: TiersParams, rng: &mut R) -> Result<Graph, GenError> {
    params.validate()?;
    let _span = mcast_obs::span("gen.tiers");
    let mut b = GraphBuilder::new(params.node_count());

    // WAN: spatial MST + redundancy over ids 0..wan_nodes.
    let wan_points = random_points(params.wan_nodes, rng);
    spatial_network(&mut b, 0, &wan_points, params.wan_redundancy);

    let mut next = params.wan_nodes as NodeId;
    for _ in 0..params.man_count {
        // MAN interior.
        let man_base = next;
        let man_points = random_points(params.man_nodes, rng);
        spatial_network(&mut b, man_base, &man_points, params.man_redundancy);
        next += params.man_nodes as NodeId;
        // MAN gateway (its node 0) to a random WAN node.
        let wan_attach = rng.gen_range(0..params.wan_nodes) as NodeId;
        b.add_edge(man_base, wan_attach);

        // LANs: star hubs on random MAN nodes.
        for _ in 0..params.lans_per_man {
            let hub = next;
            next += params.lan_hosts as NodeId;
            let man_attach = man_base + rng.gen_range(0..params.man_nodes) as NodeId;
            b.add_edge(hub, man_attach);
            for host in (hub + 1)..next {
                b.add_edge(hub, host);
            }
        }
    }
    Ok(b.build())
}

fn random_points<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect()
}

/// Add a Euclidean-MST-plus-redundancy network over ids
/// `base..base+points.len()`.
fn spatial_network(b: &mut GraphBuilder, base: NodeId, points: &[(f64, f64)], redundancy: usize) {
    let n = points.len();
    if n <= 1 {
        return;
    }
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, v) in euclidean_mst(points) {
        b.add_edge(base + u as NodeId, base + v as NodeId);
        adjacency[u].push(v);
        adjacency[v].push(u);
    }
    // Redundancy: each node links to its `redundancy` nearest
    // not-yet-adjacent nodes (deterministic given the point set).
    for u in 0..n {
        let mut candidates: Vec<(f64, usize)> = (0..n)
            .filter(|&v| v != u && !adjacency[u].contains(&v))
            .map(|v| (dist2(points[u], points[v]), v))
            .collect();
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        for &(_, v) in candidates.iter().take(redundancy) {
            b.add_edge(base + u as NodeId, base + v as NodeId);
            adjacency[u].push(v);
            adjacency[v].push(u);
        }
    }
}

#[inline]
fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}

/// Euclidean minimum spanning tree by Prim's algorithm, O(n²).
pub fn euclidean_mst(points: &[(f64, f64)]) -> Vec<(usize, usize)> {
    let n = points.len();
    if n <= 1 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for v in 1..n {
        best[v] = dist2(points[0], points[v]);
    }
    for _ in 1..n {
        let u = (0..n)
            .filter(|&v| !in_tree[v])
            .min_by(|&a, &b| best[a].partial_cmp(&best[b]).expect("finite"))
            .expect("some node remains");
        in_tree[u] = true;
        edges.push((best_from[u], u));
        for v in 0..n {
            if !in_tree[v] {
                let d = dist2(points[u], points[v]);
                if d < best[v] {
                    best[v] = d;
                    best_from[v] = u;
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use mcast_topology::graph::from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mst_is_spanning_tree() {
        let pts = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (2.0, 2.0), (0.5, 0.5)];
        let edges = euclidean_mst(&pts);
        assert_eq!(edges.len(), 4);
        let g = from_edges(
            5,
            &edges
                .iter()
                .map(|&(u, v)| (u as NodeId, v as NodeId))
                .collect::<Vec<_>>(),
        );
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn mst_on_collinear_points_is_the_chain() {
        let pts: Vec<(f64, f64)> = (0..6).map(|i| (i as f64, 0.0)).collect();
        let mut edges = euclidean_mst(&pts);
        for e in &mut edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn mst_trivial_inputs() {
        assert!(euclidean_mst(&[]).is_empty());
        assert!(euclidean_mst(&[(0.3, 0.4)]).is_empty());
    }

    #[test]
    fn ti5000_matches_paper_shape() {
        let params = TiersParams::ti5000();
        assert_eq!(params.node_count(), 5000);
        let g = tiers(params, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 5000);
        assert!(Components::find(&g).is_connected());
        // TIERS graphs are sparse (hosts are leaves).
        let deg = g.average_degree();
        assert!((1.8..3.5).contains(&deg), "average degree {deg}");
    }

    #[test]
    fn small_tiers_layout_is_connected() {
        let params = TiersParams {
            wan_nodes: 5,
            man_count: 2,
            man_nodes: 4,
            lans_per_man: 2,
            lan_hosts: 3,
            wan_redundancy: 1,
            man_redundancy: 0,
        };
        assert_eq!(params.node_count(), 5 + 8 + 12);
        let g = tiers(params, &mut SmallRng::seed_from_u64(2)).unwrap();
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn lan_hosts_are_leaves() {
        let params = TiersParams {
            wan_nodes: 3,
            man_count: 1,
            man_nodes: 3,
            lans_per_man: 1,
            lan_hosts: 4,
            wan_redundancy: 0,
            man_redundancy: 0,
        };
        let g = tiers(params, &mut SmallRng::seed_from_u64(3)).unwrap();
        // Last lan_hosts-1 nodes are star leaves with degree 1.
        let n = g.node_count();
        for v in (n - 3)..n {
            assert_eq!(g.degree(v as NodeId), 1, "node {v}");
        }
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = TiersParams::ti5000();
        p.wan_nodes = 0;
        assert!(p.validate().is_err());
        let mut p = TiersParams::ti5000();
        p.man_nodes = 0;
        assert!(p.validate().is_err());
        let mut p = TiersParams::ti5000();
        p.lan_hosts = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TiersParams::ti5000();
        let a = tiers(p, &mut SmallRng::seed_from_u64(7)).unwrap();
        let b = tiers(p, &mut SmallRng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }
}
