//! Error type for generator parameter validation.

use std::fmt;

/// Errors produced when generator parameters are inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub enum GenError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint description.
        message: String,
    },
    /// The requested graph would exceed addressable size.
    TooLarge {
        /// Requested node count.
        requested: u128,
    },
}

impl GenError {
    /// Convenience constructor for [`GenError::InvalidParameter`].
    pub fn invalid(name: &'static str, message: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            message: message.into(),
        }
    }
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            Self::TooLarge { requested } => {
                write!(f, "requested graph of {requested} nodes exceeds capacity")
            }
        }
    }
}

impl std::error::Error for GenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            GenError::invalid("k", "must be >= 2").to_string(),
            "invalid parameter `k`: must be >= 2"
        );
        assert_eq!(
            GenError::TooLarge { requested: 1 << 40 }.to_string(),
            format!("requested graph of {} nodes exceeds capacity", 1u128 << 40)
        );
    }
}
