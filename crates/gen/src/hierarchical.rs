//! N-level hierarchical graphs (GT-ITM's general hierarchical method).
//!
//! Beyond the two-level transit-stub special case, GT-ITM's original
//! hierarchical construction recursively replaces every node of a
//! top-level random graph with a lower-level random graph, resolving each
//! top-level edge to an edge between random members of the two expanded
//! blocks. Calvert/Doar/Zegura describe exactly this "N-level" method;
//! we implement it for arbitrary level specifications so the suite's
//! structural findings (exponential reachability from constrained-random
//! construction) can be probed at deeper hierarchies.

use crate::connect::random_tree_edges;
use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// One level of the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Level {
    /// Nodes per block at this level.
    pub size: usize,
    /// Extra intra-block edge probability on top of the spanning tree
    /// that keeps each block connected.
    pub edge_prob: f64,
}

impl Level {
    /// Validate one level.
    fn validate(&self) -> Result<(), GenError> {
        if self.size == 0 {
            return Err(GenError::invalid("size", "level size must be at least 1"));
        }
        if !(0.0..=1.0).contains(&self.edge_prob) || self.edge_prob.is_nan() {
            return Err(GenError::invalid(
                "edge_prob",
                format!("probability {} not in [0, 1]", self.edge_prob),
            ));
        }
        Ok(())
    }
}

/// Parameters: `levels[0]` is the top level; each node of a level-`i`
/// graph expands into a level-`i+1` block.
#[derive(Clone, Debug, PartialEq)]
pub struct HierarchicalParams {
    /// The level specifications, top first. Must be non-empty.
    pub levels: Vec<Level>,
}

impl HierarchicalParams {
    /// Total node count: the product of the level sizes.
    pub fn node_count(&self) -> u128 {
        self.levels.iter().map(|l| l.size as u128).product()
    }

    /// Validate all levels and the total size.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.levels.is_empty() {
            return Err(GenError::invalid("levels", "need at least one level"));
        }
        for l in &self.levels {
            l.validate()?;
        }
        if self.node_count() > NodeId::MAX as u128 {
            return Err(GenError::TooLarge {
                requested: self.node_count(),
            });
        }
        Ok(())
    }
}

/// Generate an N-level hierarchical graph; connected by construction
/// (every block carries a spanning tree, and block interconnections
/// mirror the parent level's connected graph).
pub fn hierarchical<R: Rng + ?Sized>(
    params: &HierarchicalParams,
    rng: &mut R,
) -> Result<Graph, GenError> {
    params.validate()?;
    // Recursive expansion, iterative implementation: maintain the current
    // level's graph as an edge list over "blocks", then expand.
    //
    // Representation after expanding level i: nodes are dense ids, and
    // `edges` is the full edge list so far.
    let top = params.levels[0];
    let mut node_count = top.size;
    let mut edges = block_edges(top, rng)
        .into_iter()
        .collect::<Vec<(NodeId, NodeId)>>();

    for &level in &params.levels[1..] {
        let bs = level.size;
        let new_count = node_count * bs;
        let mut new_edges: Vec<(NodeId, NodeId)> =
            Vec::with_capacity(edges.len() + node_count * (bs + 1));
        // Each old edge becomes an edge between random members of the two
        // expanded blocks.
        for &(a, b) in &edges {
            let u = (a as usize * bs + rng.gen_range(0..bs)) as NodeId;
            let v = (b as usize * bs + rng.gen_range(0..bs)) as NodeId;
            new_edges.push((u, v));
        }
        // Each old node becomes a connected random block.
        for blk in 0..node_count {
            let base = (blk * bs) as NodeId;
            for (u, v) in block_edges(level, rng) {
                new_edges.push((base + u, base + v));
            }
        }
        node_count = new_count;
        edges = new_edges;
    }

    let mut b = GraphBuilder::new(node_count);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Edges of one connected random block: spanning tree + extras.
fn block_edges<R: Rng + ?Sized>(level: Level, rng: &mut R) -> Vec<(NodeId, NodeId)> {
    let mut edges = random_tree_edges(level.size, rng);
    for u in 0..level.size as NodeId {
        for v in (u + 1)..level.size as NodeId {
            if rng.gen::<f64>() < level.edge_prob {
                edges.push((u, v));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use mcast_topology::reachability::AverageReachability;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn three_level() -> HierarchicalParams {
        HierarchicalParams {
            levels: vec![
                Level {
                    size: 4,
                    edge_prob: 0.4,
                },
                Level {
                    size: 5,
                    edge_prob: 0.3,
                },
                Level {
                    size: 10,
                    edge_prob: 0.1,
                },
            ],
        }
    }

    #[test]
    fn node_count_is_product_of_levels() {
        let p = three_level();
        assert_eq!(p.node_count(), 200);
        let g = hierarchical(&p, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 200);
    }

    #[test]
    fn always_connected() {
        for seed in 0..10 {
            let g = hierarchical(&three_level(), &mut SmallRng::seed_from_u64(seed)).unwrap();
            assert!(Components::find(&g).is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn single_level_is_a_random_block() {
        let p = HierarchicalParams {
            levels: vec![Level {
                size: 12,
                edge_prob: 0.0,
            }],
        };
        let g = hierarchical(&p, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 11); // exactly the spanning tree
    }

    #[test]
    fn hierarchy_depth_trades_off_reachability_exponentiality() {
        // Two-level dense hierarchies behave like the paper's transit-stub
        // graphs (near-exponential T(r)); deep hierarchies of sparse
        // blocks stretch paths level by level and drift sub-exponential —
        // the same dichotomy §4 observes between ts* and ti* topologies.
        let r2_of = |levels: Vec<Level>, seed| {
            let g = hierarchical(
                &HierarchicalParams { levels },
                &mut SmallRng::seed_from_u64(seed),
            )
            .unwrap();
            let n = g.node_count() as u32;
            let sources: Vec<_> = (0..32u32).map(|i| i * (n / 32)).collect();
            AverageReachability::over_sources(&g, &sources)
                .unwrap()
                .exponential_fit_r2(0.9)
        };
        let shallow_dense = r2_of(
            vec![
                Level {
                    size: 30,
                    edge_prob: 0.2,
                },
                Level {
                    size: 36,
                    edge_prob: 0.25,
                },
            ],
            7,
        );
        let deep_sparse = r2_of(
            vec![
                Level {
                    size: 5,
                    edge_prob: 0.5,
                },
                Level {
                    size: 6,
                    edge_prob: 0.3,
                },
                Level {
                    size: 6,
                    edge_prob: 0.3,
                },
                Level {
                    size: 6,
                    edge_prob: 0.3,
                },
            ],
            7,
        );
        assert!(shallow_dense > 0.93, "shallow-dense R2 {shallow_dense}");
        assert!(
            deep_sparse < shallow_dense,
            "deep-sparse {deep_sparse} should fit worse than shallow-dense {shallow_dense}"
        );
    }

    #[test]
    fn validation() {
        assert!(HierarchicalParams { levels: vec![] }.validate().is_err());
        assert!(HierarchicalParams {
            levels: vec![Level {
                size: 0,
                edge_prob: 0.1
            }],
        }
        .validate()
        .is_err());
        assert!(HierarchicalParams {
            levels: vec![Level {
                size: 3,
                edge_prob: 1.2
            }],
        }
        .validate()
        .is_err());
        assert!(HierarchicalParams {
            levels: vec![
                Level {
                    size: 1 << 20,
                    edge_prob: 0.1
                };
                2
            ],
        }
        .validate()
        .is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = three_level();
        let a = hierarchical(&p, &mut SmallRng::seed_from_u64(9)).unwrap();
        let b = hierarchical(&p, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
