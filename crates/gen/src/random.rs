//! Flat random graphs (the GT-ITM "r" topology style).
//!
//! The paper's `r100` topology is a 100-node flat random graph. We provide
//! the two classical models: `G(n, p)` (each pair an edge independently
//! with probability `p`) and `G(n, m)` (exactly `m` distinct edges chosen
//! uniformly), plus connected variants that patch components together.

use crate::connect::connect_components;
use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Erdős–Rényi `G(n, p)`.
///
/// Uses geometric skipping so the cost is `O(n + E)` rather than `O(n²)`
/// for sparse graphs.
///
/// # Errors
/// Fails unless `0 ≤ p ≤ 1`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GenError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GenError::invalid(
            "p",
            format!("probability {p} not in [0, 1]"),
        ));
    }
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return Ok(b.build());
    }
    if p == 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                b.add_edge(u, v);
            }
        }
        return Ok(b.build());
    }
    // Enumerate candidate pairs in lexicographic order, skipping a
    // Geometric(p) number of pairs between successive edges.
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let log1mp = (-p).ln_1p();
    let mut idx: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log1mp).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total_pairs {
            break;
        }
        let (a, bnode) = pair_from_index(n as u64, idx);
        b.add_edge(a as NodeId, bnode as NodeId);
        idx += 1;
    }
    Ok(b.build())
}

/// Map a lexicographic pair index to the pair `(u, v)`, `u < v`, over `n`
/// nodes: index 0 → (0,1), 1 → (0,2), … Shared with the transit-stub
/// generator's skip-sampled intra-domain blocks.
pub(crate) fn pair_from_index(n: u64, idx: u64) -> (u64, u64) {
    // Pairs preceding row u: f(u) = u·(2n − u − 1)/2. Invert with the
    // quadratic formula, then nudge to absorb floating-point error.
    let before = |u: u64| u * (2 * n - u - 1) / 2;
    let disc = ((2 * n - 1) as f64).powi(2) - 8.0 * idx as f64;
    let mut u = (((2 * n - 1) as f64 - disc.max(0.0).sqrt()) / 2.0).floor() as u64;
    while u > 0 && before(u) > idx {
        u -= 1;
    }
    while before(u + 1) <= idx {
        u += 1;
    }
    let v = u + 1 + (idx - before(u));
    (u, v)
}

/// `G(n, m)`: exactly `m` distinct edges drawn uniformly (rejection
/// sampling; suitable for the sparse graphs this study uses).
///
/// # Errors
/// Fails if `m` exceeds the number of distinct pairs.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GenError> {
    let total = n as u128 * (n as u128 - 1) / 2;
    if (m as u128) > total {
        return Err(GenError::invalid(
            "m",
            format!("{m} edges requested but only {total} pairs exist"),
        ));
    }
    let mut b = GraphBuilder::new(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    Ok(b.build())
}

/// `G(n, p)` patched to be connected (minimum extra edges between
/// components, chosen at random).
pub fn gnp_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GenError> {
    let g = gnp(n, p, rng)?;
    Ok(connect_components(&g, rng))
}

/// Random graph targeting an average degree: `G(n, m)` with
/// `m = round(n·degree/2)`, patched to be connected.
pub fn random_with_degree<R: Rng + ?Sized>(
    n: usize,
    average_degree: f64,
    rng: &mut R,
) -> Result<Graph, GenError> {
    if average_degree < 0.0 || average_degree.is_nan() {
        return Err(GenError::invalid("average_degree", "must be non-negative"));
    }
    let _span = mcast_obs::span("gen.random");
    let m = ((n as f64) * average_degree / 2.0).round() as usize;
    let g = gnm(n, m, rng)?;
    Ok(connect_components(&g, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty = gnp(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 45);
    }

    #[test]
    fn gnp_invalid_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(gnp(5, -0.1, &mut rng).is_err());
        assert!(gnp(5, 1.5, &mut rng).is_err());
        assert!(gnp(5, f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let sd = (expected * (1.0 - p)).sqrt();
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 5.0 * sd,
            "edges {got} vs expected {expected} ± {sd}"
        );
    }

    #[test]
    fn pair_from_index_enumerates_lexicographically() {
        let n = 6u64;
        let mut idx = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_from_index(n, idx), (u, v), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn gnm_exact_count_and_validity() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = gnm(20, 30, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 30);
        assert!(gnm(4, 7, &mut rng).is_err()); // only 6 pairs
        let full = gnm(4, 6, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 6);
    }

    #[test]
    fn connected_variants_are_connected() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = gnp_connected(120, 0.01, &mut rng).unwrap();
        assert!(Components::find(&g).is_connected());
        let h = random_with_degree(200, 3.0, &mut rng).unwrap();
        assert!(Components::find(&h).is_connected());
        // Average degree close to the target (connectivity patching adds a
        // few extra edges at this density).
        assert!(
            (h.average_degree() - 3.0).abs() < 0.5,
            "{}",
            h.average_degree()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gnp(50, 0.08, &mut SmallRng::seed_from_u64(3)).unwrap();
        let b = gnp(50, 0.08, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
        let c = gnp(50, 0.08, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert_ne!(a, c);
    }
}
