//! Regular lattices: 2-D grids and tori.
//!
//! Lattices are the cleanest *real graphs* with polynomial reachability
//! (`S(r) ~ r` in 2-D), so they let the §4.3 non-exponential analysis be
//! checked against actual simulation rather than only against synthetic
//! `S(r)` profiles — see the `fig8` experiment's empirical companion.

use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};

fn checked_dims(width: usize, height: usize) -> Result<usize, GenError> {
    if width == 0 || height == 0 {
        return Err(GenError::invalid("width/height", "must be at least 1"));
    }
    let n = (width as u128) * (height as u128);
    if n > NodeId::MAX as u128 {
        return Err(GenError::TooLarge { requested: n });
    }
    Ok(n as usize)
}

/// A `width × height` 2-D grid (open boundaries). Node `(r, c)` has id
/// `r·width + c`.
pub fn grid_2d(width: usize, height: usize) -> Result<Graph, GenError> {
    let n = checked_dims(width, height)?;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * width + c) as NodeId;
    for r in 0..height {
        for c in 0..width {
            if c + 1 < width {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < height {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    Ok(b.build())
}

/// A `width × height` 2-D torus (wrap-around boundaries): vertex-transitive,
/// so reachability is source-independent — ideal for clean `S(r) ~ r`
/// measurements. Degenerate dimensions (1 or 2) collapse the wrap edge.
pub fn torus_2d(width: usize, height: usize) -> Result<Graph, GenError> {
    let n = checked_dims(width, height)?;
    let mut b = GraphBuilder::new(n);
    let id = |r: usize, c: usize| (r * width + c) as NodeId;
    for r in 0..height {
        for c in 0..width {
            if width > 1 {
                b.add_edge(id(r, c), id(r, (c + 1) % width));
            }
            if height > 1 {
                b.add_edge(id(r, c), id((r + 1) % height, c));
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use mcast_topology::reachability::Reachability;

    #[test]
    fn grid_counts() {
        let g = grid_2d(4, 3).unwrap();
        assert_eq!(g.node_count(), 12);
        // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8.
        assert_eq!(g.edge_count(), 17);
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn torus_counts_and_regularity() {
        let g = torus_2d(5, 4).unwrap();
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40); // 2 per node
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4, "node {v}");
        }
    }

    #[test]
    fn torus_reachability_is_linear_in_r() {
        // On an odd torus far from wrap, S(r) = 4r (diamond shells).
        let g = torus_2d(31, 31).unwrap();
        let reach = Reachability::from_source(&g, 0);
        for r in 1..10 {
            assert_eq!(reach.s(r), 4 * r as u64, "r={r}");
        }
        assert_eq!(reach.total(), 31 * 31);
    }

    #[test]
    fn torus_is_vertex_transitive_for_reachability() {
        let g = torus_2d(7, 9).unwrap();
        let a = Reachability::from_source(&g, 0);
        let b = Reachability::from_source(&g, 40);
        assert_eq!(a.s_vec(), b.s_vec());
    }

    #[test]
    fn degenerate_dimensions() {
        let line = grid_2d(5, 1).unwrap();
        assert_eq!(line.edge_count(), 4);
        let ring = torus_2d(5, 1).unwrap();
        assert_eq!(ring.edge_count(), 5);
        let single = grid_2d(1, 1).unwrap();
        assert_eq!(single.node_count(), 1);
        assert_eq!(single.edge_count(), 0);
        // Width 2 torus: wrap edge coincides with the grid edge.
        let two = torus_2d(2, 1).unwrap();
        assert_eq!(two.edge_count(), 1);
    }

    #[test]
    fn invalid_dimensions() {
        assert!(grid_2d(0, 4).is_err());
        assert!(torus_2d(4, 0).is_err());
        assert!(grid_2d(1 << 20, 1 << 20).is_err());
    }
}
