//! Connectivity helpers shared by the stochastic generators.
//!
//! Flat random graphs at the sparse densities the study uses are not always
//! connected, and the paper's measurement methodology needs every receiver
//! reachable from every source. Generators either patch connectivity by
//! linking components ([`connect_components`]) or the experiment suite
//! extracts the largest component — both options are provided.

use mcast_topology::components::Components;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Return a connected supergraph of `graph`: if it is disconnected, one
/// extra edge per additional component is added, joining a uniformly random
/// node of that component to a uniformly random node of the giant-so-far.
///
/// Adds the minimum number of edges (components − 1) and never removes any.
pub fn connect_components<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Graph {
    let comps = Components::find(graph);
    if comps.is_connected() {
        return graph.clone();
    }
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); comps.count()];
    for v in graph.nodes() {
        members[comps.label(v) as usize].push(v);
    }
    let mut b = GraphBuilder::new(graph.node_count());
    for (u, v) in graph.edges() {
        b.add_edge(u, v);
    }
    // Join every later component to the accumulated connected part, which
    // always contains component 0.
    let mut joined: Vec<NodeId> = members[0].clone();
    for comp in members.iter().skip(1) {
        let a = *joined.choose(rng).expect("joined part is non-empty");
        let c = *comp.choose(rng).expect("components are non-empty");
        b.add_edge(a, c);
        joined.extend_from_slice(comp);
    }
    b.build()
}

/// Draw a uniformly random spanning tree over `n` nodes (random attachment:
/// node `i` attaches to a uniform previous node after a random relabelling),
/// returning its edges. Used by generators that must be connected by
/// construction.
pub fn random_tree_edges<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<(NodeId, NodeId)> {
    if n <= 1 {
        return Vec::new();
    }
    let mut labels: Vec<NodeId> = (0..n as NodeId).collect();
    labels.shuffle(rng);
    (1..n)
        .map(|i| {
            let j = rng.gen_range(0..i);
            (labels[j], labels[i])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use mcast_topology::graph::from_edges;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn already_connected_is_unchanged() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let c = connect_components(&g, &mut rng);
        assert_eq!(g, c);
    }

    #[test]
    fn connects_with_minimum_extra_edges() {
        let g = from_edges(7, &[(0, 1), (2, 3), (4, 5)]); // 4 comps (6 isolated)
        let mut rng = SmallRng::seed_from_u64(7);
        let c = connect_components(&g, &mut rng);
        assert!(Components::find(&c).is_connected());
        assert_eq!(c.edge_count(), g.edge_count() + 3);
    }

    #[test]
    fn random_tree_is_spanning() {
        let mut rng = SmallRng::seed_from_u64(42);
        for n in [1usize, 2, 3, 10, 100] {
            let edges = random_tree_edges(n, &mut rng);
            assert_eq!(edges.len(), n.saturating_sub(1));
            let g = from_edges(n, &edges);
            assert!(Components::find(&g).is_connected(), "n={n}");
            assert_eq!(g.edge_count(), n.saturating_sub(1), "tree has no dupes");
        }
    }

    #[test]
    fn random_tree_varies_with_seed() {
        let a = random_tree_edges(30, &mut SmallRng::seed_from_u64(1));
        let b = random_tree_edges(30, &mut SmallRng::seed_from_u64(2));
        assert_ne!(a, b);
        // Deterministic for a fixed seed.
        let a2 = random_tree_edges(30, &mut SmallRng::seed_from_u64(1));
        assert_eq!(a, a2);
    }
}
