//! Two-level transit-stub hierarchies in the GT-ITM style
//! (Calvert/Doar/Zegura, IEEE Comm. Mag. '97 — reference \[1\] of the paper).
//!
//! The Internet's domain structure is modelled as a connected graph of
//! *transit domains*; every transit node anchors several *stub domains*;
//! extra transit–stub and stub–stub edges add the multihoming the real
//! network exhibits. The paper's `ts1000` (1000 nodes, average degree 3.6)
//! and `ts1008` (1008 nodes, average degree 7.5) topologies are produced by
//! [`TransitStubParams::ts1000`] and [`TransitStubParams::ts1008`].
//!
//! As the paper notes (§4.2), GT-ITM "constructs portions of the graph
//! randomly while constraining the gross structure", which is why
//! transit-stub reachability functions look exponential despite very
//! different average degrees.

use crate::connect::random_tree_edges;
use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Parameters of the transit-stub generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransitStubParams {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Nodes per transit domain.
    pub transit_domain_size: usize,
    /// Stub domains attached to each transit node.
    pub stubs_per_transit_node: usize,
    /// Nodes per stub domain.
    pub stub_domain_size: usize,
    /// Extra intra-domain edge probability for transit domains (on top of
    /// the spanning tree that guarantees connectivity).
    pub transit_edge_prob: f64,
    /// Extra intra-domain edge probability for stub domains.
    pub stub_edge_prob: f64,
    /// Additional random transit–stub edges (multihoming).
    pub extra_transit_stub_edges: usize,
    /// Additional random stub–stub edges (peering).
    pub extra_stub_stub_edges: usize,
}

impl TransitStubParams {
    /// Parameters reproducing the paper's `ts1000`: 1000 nodes,
    /// average degree ≈ 3.6.
    pub fn ts1000() -> Self {
        Self {
            transit_domains: 4,
            transit_domain_size: 5,
            stubs_per_transit_node: 7,
            stub_domain_size: 7,
            transit_edge_prob: 0.6,
            stub_edge_prob: 0.42,
            extra_transit_stub_edges: 30,
            extra_stub_stub_edges: 30,
        }
    }

    /// Parameters reproducing the paper's `ts1008`: 1008 nodes,
    /// average degree ≈ 7.5.
    pub fn ts1008() -> Self {
        Self {
            transit_domains: 6,
            transit_domain_size: 8,
            stubs_per_transit_node: 4,
            stub_domain_size: 5,
            transit_edge_prob: 0.8,
            stub_edge_prob: 0.55,
            extra_transit_stub_edges: 850,
            extra_stub_stub_edges: 850,
        }
    }

    /// `huge`-tier scaling of `ts1000`: 1,001,000 nodes with the same
    /// gross structure (a small transit core fanning out to many stub
    /// domains) and a comparable average degree. Stub domains of 100
    /// nodes put intra-domain edge generation on the skip-sampled path.
    pub fn ts1000000() -> Self {
        Self {
            transit_domains: 20,
            transit_domain_size: 50,
            stubs_per_transit_node: 10,
            stub_domain_size: 100,
            transit_edge_prob: 0.1,
            stub_edge_prob: 0.01,
            extra_transit_stub_edges: 30_000,
            extra_stub_stub_edges: 30_000,
        }
    }

    /// `huge`-tier scaling of `ts1008`: 1,009,008 nodes, denser stub
    /// interiors and heavier multihoming for a higher average degree
    /// (the `ts1008` analogue of the exponential-regime pair).
    pub fn ts1008000() -> Self {
        Self {
            transit_domains: 24,
            transit_domain_size: 42,
            stubs_per_transit_node: 8,
            stub_domain_size: 125,
            transit_edge_prob: 0.2,
            stub_edge_prob: 0.025,
            extra_transit_stub_edges: 850_000,
            extra_stub_stub_edges: 850_000,
        }
    }

    /// Total node count of the generated topology.
    pub fn node_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_domain_size;
        transit + transit * self.stubs_per_transit_node * self.stub_domain_size
    }

    /// Validate the parameter ranges.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.transit_domains == 0 {
            return Err(GenError::invalid("transit_domains", "must be at least 1"));
        }
        if self.transit_domain_size == 0 {
            return Err(GenError::invalid(
                "transit_domain_size",
                "must be at least 1",
            ));
        }
        if self.stub_domain_size == 0 && self.stubs_per_transit_node > 0 {
            return Err(GenError::invalid("stub_domain_size", "must be at least 1"));
        }
        for (name, p) in [
            ("transit_edge_prob", self.transit_edge_prob),
            ("stub_edge_prob", self.stub_edge_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(GenError::invalid(
                    name,
                    format!("probability {p} not in [0, 1]"),
                ));
            }
        }
        if self.node_count() > NodeId::MAX as usize {
            return Err(GenError::TooLarge {
                requested: self.node_count() as u128,
            });
        }
        Ok(())
    }
}

/// Node-id layout of a generated transit-stub topology, for tests and
/// structured receiver placement: transit nodes come first
/// (domain-major), then stub nodes grouped by owning transit node.
#[derive(Clone, Debug)]
pub struct TransitStubLayout {
    /// Number of transit nodes (ids `0..transit_count`).
    pub transit_count: usize,
    /// `stub_ranges[i]` = id range of the i-th stub domain.
    pub stub_ranges: Vec<std::ops::Range<NodeId>>,
}

/// Generate a transit-stub topology; connected by construction.
pub fn transit_stub<R: Rng + ?Sized>(
    params: TransitStubParams,
    rng: &mut R,
) -> Result<Graph, GenError> {
    Ok(transit_stub_with_layout(params, rng)?.0)
}

/// As [`transit_stub`], also returning the id layout.
pub fn transit_stub_with_layout<R: Rng + ?Sized>(
    params: TransitStubParams,
    rng: &mut R,
) -> Result<(Graph, TransitStubLayout), GenError> {
    params.validate()?;
    let _span = mcast_obs::span("gen.transit_stub");
    let t_domains = params.transit_domains;
    let t_size = params.transit_domain_size;
    let transit_count = t_domains * t_size;
    let mut b = GraphBuilder::new(params.node_count());

    // Transit domain interiors: spanning tree + random extra edges.
    for d in 0..t_domains {
        let base = (d * t_size) as NodeId;
        connected_random_block(&mut b, base, t_size, params.transit_edge_prob, rng);
    }
    // Top-level domain graph: random tree over domains plus one extra
    // random inter-domain edge per domain pair with modest probability,
    // each realised as an edge between random member nodes.
    for (da, db) in random_tree_edges(t_domains, rng) {
        let u = (da as usize * t_size) as NodeId + rng.gen_range(0..t_size) as NodeId;
        let v = (db as usize * t_size) as NodeId + rng.gen_range(0..t_size) as NodeId;
        b.add_edge(u, v);
    }
    if t_domains < SKIP_SAMPLING_THRESHOLD {
        for da in 0..t_domains {
            for db in (da + 1)..t_domains {
                if rng.gen::<f64>() < 0.25 {
                    let u = (da * t_size + rng.gen_range(0..t_size)) as NodeId;
                    let v = (db * t_size + rng.gen_range(0..t_size)) as NodeId;
                    b.add_edge(u, v);
                }
            }
        }
    } else {
        // Skip-sample the domain pairs first (the endpoint draws need the
        // same rng, so the hits are buffered; ~0.25·pairs of them).
        let mut hits = Vec::new();
        sample_block_pairs(t_domains, 0.25, rng, |da, db| hits.push((da, db)));
        for (da, db) in hits {
            let u = (da as usize * t_size + rng.gen_range(0..t_size)) as NodeId;
            let v = (db as usize * t_size + rng.gen_range(0..t_size)) as NodeId;
            b.add_edge(u, v);
        }
    }

    // Stub domains, each anchored to its transit node by one edge.
    let s_size = params.stub_domain_size;
    let mut next = transit_count as NodeId;
    let mut stub_ranges = Vec::new();
    for transit_node in 0..transit_count as NodeId {
        for _ in 0..params.stubs_per_transit_node {
            let base = next;
            connected_random_block(&mut b, base, s_size, params.stub_edge_prob, rng);
            let anchor = base + rng.gen_range(0..s_size) as NodeId;
            b.add_edge(transit_node, anchor);
            stub_ranges.push(base..base + s_size as NodeId);
            next += s_size as NodeId;
        }
    }

    // Multihoming and peering extras.
    let stub_total = params.node_count() - transit_count;
    if stub_total > 0 {
        for _ in 0..params.extra_transit_stub_edges {
            let t = rng.gen_range(0..transit_count) as NodeId;
            let s = transit_count as NodeId + rng.gen_range(0..stub_total) as NodeId;
            b.add_edge(t, s);
        }
        for _ in 0..params.extra_stub_stub_edges {
            let s1 = transit_count as NodeId + rng.gen_range(0..stub_total) as NodeId;
            let s2 = transit_count as NodeId + rng.gen_range(0..stub_total) as NodeId;
            if s1 != s2 {
                b.add_edge(s1, s2);
            }
        }
    }

    Ok((
        b.build(),
        TransitStubLayout {
            transit_count,
            stub_ranges,
        },
    ))
}

/// Block size at which [`connected_random_block`] switches from the
/// per-pair Bernoulli loop to geometric skip-sampling. Both draw from the
/// same edge distribution; the per-pair loop is kept below the threshold
/// so the paper-scale topologies (`ts1000`/`ts1008`, whose domains have at
/// most 8 nodes) consume their RNG streams exactly as before and every
/// committed golden stays byte-identical. Domains at or above the
/// threshold (the `huge` tier) use the new, documented seed stream: one
/// uniform draw per *sampled* pair instead of one per *candidate* pair.
const SKIP_SAMPLING_THRESHOLD: usize = 64;

/// Add a connected random block over ids `base..base+size`: a random
/// spanning tree plus each remaining pair independently with probability
/// `extra_prob`.
///
/// Blocks below [`SKIP_SAMPLING_THRESHOLD`] enumerate all pairs with one
/// Bernoulli draw each (O(size²), stream-compatible with every release to
/// date). Larger blocks skip a Geometric(`extra_prob`) number of pairs
/// between successive edges — identical inclusion distribution, O(size +
/// edges) cost — which is what makes 100-node stub domains at 10⁶ total
/// nodes affordable.
fn connected_random_block<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    base: NodeId,
    size: usize,
    extra_prob: f64,
    rng: &mut R,
) {
    for (u, v) in random_tree_edges(size, rng) {
        b.add_edge(base + u, base + v);
    }
    if size < SKIP_SAMPLING_THRESHOLD {
        for u in 0..size as NodeId {
            for v in (u + 1)..size as NodeId {
                if rng.gen::<f64>() < extra_prob {
                    b.add_edge(base + u, base + v);
                }
            }
        }
        return;
    }
    sample_block_pairs(size, extra_prob, rng, |u, v| {
        b.add_edge(base + u, base + v);
    });
}

/// Visit each of the `size·(size−1)/2` node pairs of a block
/// independently with probability `p`, in lexicographic order, via
/// geometric skipping (cost proportional to the pairs *visited*, not the
/// pairs considered). Mirrors the `G(n, p)` sampler in [`crate::random`].
fn sample_block_pairs<R: Rng + ?Sized>(
    size: usize,
    p: f64,
    rng: &mut R,
    mut visit: impl FnMut(NodeId, NodeId),
) {
    if p <= 0.0 || size < 2 {
        return;
    }
    if p >= 1.0 {
        for u in 0..size as NodeId {
            for v in (u + 1)..size as NodeId {
                visit(u, v);
            }
        }
        return;
    }
    let total_pairs = size as u64 * (size as u64 - 1) / 2;
    let log1mp = (-p).ln_1p();
    let mut idx: u64 = 0;
    loop {
        let x: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (x.ln() / log1mp).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total_pairs {
            break;
        }
        let (u, v) = crate::random::pair_from_index(size as u64, idx);
        visit(u as NodeId, v as NodeId);
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ts1000_matches_paper_shape() {
        let params = TransitStubParams::ts1000();
        assert_eq!(params.node_count(), 1000);
        let g = transit_stub(params, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 1000);
        assert!(Components::find(&g).is_connected());
        let deg = g.average_degree();
        assert!((3.0..4.2).contains(&deg), "average degree {deg}");
    }

    #[test]
    fn ts1008_matches_paper_shape() {
        let params = TransitStubParams::ts1008();
        assert_eq!(params.node_count(), 1008);
        let g = transit_stub(params, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 1008);
        assert!(Components::find(&g).is_connected());
        let deg = g.average_degree();
        assert!((6.5..8.5).contains(&deg), "average degree {deg}");
    }

    #[test]
    fn layout_partitions_nodes() {
        let params = TransitStubParams {
            transit_domains: 2,
            transit_domain_size: 3,
            stubs_per_transit_node: 2,
            stub_domain_size: 4,
            transit_edge_prob: 0.5,
            stub_edge_prob: 0.5,
            extra_transit_stub_edges: 3,
            extra_stub_stub_edges: 3,
        };
        let (g, layout) =
            transit_stub_with_layout(params, &mut SmallRng::seed_from_u64(5)).unwrap();
        assert_eq!(layout.transit_count, 6);
        assert_eq!(layout.stub_ranges.len(), 12);
        let covered: usize = layout.stub_ranges.iter().map(|r| r.len()).sum();
        assert_eq!(layout.transit_count + covered, g.node_count());
        // Ranges are disjoint and ordered.
        for w in layout.stub_ranges.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn stub_anchoring_gives_every_stub_domain_outside_access() {
        let params = TransitStubParams::ts1000();
        let (g, layout) =
            transit_stub_with_layout(params, &mut SmallRng::seed_from_u64(9)).unwrap();
        for range in &layout.stub_ranges {
            let has_external = range.clone().any(|v| {
                g.neighbors(v)
                    .iter()
                    .any(|&u| u < range.start || u >= range.end)
            });
            assert!(has_external, "stub domain {range:?} is isolated");
        }
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = TransitStubParams::ts1000();
        p.transit_domains = 0;
        assert!(p.validate().is_err());
        let mut p = TransitStubParams::ts1000();
        p.stub_edge_prob = 1.7;
        assert!(p.validate().is_err());
        let mut p = TransitStubParams::ts1000();
        p.transit_domain_size = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TransitStubParams::ts1000();
        let a = transit_stub(p, &mut SmallRng::seed_from_u64(3)).unwrap();
        let b = transit_stub(p, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn huge_param_sets_validate_and_count() {
        let p = TransitStubParams::ts1000000();
        p.validate().unwrap();
        assert_eq!(p.node_count(), 1_001_000);
        let p = TransitStubParams::ts1008000();
        p.validate().unwrap();
        assert_eq!(p.node_count(), 1_009_008);
    }

    #[test]
    fn skip_sampled_pairs_are_valid_sorted_and_distinct() {
        let size = SKIP_SAMPLING_THRESHOLD + 9;
        for seed in 0..50 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut last: Option<(NodeId, NodeId)> = None;
            sample_block_pairs(size, 0.2, &mut rng, |u, v| {
                assert!(u < v && (v as usize) < size, "({u}, {v})");
                if let Some(prev) = last {
                    assert!(prev < (u, v), "{prev:?} !< ({u}, {v})");
                }
                last = Some((u, v));
            });
        }
    }

    #[test]
    fn skip_sampling_matches_bernoulli_distribution() {
        // Distribution equivalence of the two samplers: each pair must be
        // included independently with probability p. Count per-pair
        // inclusion frequencies over many seeds and compare them to the
        // per-pair Bernoulli loop's. With 400 trials and p = 0.15 the
        // per-pair count is Binomial(400, 0.15): mean 60, σ ≈ 7.1 — a
        // ±32 window is ~4.5σ, far beyond chance across 2016 pairs but
        // tight enough to catch any systematic skew (an off-by-one in the
        // skip or a mis-inverted pair index shifts whole rows).
        let size = SKIP_SAMPLING_THRESHOLD; // 2016 pairs
        let p = 0.15;
        let trials = 400u32;
        let n_pairs = size * (size - 1) / 2;
        let mut skip_counts = vec![0u32; n_pairs];
        let mut bern_counts = vec![0u32; n_pairs];
        let pair_index = |u: usize, v: usize| u * (2 * size - u - 1) / 2 + (v - u - 1);
        for seed in 0..trials as u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            sample_block_pairs(size, p, &mut rng, |u, v| {
                skip_counts[pair_index(u as usize, v as usize)] += 1;
            });
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
            for u in 0..size {
                for v in (u + 1)..size {
                    if rng.gen::<f64>() < p {
                        bern_counts[pair_index(u, v)] += 1;
                    }
                }
            }
        }
        let expect = (trials as f64 * p).round() as i64; // 60
        for (counts, label) in [(&skip_counts, "skip"), (&bern_counts, "bernoulli")] {
            let total: u64 = counts.iter().map(|&c| c as u64).sum();
            let mean = total as f64 / n_pairs as f64;
            assert!(
                (mean - trials as f64 * p).abs() < 1.5,
                "{label}: mean inclusion count {mean} vs expected {expect}"
            );
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    (c as i64 - expect).abs() <= 32,
                    "{label}: pair {i} count {c} vs expected {expect}"
                );
            }
        }
    }

    #[test]
    fn skip_sampling_handles_probability_extremes() {
        let size = SKIP_SAMPLING_THRESHOLD;
        let mut rng = SmallRng::seed_from_u64(1);
        let mut count = 0usize;
        sample_block_pairs(size, 0.0, &mut rng, |_, _| count += 1);
        assert_eq!(count, 0);
        sample_block_pairs(size, 1.0, &mut rng, |_, _| count += 1);
        assert_eq!(count, size * (size - 1) / 2);
    }
}
