//! Two-level transit-stub hierarchies in the GT-ITM style
//! (Calvert/Doar/Zegura, IEEE Comm. Mag. '97 — reference \[1\] of the paper).
//!
//! The Internet's domain structure is modelled as a connected graph of
//! *transit domains*; every transit node anchors several *stub domains*;
//! extra transit–stub and stub–stub edges add the multihoming the real
//! network exhibits. The paper's `ts1000` (1000 nodes, average degree 3.6)
//! and `ts1008` (1008 nodes, average degree 7.5) topologies are produced by
//! [`TransitStubParams::ts1000`] and [`TransitStubParams::ts1008`].
//!
//! As the paper notes (§4.2), GT-ITM "constructs portions of the graph
//! randomly while constraining the gross structure", which is why
//! transit-stub reachability functions look exponential despite very
//! different average degrees.

use crate::connect::random_tree_edges;
use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Parameters of the transit-stub generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransitStubParams {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Nodes per transit domain.
    pub transit_domain_size: usize,
    /// Stub domains attached to each transit node.
    pub stubs_per_transit_node: usize,
    /// Nodes per stub domain.
    pub stub_domain_size: usize,
    /// Extra intra-domain edge probability for transit domains (on top of
    /// the spanning tree that guarantees connectivity).
    pub transit_edge_prob: f64,
    /// Extra intra-domain edge probability for stub domains.
    pub stub_edge_prob: f64,
    /// Additional random transit–stub edges (multihoming).
    pub extra_transit_stub_edges: usize,
    /// Additional random stub–stub edges (peering).
    pub extra_stub_stub_edges: usize,
}

impl TransitStubParams {
    /// Parameters reproducing the paper's `ts1000`: 1000 nodes,
    /// average degree ≈ 3.6.
    pub fn ts1000() -> Self {
        Self {
            transit_domains: 4,
            transit_domain_size: 5,
            stubs_per_transit_node: 7,
            stub_domain_size: 7,
            transit_edge_prob: 0.6,
            stub_edge_prob: 0.42,
            extra_transit_stub_edges: 30,
            extra_stub_stub_edges: 30,
        }
    }

    /// Parameters reproducing the paper's `ts1008`: 1008 nodes,
    /// average degree ≈ 7.5.
    pub fn ts1008() -> Self {
        Self {
            transit_domains: 6,
            transit_domain_size: 8,
            stubs_per_transit_node: 4,
            stub_domain_size: 5,
            transit_edge_prob: 0.8,
            stub_edge_prob: 0.55,
            extra_transit_stub_edges: 850,
            extra_stub_stub_edges: 850,
        }
    }

    /// Total node count of the generated topology.
    pub fn node_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_domain_size;
        transit + transit * self.stubs_per_transit_node * self.stub_domain_size
    }

    /// Validate the parameter ranges.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.transit_domains == 0 {
            return Err(GenError::invalid("transit_domains", "must be at least 1"));
        }
        if self.transit_domain_size == 0 {
            return Err(GenError::invalid(
                "transit_domain_size",
                "must be at least 1",
            ));
        }
        if self.stub_domain_size == 0 && self.stubs_per_transit_node > 0 {
            return Err(GenError::invalid("stub_domain_size", "must be at least 1"));
        }
        for (name, p) in [
            ("transit_edge_prob", self.transit_edge_prob),
            ("stub_edge_prob", self.stub_edge_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(GenError::invalid(
                    name,
                    format!("probability {p} not in [0, 1]"),
                ));
            }
        }
        if self.node_count() > NodeId::MAX as usize {
            return Err(GenError::TooLarge {
                requested: self.node_count() as u128,
            });
        }
        Ok(())
    }
}

/// Node-id layout of a generated transit-stub topology, for tests and
/// structured receiver placement: transit nodes come first
/// (domain-major), then stub nodes grouped by owning transit node.
#[derive(Clone, Debug)]
pub struct TransitStubLayout {
    /// Number of transit nodes (ids `0..transit_count`).
    pub transit_count: usize,
    /// `stub_ranges[i]` = id range of the i-th stub domain.
    pub stub_ranges: Vec<std::ops::Range<NodeId>>,
}

/// Generate a transit-stub topology; connected by construction.
pub fn transit_stub<R: Rng + ?Sized>(
    params: TransitStubParams,
    rng: &mut R,
) -> Result<Graph, GenError> {
    Ok(transit_stub_with_layout(params, rng)?.0)
}

/// As [`transit_stub`], also returning the id layout.
pub fn transit_stub_with_layout<R: Rng + ?Sized>(
    params: TransitStubParams,
    rng: &mut R,
) -> Result<(Graph, TransitStubLayout), GenError> {
    params.validate()?;
    let _span = mcast_obs::span("gen.transit_stub");
    let t_domains = params.transit_domains;
    let t_size = params.transit_domain_size;
    let transit_count = t_domains * t_size;
    let mut b = GraphBuilder::new(params.node_count());

    // Transit domain interiors: spanning tree + random extra edges.
    for d in 0..t_domains {
        let base = (d * t_size) as NodeId;
        connected_random_block(&mut b, base, t_size, params.transit_edge_prob, rng);
    }
    // Top-level domain graph: random tree over domains plus one extra
    // random inter-domain edge per domain pair with modest probability,
    // each realised as an edge between random member nodes.
    for (da, db) in random_tree_edges(t_domains, rng) {
        let u = (da as usize * t_size) as NodeId + rng.gen_range(0..t_size) as NodeId;
        let v = (db as usize * t_size) as NodeId + rng.gen_range(0..t_size) as NodeId;
        b.add_edge(u, v);
    }
    for da in 0..t_domains {
        for db in (da + 1)..t_domains {
            if rng.gen::<f64>() < 0.25 {
                let u = (da * t_size + rng.gen_range(0..t_size)) as NodeId;
                let v = (db * t_size + rng.gen_range(0..t_size)) as NodeId;
                b.add_edge(u, v);
            }
        }
    }

    // Stub domains, each anchored to its transit node by one edge.
    let s_size = params.stub_domain_size;
    let mut next = transit_count as NodeId;
    let mut stub_ranges = Vec::new();
    for transit_node in 0..transit_count as NodeId {
        for _ in 0..params.stubs_per_transit_node {
            let base = next;
            connected_random_block(&mut b, base, s_size, params.stub_edge_prob, rng);
            let anchor = base + rng.gen_range(0..s_size) as NodeId;
            b.add_edge(transit_node, anchor);
            stub_ranges.push(base..base + s_size as NodeId);
            next += s_size as NodeId;
        }
    }

    // Multihoming and peering extras.
    let stub_total = params.node_count() - transit_count;
    if stub_total > 0 {
        for _ in 0..params.extra_transit_stub_edges {
            let t = rng.gen_range(0..transit_count) as NodeId;
            let s = transit_count as NodeId + rng.gen_range(0..stub_total) as NodeId;
            b.add_edge(t, s);
        }
        for _ in 0..params.extra_stub_stub_edges {
            let s1 = transit_count as NodeId + rng.gen_range(0..stub_total) as NodeId;
            let s2 = transit_count as NodeId + rng.gen_range(0..stub_total) as NodeId;
            if s1 != s2 {
                b.add_edge(s1, s2);
            }
        }
    }

    Ok((
        b.build(),
        TransitStubLayout {
            transit_count,
            stub_ranges,
        },
    ))
}

/// Add a connected random block over ids `base..base+size`: a random
/// spanning tree plus each remaining pair independently with probability
/// `extra_prob`.
fn connected_random_block<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    base: NodeId,
    size: usize,
    extra_prob: f64,
    rng: &mut R,
) {
    for (u, v) in random_tree_edges(size, rng) {
        b.add_edge(base + u, base + v);
    }
    for u in 0..size as NodeId {
        for v in (u + 1)..size as NodeId {
            if rng.gen::<f64>() < extra_prob {
                b.add_edge(base + u, base + v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ts1000_matches_paper_shape() {
        let params = TransitStubParams::ts1000();
        assert_eq!(params.node_count(), 1000);
        let g = transit_stub(params, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 1000);
        assert!(Components::find(&g).is_connected());
        let deg = g.average_degree();
        assert!((3.0..4.2).contains(&deg), "average degree {deg}");
    }

    #[test]
    fn ts1008_matches_paper_shape() {
        let params = TransitStubParams::ts1008();
        assert_eq!(params.node_count(), 1008);
        let g = transit_stub(params, &mut SmallRng::seed_from_u64(1)).unwrap();
        assert_eq!(g.node_count(), 1008);
        assert!(Components::find(&g).is_connected());
        let deg = g.average_degree();
        assert!((6.5..8.5).contains(&deg), "average degree {deg}");
    }

    #[test]
    fn layout_partitions_nodes() {
        let params = TransitStubParams {
            transit_domains: 2,
            transit_domain_size: 3,
            stubs_per_transit_node: 2,
            stub_domain_size: 4,
            transit_edge_prob: 0.5,
            stub_edge_prob: 0.5,
            extra_transit_stub_edges: 3,
            extra_stub_stub_edges: 3,
        };
        let (g, layout) =
            transit_stub_with_layout(params, &mut SmallRng::seed_from_u64(5)).unwrap();
        assert_eq!(layout.transit_count, 6);
        assert_eq!(layout.stub_ranges.len(), 12);
        let covered: usize = layout.stub_ranges.iter().map(|r| r.len()).sum();
        assert_eq!(layout.transit_count + covered, g.node_count());
        // Ranges are disjoint and ordered.
        for w in layout.stub_ranges.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
        assert!(Components::find(&g).is_connected());
    }

    #[test]
    fn stub_anchoring_gives_every_stub_domain_outside_access() {
        let params = TransitStubParams::ts1000();
        let (g, layout) =
            transit_stub_with_layout(params, &mut SmallRng::seed_from_u64(9)).unwrap();
        for range in &layout.stub_ranges {
            let has_external = range.clone().any(|v| {
                g.neighbors(v)
                    .iter()
                    .any(|&u| u < range.start || u >= range.end)
            });
            assert!(has_external, "stub domain {range:?} is isolated");
        }
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = TransitStubParams::ts1000();
        p.transit_domains = 0;
        assert!(p.validate().is_err());
        let mut p = TransitStubParams::ts1000();
        p.stub_edge_prob = 1.7;
        assert!(p.validate().is_err());
        let mut p = TransitStubParams::ts1000();
        p.transit_domain_size = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TransitStubParams::ts1000();
        let a = transit_stub(p, &mut SmallRng::seed_from_u64(3)).unwrap();
        let b = transit_stub(p, &mut SmallRng::seed_from_u64(3)).unwrap();
        assert_eq!(a, b);
    }
}
