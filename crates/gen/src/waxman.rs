//! Waxman random graphs (Waxman, JSAC '88 — reference \[10\] of the paper).
//!
//! Nodes are placed uniformly in the unit square and each pair `(u, v)` is
//! linked with probability `α · exp(−d(u, v) / (β · L))`, where `d` is the
//! Euclidean distance and `L = √2` the maximal distance. This is the edge
//! model GT-ITM uses inside its domains; we also expose it standalone.

use crate::connect::connect_components;
use crate::error::GenError;
use mcast_topology::{Graph, GraphBuilder, NodeId};
use rand::Rng;

/// Parameters of the Waxman model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaxmanParams {
    /// Overall edge density, `0 < α ≤ 1`.
    pub alpha: f64,
    /// Distance decay: larger β ⇒ long edges more likely, `β > 0`.
    pub beta: f64,
}

impl WaxmanParams {
    /// Validate the parameter ranges.
    pub fn validate(&self) -> Result<(), GenError> {
        if self.alpha.is_nan() || self.alpha <= 0.0 || self.alpha > 1.0 {
            return Err(GenError::invalid("alpha", "must be in (0, 1]"));
        }
        if self.beta.is_nan() || self.beta <= 0.0 {
            return Err(GenError::invalid("beta", "must be positive"));
        }
        Ok(())
    }
}

/// Generate a Waxman graph over `n` uniformly placed nodes.
pub fn waxman<R: Rng + ?Sized>(
    n: usize,
    params: WaxmanParams,
    rng: &mut R,
) -> Result<Graph, GenError> {
    params.validate()?;
    let _span = mcast_obs::span("gen.waxman");
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    Ok(waxman_over_points(&points, params, rng))
}

/// Waxman edges over caller-provided points (used by the hierarchy
/// generators, which lay points out per-domain).
pub fn waxman_over_points<R: Rng + ?Sized>(
    points: &[(f64, f64)],
    params: WaxmanParams,
    rng: &mut R,
) -> Graph {
    let n = points.len();
    let l = std::f64::consts::SQRT_2;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = params.alpha * (-d / (params.beta * l)).exp();
            if rng.gen::<f64>() < p {
                b.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    b.build()
}

/// Connected Waxman graph (components patched with minimal extra edges).
pub fn waxman_connected<R: Rng + ?Sized>(
    n: usize,
    params: WaxmanParams,
    rng: &mut R,
) -> Result<Graph, GenError> {
    let g = waxman(n, params, rng)?;
    Ok(connect_components(&g, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::components::Components;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const P: WaxmanParams = WaxmanParams {
        alpha: 0.25,
        beta: 0.2,
    };

    #[test]
    fn parameter_validation() {
        assert!(WaxmanParams {
            alpha: 0.0,
            beta: 0.1
        }
        .validate()
        .is_err());
        assert!(WaxmanParams {
            alpha: 1.5,
            beta: 0.1
        }
        .validate()
        .is_err());
        assert!(WaxmanParams {
            alpha: 0.5,
            beta: 0.0
        }
        .validate()
        .is_err());
        assert!(WaxmanParams {
            alpha: 0.5,
            beta: -1.0
        }
        .validate()
        .is_err());
        assert!(P.validate().is_ok());
    }

    #[test]
    fn denser_alpha_means_more_edges() {
        let sparse = waxman(
            150,
            WaxmanParams {
                alpha: 0.1,
                beta: 0.2,
            },
            &mut SmallRng::seed_from_u64(2),
        )
        .unwrap();
        let dense = waxman(
            150,
            WaxmanParams {
                alpha: 0.9,
                beta: 0.2,
            },
            &mut SmallRng::seed_from_u64(2),
        )
        .unwrap();
        assert!(dense.edge_count() > sparse.edge_count());
    }

    #[test]
    fn short_edges_dominate_for_small_beta() {
        // With a tiny beta, edges should connect mostly nearby points:
        // compare mean edge length against the all-pairs mean (~0.52).
        let n = 200;
        let mut rng = SmallRng::seed_from_u64(3);
        let points: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen(), rng.gen())).collect();
        let g = waxman_over_points(
            &points,
            WaxmanParams {
                alpha: 1.0,
                beta: 0.05,
            },
            &mut rng,
        );
        assert!(g.edge_count() > 20, "need enough edges to average");
        let mean_len: f64 = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (points[u as usize], points[v as usize]);
                ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
            })
            .sum::<f64>()
            / g.edge_count() as f64;
        assert!(mean_len < 0.25, "mean edge length {mean_len}");
    }

    #[test]
    fn connected_variant_is_connected() {
        let g = waxman_connected(120, P, &mut SmallRng::seed_from_u64(4)).unwrap();
        assert!(Components::find(&g).is_connected());
        assert_eq!(g.node_count(), 120);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = waxman(60, P, &mut SmallRng::seed_from_u64(9)).unwrap();
        let b = waxman(60, P, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
