//! Figure 3 kernel: the exact Eq 4 tree-size curve, receivers at leaves.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_analysis::kary::{l_hat_leaves, leaf_count};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    for (k, d) in [(2.0f64, 17u32), (4.0, 9)] {
        let m = leaf_count(k, d);
        g.bench_function(format!("l_hat_leaves/k{k}_D{d}_49pts"), |b| {
            b.iter(|| {
                let mut x = 1e-6;
                let step = (1.0f64 / 1e-6).powf(1.0 / 48.0);
                let mut acc = 0.0;
                for _ in 0..49 {
                    acc += l_hat_leaves(k, d, x * m);
                    x *= step;
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
