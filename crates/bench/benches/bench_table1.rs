//! Table 1 kernel: per-network statistics (path stats + reachability).

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_experiments::figures::table1::network_stats;
use mcast_experiments::networks::{self, NetworkKind};
use mcast_experiments::RunConfig;

fn bench(c: &mut Criterion) {
    let cfg = RunConfig::fast();
    let ts1000 = networks::ts1000(&cfg);
    let arpa = networks::arpa(&cfg);
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("network_stats/ts1000", |b| {
        b.iter(|| network_stats("ts1000", NetworkKind::Generated, &ts1000.graph))
    });
    g.bench_function("network_stats/ARPA", |b| {
        b.iter(|| network_stats("ARPA", NetworkKind::Real, &arpa.graph))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
