//! Figure 6 kernel: the measured normalised tree-size curve L(n)/(n u).

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_bench::{bench_measure_config, bench_run_config};
use mcast_experiments::networks;
use mcast_experiments::runner::{log_grid, parallel_lhat_curve};

fn bench(c: &mut Criterion) {
    let cfg = bench_run_config();
    let mcfg = bench_measure_config();
    let ts1000 = networks::ts1000(&cfg);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("lhat_curve/ts1000", |b| {
        let ns = log_grid(1000, 4);
        b.iter(|| parallel_lhat_curve(&ts1000.graph, &ns, &mcfg, &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
