//! Figure 9 kernel: the affinity Metropolis chain.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_gen::kary::KaryTree;
use mcast_tree::affinity::{mean_tree_size, AffinityConfig, RootedTree};

fn bench(c: &mut Criterion) {
    let graph = KaryTree::new(2, 10).unwrap().into_graph();
    let tree = RootedTree::from_graph(&graph, 0);
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    for beta in [0.0f64, 1.0, -1.0] {
        g.bench_function(format!("mcmc/D10_n100_beta{beta}"), |b| {
            let cfg = AffinityConfig {
                beta,
                burn_in_sweeps: 10,
                sample_sweeps: 20,
                seed: 1999,
            };
            b.iter(|| mean_tree_size(&tree, 100, &cfg))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
