//! Figure 8 kernel: Eq 23 over synthetic reachability profiles.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_analysis::reachability::{l_hat_leaves_from_profile, SyntheticReachability};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    let families = [
        (
            "exp",
            SyntheticReachability::Exponential {
                lambda: 2.0f64.ln(),
            },
        ),
        ("pow", SyntheticReachability::PowerLaw { lambda: 3.0 }),
        (
            "super",
            SyntheticReachability::SuperExponential {
                lambda: 2.0f64.ln() / 20.0,
            },
        ),
    ];
    for (name, fam) in families {
        let profile = fam.profile(20, 2.0f64.powi(20));
        g.bench_function(format!("l_hat_profile/{name}_51pts"), |b| {
            b.iter(|| {
                let mut n = 1.0f64;
                let step = 1e10f64.powf(1.0 / 50.0);
                let mut acc = 0.0;
                for _ in 0..51 {
                    acc += l_hat_leaves_from_profile(&profile, n);
                    n *= step;
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
