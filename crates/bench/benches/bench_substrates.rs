//! Substrate performance: BFS, delivery-tree sizing, generators.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_experiments::networks;
use mcast_experiments::RunConfig;
use mcast_gen::power_law::{power_law, PowerLawParams};
use mcast_gen::tiers::{tiers, TiersParams};
use mcast_gen::transit_stub::{transit_stub, TransitStubParams};
use mcast_topology::bfs::Bfs;
use mcast_topology::spdag::SpDag;
use mcast_tree::affinity_general::DistanceMatrix;
use mcast_tree::dynamics::{simulate_churn, ChurnConfig, LifetimeShape};
use mcast_tree::policy::{sizer_with_policy, TieBreak};
use mcast_tree::sampling::{with_replacement, ReceiverPool};
use mcast_tree::steiner::SteinerHeuristic;
use mcast_tree::DeliverySizer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let cfg = RunConfig::fast();
    let ts1000 = networks::ts1000(&cfg).graph;
    let as_map = networks::as_map(&cfg).graph;

    let mut g = c.benchmark_group("substrates");
    g.bench_function("bfs/ts1000", |b| {
        let mut bfs = Bfs::new(&ts1000);
        let mut s = 0u32;
        b.iter(|| {
            bfs.run_scratch(s % 1000);
            s = s.wrapping_add(37);
            bfs.scratch_order().len()
        })
    });
    g.bench_function("bfs/as4902", |b| {
        let mut bfs = Bfs::new(&as_map);
        let mut s = 0u32;
        b.iter(|| {
            bfs.run_scratch(s % 4902);
            s = s.wrapping_add(37);
            bfs.scratch_order().len()
        })
    });
    g.bench_function("delivery/ts1000_m100", |b| {
        let mut sizer = DeliverySizer::from_graph(&ts1000, 0);
        let pool = ReceiverPool::AllExceptSource {
            nodes: 1000,
            source: 0,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = Vec::new();
        b.iter(|| {
            with_replacement(&pool, 100, &mut rng, &mut buf);
            sizer.tree_links(&buf)
        })
    });
    g.bench_function("spdag/ts1000", |b| {
        let mut s = 0u32;
        b.iter(|| {
            let dag = SpDag::new(&ts1000, s % 1000);
            s = s.wrapping_add(37);
            dag.predecessors(999).len()
        })
    });
    g.bench_function("steiner/ts1000_m20", |b| {
        let mut steiner = SteinerHeuristic::new(&ts1000);
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let receivers: Vec<u32> = (0..20).map(|_| rng.gen_range(1..1000u32)).collect();
            steiner.tree_links(0, &receivers)
        })
    });
    g.bench_function("policy/random_tiebreak_ts1000", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| sizer_with_policy(&ts1000, 0, TieBreak::Random, &mut rng).tree_links(&[999]))
    });
    g.sample_size(10);
    g.bench_function("churn/ts1000_5k_events", |b| {
        b.iter(|| {
            simulate_churn(
                &ts1000,
                0,
                &ChurnConfig {
                    arrival_rate: 20.0,
                    mean_lifetime: 1.0,
                    lifetime_shape: LifetimeShape::Exponential,
                    warmup_events: 500,
                    sample_events: 4500,
                    seed: 4,
                },
            )
            .mean_links
        })
    });
    g.bench_function("distance_matrix/ts1000", |b| {
        b.iter(|| DistanceMatrix::new(&ts1000).get(0, 999))
    });
    g.bench_function("gen/transit_stub_1000", |b| {
        b.iter(|| {
            transit_stub(TransitStubParams::ts1000(), &mut SmallRng::seed_from_u64(1)).unwrap()
        })
    });
    g.bench_function("gen/tiers_5000", |b| {
        b.iter(|| tiers(TiersParams::ti5000(), &mut SmallRng::seed_from_u64(1)).unwrap())
    });
    g.bench_function("gen/power_law_4902", |b| {
        b.iter(|| power_law(PowerLawParams::as_map(), &mut SmallRng::seed_from_u64(1)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
