//! BFS kernel: scalar one-source-at-a-time sweeps against the
//! bit-parallel 64-lane batch, on the reachability workload Figures 6/7
//! and Table 1 actually run (64 spread sources per topology).

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_experiments::figures::table1::spread_sources;
use mcast_experiments::networks;
use mcast_experiments::RunConfig;
use mcast_topology::bfs::Bfs;
use mcast_topology::graph::{Graph, NodeId};
use mcast_topology::reachability::{AverageReachability, Reachability};

/// The pre-batch schedule, replicated exactly: one reused scratch BFS
/// run per source, buffered profiles, then the padded float T(r) merge
/// (what `over_sources` did before the bit-parallel kernel).
fn scalar_over_sources(graph: &Graph, sources: &[NodeId]) -> Vec<f64> {
    let mut bfs = Bfs::new(graph);
    let mut profiles = Vec::with_capacity(sources.len());
    let mut max_ecc = 0usize;
    for &s in sources {
        bfs.run_scratch(s);
        let p = Reachability::from_distances(bfs.scratch_distances(), bfs.scratch_order());
        max_ecc = max_ecc.max(p.eccentricity());
        profiles.push(p);
    }
    let mut t = vec![0.0f64; max_ecc + 1];
    for p in &profiles {
        let tv = p.t_vec();
        for (r, slot) in t.iter_mut().enumerate() {
            let val = if r < tv.len() {
                tv[r]
            } else {
                *tv.last().unwrap()
            };
            *slot += val as f64;
        }
    }
    for slot in &mut t {
        *slot /= sources.len() as f64;
    }
    t
}

fn bench(c: &mut Criterion) {
    let cfg = RunConfig::fast();
    let ts1000 = networks::ts1000(&cfg);
    let ti5000 = networks::ti5000(&cfg);
    let arpa = networks::arpa(&cfg);
    let mut g = c.benchmark_group("bfs");
    g.sample_size(10);
    for net in [&ts1000, &ti5000, &arpa] {
        let sources = spread_sources(&net.graph, 64);
        // The two schedules must agree bit-for-bit before being timed.
        let batched = AverageReachability::over_sources(&net.graph, &sources).unwrap();
        let scalar = scalar_over_sources(&net.graph, &sources);
        assert_eq!(batched.t_vec().len(), scalar.len());
        for (a, b) in batched.t_vec().iter().zip(&scalar) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        g.bench_function(format!("scalar64/{}", net.name).as_str(), |b| {
            b.iter(|| scalar_over_sources(&net.graph, &sources))
        });
        g.bench_function(format!("batched64/{}", net.name).as_str(), |b| {
            b.iter(|| AverageReachability::over_sources(&net.graph, &sources).unwrap())
        });
        // A single scalar traversal for per-BFS cost context.
        let mut bfs = Bfs::new(&net.graph);
        g.bench_function(format!("scalar1/{}", net.name).as_str(), |b| {
            b.iter(|| bfs.run(sources[0]).reached_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
