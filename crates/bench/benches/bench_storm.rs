//! Multi-session storm engine: flash-crowd ignition (batched skeleton
//! grafts) and steady-state session churn, on the suite topologies. The
//! numbers to watch are events/sec through the indexed queue and the
//! flash burst's skeleton-build cost — the two paths `mcs storm` leans
//! on at scale.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_experiments::networks;
use mcast_experiments::RunConfig;
use mcast_tree::dynamics::{ChurnConfig, LifetimeShape};
use mcast_tree::storm::{simulate_flash, simulate_steady, FlashConfig, SteadyConfig};

fn flash_cfg(sessions: u32) -> FlashConfig {
    FlashConfig {
        sessions,
        receivers_per_session: 5,
        beta: 1.0,
        sampler_sweeps: 1,
        burst_time: 1.0,
        join_window: 1.0,
        mean_lifetime: 3.0,
        sample_every: 0,
        seed: 1999,
    }
}

fn steady_cfg() -> SteadyConfig {
    SteadyConfig {
        session_rate: 50.0,
        mean_session_lifetime: 2.0,
        member: ChurnConfig {
            arrival_rate: 10.0,
            mean_lifetime: 1.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 0,
            sample_events: 0,
            seed: 0,
        },
        horizon: 20.0,
        measure_from: 5.0,
        sample_every: 0,
        seed: 1999,
    }
}

fn bench(c: &mut Criterion) {
    let cfg = RunConfig::fast();
    let ts1000 = networks::ts1000(&cfg);
    let ti5000 = networks::ti5000(&cfg);
    let mut g = c.benchmark_group("storm");
    g.sample_size(10);

    // Flash on ts1000: the burst tick grafts 2000 sessions at once, so
    // the batched skeleton path dominates.
    let f2k = flash_cfg(2_000);
    let out = simulate_flash(&ts1000.graph, 0, &f2k).unwrap();
    assert_eq!(out.peak_sessions, 2_000);
    assert!(out.batch_sweeps > 0, "the burst must take the batched path");
    g.bench_function("flash2k/ts1000", |b| {
        b.iter(|| simulate_flash(&ts1000.graph, 0, &f2k).unwrap())
    });

    // Flash on the largest generated topology: skeleton sharing across
    // 10k sessions rooted at ~5000 distinct sources.
    let f10k = flash_cfg(10_000);
    g.bench_function("flash10k/ti5000", |b| {
        b.iter(|| simulate_flash(&ti5000.graph, 0, &f10k).unwrap())
    });

    // Steady state on ts1000: event-queue throughput with sessions
    // arriving and draining continuously.
    let s = steady_cfg();
    g.bench_function("steady/ts1000", |b| {
        b.iter(|| simulate_steady(&ts1000.graph, &s).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
