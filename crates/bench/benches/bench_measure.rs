//! The measurement engine: per-source setup vs per-sample cost, and the
//! source-dedup payoff on the paper's with-replacement source schedule.
//!
//! `workload/repeated_sources_*` is the acceptance pair: 100 source draws
//! over ARPA's 47 nodes (≈ 44 distinct), naive one-BFS-per-index vs the
//! dedup engine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mcast_experiments::{networks, RunConfig};
use mcast_gen::arpa::arpa;
use mcast_topology::Graph;
use mcast_tree::delivery::DeliverySizer;
use mcast_tree::measure::{
    measure_group, merge_indexed, pick_source, ratio_curve, source_rng, CurvePoint, MeasureConfig,
    MeasureEngine, SampleKind, SourceMeasurer, SourcePlan,
};
use mcast_tree::sampling::{self, ReceiverPool};
use mcast_tree::RunningStats;

/// The pre-PR schedule, replicated with today's public API: a fresh
/// BFS + sizer + ū scan per source index (`SourceMeasurer::new` did all
/// three) and a fresh Floyd dedup set per sample (`sampling::distinct`),
/// merged in index order. Draws the exact same RNG streams as the engine,
/// so both sides produce bit-identical curves.
fn naive_ratio_curve(graph: &Graph, xs: &[usize], cfg: &MeasureConfig) -> Vec<CurvePoint> {
    let mut per_index = Vec::with_capacity(cfg.sources);
    for index in 0..cfg.sources {
        let source = pick_source(graph, cfg.seed, index);
        let pool = ReceiverPool::AllExceptSource {
            nodes: graph.node_count(),
            source,
        };
        let mut sizer = DeliverySizer::from_graph(graph, source);
        // ū over the pool: measurer construction always computed this,
        // even on the §2 ratio path that doesn't read it.
        let mut total = 0u64;
        for i in 0..pool.len() {
            if let Some(d) = sizer.distance(pool.site(i)) {
                total += d as u64;
            }
        }
        std::hint::black_box(total);
        let mut rng = source_rng(cfg.seed, index);
        let mut buf = Vec::new();
        let mut per_x = Vec::with_capacity(xs.len());
        for &x in xs {
            let mut stats = RunningStats::new();
            for _ in 0..cfg.receiver_sets {
                sampling::distinct(&pool, x, &mut rng, &mut buf);
                let (tree, unicast) = sizer.sample(&buf);
                stats.push(tree as f64 * x as f64 / unicast as f64);
            }
            per_x.push(stats);
        }
        per_index.push(Some(per_x));
    }
    merge_indexed(xs, per_index)
}

/// The dedup schedule, spelled out so the bench measures exactly what the
/// sequential/parallel drivers run.
fn engine_ratio_curve(graph: &Graph, xs: &[usize], cfg: &MeasureConfig) -> Vec<CurvePoint> {
    ratio_curve(graph, xs, cfg)
}

fn bench(c: &mut Criterion) {
    let arpa = arpa();
    let cfg = RunConfig::fast();
    let ts1000 = networks::ts1000(&cfg).graph;

    let mut g = c.benchmark_group("measure");

    // Per-source setup: what binding one *new* source costs.
    g.bench_function("setup/fresh_measurer_arpa47", |b| {
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 7) % 47;
            SourceMeasurer::new(&arpa, s).mean_distance()
        })
    });
    g.bench_function("setup/engine_rebind_arpa47", |b| {
        let mut engine = MeasureEngine::new(&arpa);
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 7) % 47;
            engine.bind(s).mean_distance()
        })
    });
    g.bench_function("setup/fresh_measurer_ts1000", |b| {
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 37) % 1000;
            SourceMeasurer::new(&ts1000, s).mean_distance()
        })
    });
    g.bench_function("setup/engine_rebind_ts1000", |b| {
        let mut engine = MeasureEngine::new(&ts1000);
        let mut s = 0u32;
        b.iter(|| {
            s = (s + 37) % 1000;
            engine.bind(s).mean_distance()
        })
    });

    // Per-sample steady state: the zero-allocation hot path.
    g.bench_function("sample/ratio_arpa47_m10", |b| {
        let mut m = SourceMeasurer::new(&arpa, 0);
        let mut rng = source_rng(1999, 0);
        b.iter(|| m.ratio_sample(10, &mut rng))
    });
    g.bench_function("sample/ratio_ts1000_m100", |b| {
        let mut m = SourceMeasurer::new(&ts1000, 0);
        let mut rng = source_rng(1999, 0);
        b.iter(|| m.ratio_sample(100, &mut rng))
    });
    g.bench_function("sample/cache_hit_bind_arpa47", |b| {
        let mut engine = MeasureEngine::new(&arpa);
        let _ = engine.bind(3);
        b.iter(|| engine.bind(3).pool_size())
    });

    // The paper's repeated-source workload (§2: sources drawn with
    // replacement): 100 draws over 47 nodes ≈ 44 distinct.
    let mcfg = MeasureConfig {
        sources: 100,
        receiver_sets: 4,
        seed: 1999,
    };
    let xs = [2usize, 8, 16];
    let plan = SourcePlan::new(&arpa, &mcfg);
    assert!(
        plan.distinct() < plan.total(),
        "workload must repeat sources"
    );
    let samples = (mcfg.sources * xs.len() * mcfg.receiver_sets) as u64;
    g.throughput(Throughput::Elements(samples));
    g.bench_function("workload/repeated_sources_arpa_naive", |b| {
        b.iter(|| naive_ratio_curve(&arpa, &xs, &mcfg))
    });
    g.bench_function("workload/repeated_sources_arpa_engine", |b| {
        b.iter(|| engine_ratio_curve(&arpa, &xs, &mcfg))
    });

    // Group-at-a-time measurement, the parallel drivers' unit of work.
    g.bench_function("workload/measure_group_arpa", |b| {
        let mut engine = MeasureEngine::new(&arpa);
        let group = &plan.groups()[0];
        b.iter(|| measure_group(&mut engine, group, &xs, &mcfg, SampleKind::Ratio))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
