//! Figure 4 kernel: L(m) via the occupancy conversion (Eq 18).

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_analysis::nm::l_of_m_leaves;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.bench_function("l_of_m_leaves/k2_D17_45pts", |b| {
        b.iter(|| {
            let mut m = 1.0f64;
            let step = (0.99f64 * 131072.0).powf(1.0 / 44.0);
            let mut acc = 0.0;
            for _ in 0..45 {
                acc += l_of_m_leaves(2.0, 17, m);
                m *= step;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
