//! Figure 7 kernel: averaged reachability T(r).

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_experiments::figures::table1::spread_sources;
use mcast_experiments::networks;
use mcast_experiments::RunConfig;
use mcast_topology::reachability::AverageReachability;

fn bench(c: &mut Criterion) {
    let cfg = RunConfig::fast();
    let ts1000 = networks::ts1000(&cfg);
    let ti5000 = networks::ti5000(&cfg);
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for net in [&ts1000, &ti5000] {
        let sources = spread_sources(&net.graph, 64);
        g.bench_function(format!("avg_reachability/{}", net.name), |b| {
            b.iter(|| AverageReachability::over_sources(&net.graph, &sources).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
