//! The serve daemon's hot path: a warm-cache measurement query over a
//! fresh TCP connection — parse, admission, quota, single-flight memo,
//! cached body — and the raw protocol codec. The number to watch is the
//! warm round-trip, which bounds the QPS a drill like
//! `bench_serve_baseline` can sustain.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_experiments::networks;
use mcast_experiments::service::ServeBackend;
use mcast_experiments::RunConfig;
use mcast_serve::protocol::{encode_request, parse_response, RequestParser, DEFAULT_MAX_BODY_BYTES};
use mcast_serve::{serve, QuotaConfig, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

fn http(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let raw = encode_request(method, target, &[("X-Client-Id", "bench")], body);
    stream.write_all(&raw).expect("send");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read");
    let resp = parse_response(&buf).expect("well-formed response");
    (resp.status, resp.body)
}

fn bench(c: &mut Criterion) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        quota: QuotaConfig {
            rate_per_sec: 1e9,
            burst: 1e9,
        },
        ..ServeConfig::default()
    };
    let handle = serve(config, Arc::new(ServeBackend::new(0))).expect("boot daemon");
    let addr = handle.addr();

    let cfg = RunConfig::fast();
    let arpa = networks::arpa(&cfg);
    let edge_list = mcast_topology::io::write_edge_list(&arpa.graph);
    let (status, up_body) = http(addr, "POST", "/v1/topo?format=edge-list", edge_list.as_bytes());
    assert_eq!(status, 201);
    let up = String::from_utf8(up_body).unwrap();
    let id_start = up.find("\"id\":\"").expect("id field") + 6;
    let id_end = up[id_start..].find('"').unwrap() + id_start;
    let query = format!(
        "{{\"topology\":\"{}\",\"kind\":\"ratio\",\"seed\":7,\
         \"sources\":2,\"receiver_sets\":2,\"xs\":[1,2,4]}}",
        &up[id_start..id_end]
    );

    // Prime the curve so the timed loop measures the warm path only.
    let (status, expected) = http(addr, "POST", "/v1/measure", query.as_bytes());
    assert_eq!(status, 200);

    let mut g = c.benchmark_group("serve");
    g.sample_size(20);

    g.bench_function("warm_query/arpa", |b| {
        b.iter(|| {
            let (status, body) = http(addr, "POST", "/v1/measure", query.as_bytes());
            assert_eq!(status, 200);
            assert_eq!(body, expected);
        })
    });

    // Codec-only floor: encode + incremental parse of a measure request,
    // no socket.
    let raw = encode_request(
        "POST",
        "/v1/measure",
        &[("X-Client-Id", "bench")],
        query.as_bytes(),
    );
    g.bench_function("codec/measure_request", |b| {
        b.iter(|| {
            let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
            parser.feed(&raw).unwrap().expect("frames")
        })
    });
    g.finish();

    http(addr, "POST", "/v1/admin/shutdown", b"");
    handle.join();
}

criterion_group!(benches, bench);
criterion_main!(benches);
