//! Figure 2 kernel: the exact scaling function h(x).

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_analysis::hfunc::h_exact;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.bench_function("h_exact/k2_D17_sweep", |b| {
        b.iter(|| {
            (1..=50)
                .map(|i| h_exact(2.0, 17, i as f64 * 0.02))
                .sum::<f64>()
        })
    });
    g.bench_function("h_exact/k4_D9_sweep", |b| {
        b.iter(|| {
            (1..=50)
                .map(|i| h_exact(4.0, 9, i as f64 * 0.02))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
