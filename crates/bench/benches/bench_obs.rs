//! Observability overhead: the same Monte-Carlo curve measured with the
//! obs layer disabled and enabled. The acceptance bar is that the
//! instrumented run stays within a few percent of the uninstrumented
//! one — the hot path is a relaxed atomic load when off, and batched
//! per-source counter flushes when on.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_experiments::runner::parallel_ratio_curve;
use mcast_experiments::RunConfig;
use mcast_topology::graph::from_edges;
use mcast_topology::Graph;
use mcast_tree::measure::MeasureConfig;

/// Complete binary tree of the given depth (depth 9 = 1023 nodes).
fn binary_tree(depth: u32) -> Graph {
    let n = (1u32 << (depth + 1)) - 1;
    let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
    from_edges(n as usize, &edges)
}

fn bench(c: &mut Criterion) {
    let graph = binary_tree(9);
    let mcfg = MeasureConfig {
        sources: 8,
        receiver_sets: 16,
        seed: 1999,
    };
    // Single-threaded so the comparison measures instrumentation cost,
    // not scheduling noise.
    let cfg = RunConfig {
        threads: 1,
        ..RunConfig::fast()
    };
    let ms = [2usize, 8, 32, 128, 500];

    let mut g = c.benchmark_group("obs_overhead");
    g.bench_function("ratio_curve/uninstrumented", |b| {
        mcast_obs::set_enabled(false);
        b.iter(|| parallel_ratio_curve(&graph, &ms, &mcfg, &cfg))
    });
    g.bench_function("ratio_curve/instrumented", |b| {
        mcast_obs::set_enabled(true);
        b.iter(|| parallel_ratio_curve(&graph, &ms, &mcfg, &cfg));
        mcast_obs::set_enabled(false);
        mcast_obs::reset();
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
