//! Figure 1 kernel: the measured `L(m)/ū` ratio curve.

use criterion::{criterion_group, criterion_main, Criterion};
use mcast_bench::{bench_measure_config, bench_run_config};
use mcast_experiments::networks;
use mcast_experiments::runner::{log_grid, parallel_ratio_curve};

fn bench(c: &mut Criterion) {
    let cfg = bench_run_config();
    let mcfg = bench_measure_config();
    let r100 = networks::r100(&cfg);
    let ts1000 = networks::ts1000(&cfg);
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("ratio_curve/r100", |b| {
        let ms = log_grid(50, 4);
        b.iter(|| parallel_ratio_curve(&r100.graph, &ms, &mcfg, &cfg))
    });
    g.bench_function("ratio_curve/ts1000", |b| {
        let ms = log_grid(500, 4);
        b.iter(|| parallel_ratio_curve(&ts1000.graph, &ms, &mcfg, &cfg))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
