//! Shared helpers for the benchmark targets.
//!
//! Each `bench_*` target regenerates (a scaled-down kernel of) one paper
//! artefact so `cargo bench` both exercises every experiment path and
//! tracks the performance of the underlying substrates. The full-size
//! artefacts are produced by the `mcs` binary (`mcast-experiments`), not
//! by Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mcast_experiments::RunConfig;
use mcast_tree::MeasureConfig;

/// The benchmark-scale run configuration: single-digit sample counts so
/// Criterion's repeated runs stay quick.
pub fn bench_run_config() -> RunConfig {
    RunConfig {
        threads: 1,
        ..RunConfig::fast()
    }
}

/// Benchmark-scale measurement counts.
pub fn bench_measure_config() -> MeasureConfig {
    MeasureConfig {
        sources: 4,
        receiver_sets: 4,
        seed: 1999,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configs_are_small() {
        assert_eq!(bench_run_config().threads, 1);
        assert!(bench_measure_config().sources <= 8);
    }
}
