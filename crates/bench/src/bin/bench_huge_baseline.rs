//! Records the million-node (`huge` tier) baseline as machine-readable
//! JSON.
//!
//! One entry per huge instance: wall time to generate (streaming
//! generators + in-place CSR build), pack and re-load through the
//! streamed MCTB path, and run one 64-spread-source lane-summed
//! reachability sweep with the leaf-folded totals kernel — plus the
//! exponential-fit R² of the resulting `T(r)` curve, so the baseline
//! also records the paper's S(r) dichotomy (transit-stub exponential,
//! TIERS sub-exponential) holding three orders of magnitude past the
//! original topologies. CI's `huge-smoke` job replays this bin under a
//! wall-clock and RSS guard.
//!
//! Usage: `bench_huge_baseline [OUT_PATH]` (default `BENCH_huge.json`).

use mcast_experiments::networks::{self, Network};
use mcast_experiments::RunConfig;
use mcast_store::format::{load_graph, save_graph};
use mcast_topology::reachability::AverageReachability;
use mcast_topology::NodeId;
use std::time::Instant;

/// One instance's measurements (single-shot: each step is seconds-long,
/// so best-of-N repetition buys nothing a CI guard needs).
struct Entry {
    nodes: usize,
    edges: usize,
    gen_ns: u128,
    pack_ns: u128,
    load_ns: u128,
    sweep_ns: u128,
    file_bytes: u64,
    exp_r2: f64,
}

fn measure(build: impl FnOnce() -> Network, dir: &std::path::Path) -> Entry {
    let t = Instant::now();
    let net = build();
    let gen_ns = t.elapsed().as_nanos();
    let graph = &net.graph;

    let path = dir.join(format!("{}.mct", net.name));
    let t = Instant::now();
    save_graph(&path, graph).expect("streamed save");
    let pack_ns = t.elapsed().as_nanos();
    let file_bytes = std::fs::metadata(&path).expect("packed file").len();
    let t = Instant::now();
    let back = load_graph(&path).expect("streamed load");
    let load_ns = t.elapsed().as_nanos();
    assert_eq!(&back, graph, "{}: pack/unpack round trip drifted", net.name);
    drop(back);
    let _ = std::fs::remove_file(&path);

    let n = graph.node_count();
    let sources: Vec<NodeId> = (0..64).map(|i| (i * n / 64) as NodeId).collect();
    let t = Instant::now();
    let reach = AverageReachability::over_sources(graph, &sources).expect("sources non-empty");
    let sweep_ns = t.elapsed().as_nanos();
    let exp_r2 = reach.exponential_fit_r2(0.9);

    Entry {
        nodes: n,
        edges: graph.edge_count(),
        gen_ns,
        pack_ns,
        load_ns,
        sweep_ns,
        file_bytes,
        exp_r2,
    }
}

fn entry_json(name: &str, e: &Entry) -> String {
    // Same threshold as ScalingStudy::reachability_class.
    let class = if e.exp_r2 >= 0.93 {
        "exponential"
    } else {
        "sub-exponential"
    };
    format!(
        "  \"{name}\": {{\n    \"nodes\": {},\n    \"edges\": {},\n    \"gen_ns\": {},\n    \
         \"pack_ns\": {},\n    \"load_ns\": {},\n    \"sweep_ns\": {},\n    \
         \"file_bytes\": {},\n    \"exp_fit_r2\": {:.4},\n    \"class\": \"{class}\"\n  }}",
        e.nodes, e.edges, e.gen_ns, e.pack_ns, e.load_ns, e.sweep_ns, e.file_bytes, e.exp_r2,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_huge.json".to_string());
    let dir = std::env::temp_dir().join(format!("mcast-bench-huge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let cfg = RunConfig::huge();
    let ti = measure(|| networks::ti5000(&cfg), &dir);
    let ts = measure(|| networks::ts1000(&cfg), &dir);
    let _ = std::fs::remove_dir_all(&dir);

    assert!(ti.nodes >= 1_000_000 && ts.nodes >= 1_000_000);
    // The paper's S(r) split, regraded at 10⁶ nodes: the transit-stub
    // instance must fit an exponential markedly better than TIERS.
    assert!(
        ts.exp_r2 > ti.exp_r2,
        "S(r) split inverted at huge scale: ts1000 r2 {:.4} vs ti5000 r2 {:.4}",
        ts.exp_r2,
        ti.exp_r2
    );

    let json = format!(
        "{{\n  \"bench\": \"huge\",\n  \"workload\": \"million-node tier: generate, \
         streamed MCTB pack/load round trip, one 64-source leaf-folded totals sweep, \
         exponential-fit grading of T(r)\",\n{},\n{}\n}}\n",
        entry_json("ti5000-huge", &ti),
        entry_json("ts1000-huge", &ts),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!(
        "wrote {out_path}: ti gen {:.2}s sweep {:.2}s ({}), ts gen {:.2}s sweep {:.2}s ({})",
        ti.gen_ns as f64 / 1e9,
        ti.sweep_ns as f64 / 1e9,
        if ti.exp_r2 >= 0.93 { "exp" } else { "sub-exp" },
        ts.gen_ns as f64 / 1e9,
        ts.sweep_ns as f64 / 1e9,
        if ts.exp_r2 >= 0.93 { "exp" } else { "sub-exp" },
    );
}
