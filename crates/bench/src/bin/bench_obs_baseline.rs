//! Measures run-telemetry overhead as machine-readable JSON.
//!
//! The workload is a fast-scale suite subset (fig1 + fig2 + table1:
//! one Monte-Carlo curve family, one exact figure, one topology-heavy
//! table) run three ways in-process:
//!
//! 1. **off** — observability fully disabled (`set_enabled(false)`),
//!    the production default;
//! 2. **trace** — the timed trace recorder on (`trace::start()`), as
//!    under `mcs --trace`;
//! 3. **trace+alloc** — the counting allocator armed as well, as under
//!    `mcs --trace --trace-alloc`. (This binary does not install
//!    `CountingAlloc` globally, so the alloc hooks here measure the
//!    bookkeeping fast-path, not malloc interception — the `mcs` binary
//!    adds one predicted branch per heap call on top.)
//!
//! Each mode runs the workload `REPS` times after a shared warm-up and
//! keeps the fastest rep (the usual best-of-N noise filter). All sides
//! must produce bit-identical reports before they are timed — tracing
//! that changed the numbers would be a bug, not overhead. The result
//! goes to `BENCH_obs.json`; the repo requirement is trace overhead
//! under 3% on this workload.
//!
//! Usage: `bench_obs_baseline [OUT_PATH]` (default `BENCH_obs.json`).

use mcast_experiments::{sched, RunConfig};
use std::time::Instant;

// Enough reps for best-of to shake scheduler noise on a shared runner:
// the per-span cost being measured is far below run-to-run jitter.
const REPS: usize = 7;

fn run_workload(cfg: &RunConfig, ids: &[String]) -> Vec<mcast_experiments::dataset::Report> {
    let run = sched::run_suite(ids, cfg, &sched::SchedPolicy::default());
    assert_eq!(run.status, sched::SuiteStatus::Complete);
    run.reports
}

fn best_of(cfg: &RunConfig, ids: &[String]) -> u128 {
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            let reports = run_workload(cfg, ids);
            let ns = t.elapsed().as_nanos();
            assert!(!reports.is_empty());
            ns
        })
        .min()
        .expect("REPS > 0")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    let cfg = RunConfig {
        threads: 2,
        ..RunConfig::fast()
    };
    let ids: Vec<String> = ["fig1", "fig2", "table1"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    // Warm-up + reference output, observability off.
    mcast_obs::set_enabled(false);
    let reference = run_workload(&cfg, &ids);

    let off_ns = best_of(&cfg, &ids);

    // Trace on. Spans/counters need the registry enabled too, exactly
    // as `mcs --trace` arranges it.
    mcast_obs::set_enabled(true);
    mcast_obs::trace::start();
    let traced = run_workload(&cfg, &ids);
    assert_eq!(
        reference, traced,
        "tracing must not change a single number"
    );
    let trace_ns = best_of(&cfg, &ids);

    mcast_obs::alloc::set_counting(true);
    let alloc_ns = best_of(&cfg, &ids);
    mcast_obs::alloc::set_counting(false);
    let data = mcast_obs::trace::stop().expect("recorder was started");
    mcast_obs::set_enabled(false);

    let pct = |on: u128| (on as f64 / off_ns as f64 - 1.0) * 100.0;
    let trace_pct = pct(trace_ns);
    let alloc_pct = pct(alloc_ns);
    let json = format!(
        "{{\n  \"bench\": \"obs\",\n  \"workload\": {{\n    \"ids\": \"fig1,fig2,table1\",\n    \"scale\": \"{scale}\",\n    \"seed\": {seed},\n    \"threads\": {threads},\n    \"reps\": {reps},\n    \"timing\": \"best of N\"\n  }},\n  \"span_events_recorded\": {events},\n  \"off_ns\": {off_ns},\n  \"trace_ns\": {trace_ns},\n  \"trace_alloc_ns\": {alloc_ns},\n  \"trace_overhead_pct\": {trace_pct:.2},\n  \"trace_alloc_overhead_pct\": {alloc_pct:.2},\n  \"requirement\": \"trace_overhead_pct < 3\"\n}}\n",
        scale = cfg.scale_name(),
        seed = cfg.seed,
        threads = cfg.threads,
        reps = REPS,
        events = data.events.len(),
        off_ns = off_ns,
        trace_ns = trace_ns,
        alloc_ns = alloc_ns,
        trace_pct = trace_pct,
        alloc_pct = alloc_pct,
    );
    std::fs::write(&out_path, &json).expect("write obs baseline json");
    println!("{json}");
    eprintln!(
        "wrote {out_path}: trace {trace_pct:+.2}%, trace+alloc {alloc_pct:+.2}% vs off"
    );
}
