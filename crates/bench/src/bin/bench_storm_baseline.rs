//! Records the storm-engine baseline as machine-readable JSON.
//!
//! The acceptance bar for the multi-session engine: a flash crowd of
//! 10^5 concurrent sessions on ti5000, every skeleton grafted through
//! the batched BFS path, with sustained join throughput distilled into
//! `BENCH_storm.json` so CI can archive it next to the other baselines
//! and future PRs can diff it.
//!
//! Usage: `bench_storm_baseline [OUT_PATH]` (default `BENCH_storm.json`).

use mcast_experiments::networks;
use mcast_experiments::RunConfig;
use mcast_tree::storm::{simulate_flash, FlashConfig, StormOutcome};
use std::time::Instant;

/// One timed scenario run (generation + engine drain; "sustained" means
/// the whole pipeline, not a warm cache).
fn timed_flash(
    graph: &mcast_topology::Graph,
    cfg: &FlashConfig,
) -> (StormOutcome, u128) {
    let t = Instant::now();
    let out = simulate_flash(graph, 0, cfg).expect("generated calendars are consistent");
    (out, t.elapsed().as_nanos())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_storm.json".to_string());

    let cfg = RunConfig::fast();
    let ti5000 = networks::ti5000(&cfg);
    let fcfg = FlashConfig {
        sessions: 100_000,
        receivers_per_session: 5,
        beta: 1.0,
        sampler_sweeps: 1,
        burst_time: 1.0,
        join_window: 2.0,
        mean_lifetime: 4.0,
        sample_every: 0,
        seed: 1999,
    };

    // Best of two runs (the engine is deterministic; the variance is all
    // scheduler noise).
    let (out, ns_a) = timed_flash(&ti5000.graph, &fcfg);
    let (out_b, ns_b) = timed_flash(&ti5000.graph, &fcfg);
    assert_eq!(out.events, out_b.events, "replays must be identical");
    assert_eq!(out.peak_links, out_b.peak_links, "replays must be identical");
    let run_ns = ns_a.min(ns_b);

    assert!(
        out.peak_sessions >= 100_000,
        "acceptance: ti5000 must sustain 10^5 concurrent sessions ({})",
        out.peak_sessions
    );
    assert!(
        out.batch_sweeps > 0 && out.trees_built_batch >= 64,
        "the burst must graft through the batched BFS path"
    );

    let secs = run_ns as f64 / 1e9;
    let joins_per_sec = out.joins as f64 / secs;
    let events_per_sec = out.events as f64 / secs;
    let json = format!(
        "{{\n  \"bench\": \"storm\",\n  \"workload\": \"flash crowd on ti5000: 100k concurrent sessions x 5 affinity receivers, batched skeleton grafts\",\n  \"ti5000\": {{\n    \"nodes\": {},\n    \"sessions\": {},\n    \"peak_sessions\": {},\n    \"events\": {},\n    \"joins\": {},\n    \"peak_links\": {},\n    \"batch_sweeps\": {},\n    \"trees_built_batch\": {},\n    \"trees_built_scalar\": {},\n    \"run_ns\": {run_ns},\n    \"joins_per_sec\": {joins_per_sec:.0},\n    \"events_per_sec\": {events_per_sec:.0}\n  }}\n}}\n",
        ti5000.graph.node_count(),
        fcfg.sessions,
        out.peak_sessions,
        out.events,
        out.joins,
        out.peak_links,
        out.batch_sweeps,
        out.trees_built_batch,
        out.trees_built_scalar,
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!(
        "wrote {out_path}: {:.0}k joins/sec, {:.0}k events/sec over {:.2}s",
        joins_per_sec / 1e3,
        events_per_sec / 1e3,
        secs
    );
}
