//! Records the measurement-engine baseline as machine-readable JSON.
//!
//! Criterion tracks per-function timings interactively; this bin distils
//! the one number the acceptance criteria pin — dedup-engine speedup on
//! the repeated-source ARPA workload — into `BENCH_measure.json` so CI
//! can archive it next to the metrics dump and future PRs can diff it.
//!
//! Usage: `bench_baseline [OUT_PATH]` (default `BENCH_measure.json`).

use mcast_gen::arpa::arpa;
use mcast_topology::Graph;
use mcast_tree::delivery::DeliverySizer;
use mcast_tree::measure::{
    merge_indexed, pick_source, ratio_curve, source_rng, CurvePoint, MeasureConfig, SourcePlan,
};
use mcast_tree::sampling::{self, ReceiverPool};
use mcast_tree::RunningStats;
use std::time::Instant;

/// The pre-PR schedule, replicated with today's public API: a fresh
/// BFS + sizer + ū scan per source index (what `SourceMeasurer::new`
/// always did) and a fresh Floyd dedup set per sample (what
/// `sampling::distinct` allocates), merged in index order. Same RNG
/// streams as the engine, so both sides agree bit-for-bit.
fn naive_ratio_curve(graph: &Graph, xs: &[usize], cfg: &MeasureConfig) -> Vec<CurvePoint> {
    let mut per_index = Vec::with_capacity(cfg.sources);
    for index in 0..cfg.sources {
        let source = pick_source(graph, cfg.seed, index);
        let pool = ReceiverPool::AllExceptSource {
            nodes: graph.node_count(),
            source,
        };
        let mut sizer = DeliverySizer::from_graph(graph, source);
        // ū over the pool: measurer construction always computed this,
        // even on the §2 ratio path that doesn't read it.
        let mut total = 0u64;
        for i in 0..pool.len() {
            if let Some(d) = sizer.distance(pool.site(i)) {
                total += d as u64;
            }
        }
        std::hint::black_box(total);
        let mut rng = source_rng(cfg.seed, index);
        let mut buf = Vec::new();
        let mut per_x = Vec::with_capacity(xs.len());
        for &x in xs {
            let mut stats = RunningStats::new();
            for _ in 0..cfg.receiver_sets {
                sampling::distinct(&pool, x, &mut rng, &mut buf);
                let (tree, unicast) = sizer.sample(&buf);
                stats.push(tree as f64 * x as f64 / unicast as f64);
            }
            per_x.push(stats);
        }
        per_index.push(Some(per_x));
    }
    merge_indexed(xs, per_index)
}

/// Best-of-`reps` wall time of `f`, in nanoseconds (best-of suppresses
/// scheduler noise better than a mean for short deterministic kernels).
fn best_ns<F: FnMut() -> R, R>(reps: usize, mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_measure.json".to_string());

    let graph = arpa();
    let mcfg = MeasureConfig {
        sources: 100,
        receiver_sets: 4,
        seed: 1999,
    };
    let xs = [2usize, 8, 16];
    let plan = SourcePlan::new(&graph, &mcfg);
    let samples = mcfg.sources * xs.len() * mcfg.receiver_sets;

    // Sanity: both schedules must agree bit-for-bit before timing them.
    let naive = naive_ratio_curve(&graph, &xs, &mcfg);
    let engine = ratio_curve(&graph, &xs, &mcfg);
    for (a, b) in naive.iter().zip(&engine) {
        assert_eq!(a.stats.count(), b.stats.count());
        assert_eq!(a.stats.mean().to_bits(), b.stats.mean().to_bits());
    }

    let reps = 30;
    let naive_ns = best_ns(reps, || naive_ratio_curve(&graph, &xs, &mcfg));
    let engine_ns = best_ns(reps, || ratio_curve(&graph, &xs, &mcfg));
    let speedup = naive_ns as f64 / engine_ns as f64;

    let json = format!(
        "{{\n  \"bench\": \"measure\",\n  \"workload\": {{\n    \"topology\": \"arpa\",\n    \"nodes\": {nodes},\n    \"sources\": {sources},\n    \"distinct_sources\": {distinct},\n    \"receiver_sets\": {rsets},\n    \"group_sizes\": [2, 8, 16],\n    \"samples\": {samples},\n    \"seed\": {seed}\n  }},\n  \"naive_ns\": {naive_ns},\n  \"engine_ns\": {engine_ns},\n  \"speedup\": {speedup:.3},\n  \"samples_per_sec_engine\": {throughput:.0}\n}}\n",
        nodes = graph.node_count(),
        sources = mcfg.sources,
        distinct = plan.distinct(),
        rsets = mcfg.receiver_sets,
        samples = samples,
        seed = mcfg.seed,
        naive_ns = naive_ns,
        engine_ns = engine_ns,
        speedup = speedup,
        throughput = samples as f64 / (engine_ns as f64 / 1e9),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!(
        "wrote {out_path}: {distinct}/{total} distinct sources, speedup {speedup:.2}x",
        distinct = plan.distinct(),
        total = plan.total(),
    );
}
