//! Records the batched-BFS baseline as machine-readable JSON.
//!
//! Criterion tracks per-function timings interactively; this bin distils
//! the number the acceptance criteria pin — bit-parallel speedup on a
//! 64-source reachability sweep of the largest paper topology (ti5000)
//! — into `BENCH_bfs.json` so CI can archive it next to the other
//! baselines and future PRs can diff it. A 4× TIERS scale-up (ti20000,
//! not a paper instance) pins the kernel's headroom beyond the paper's
//! largest graph, and each entry reports how many batch sweeps ran and
//! how many engaged the bottom-up direction, so a regression in the
//! direction heuristic shows up here before it shows up as wall time.
//!
//! Usage: `bench_bfs_baseline [OUT_PATH]` (default `BENCH_bfs.json`).

use mcast_experiments::figures::table1::spread_sources;
use mcast_experiments::networks::{self, Network, NetworkKind};
use mcast_experiments::RunConfig;
use mcast_gen::tiers::{tiers, TiersParams};
use mcast_topology::batch::{BatchBfs, MAX_LANES};
use mcast_topology::bfs::Bfs;
use mcast_topology::graph::{Graph, NodeId};
use mcast_topology::reachability::{AverageReachability, Reachability};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// The pre-batch schedule, replicated exactly with today's public API:
/// one reused scratch BFS run per source, every profile buffered, then
/// the float T(r) merge over the padded vectors (what `over_sources`
/// did before the bit-parallel kernel). Every partial sum is an exact
/// integer below 2^53, so both sides agree bit-for-bit.
fn scalar_over_sources(graph: &Graph, sources: &[NodeId]) -> Vec<f64> {
    let mut bfs = Bfs::new(graph);
    let mut profiles = Vec::with_capacity(sources.len());
    let mut max_ecc = 0usize;
    for &s in sources {
        bfs.run_scratch(s);
        let p = Reachability::from_distances(bfs.scratch_distances(), bfs.scratch_order());
        max_ecc = max_ecc.max(p.eccentricity());
        profiles.push(p);
    }
    let mut t = vec![0.0f64; max_ecc + 1];
    for p in &profiles {
        let tv = p.t_vec();
        for (r, slot) in t.iter_mut().enumerate() {
            let val = if r < tv.len() {
                tv[r]
            } else {
                *tv.last().unwrap()
            };
            *slot += val as f64;
        }
    }
    for slot in &mut t {
        *slot /= sources.len() as f64;
    }
    t
}

/// Best-of-`reps` wall time of `f`, in nanoseconds (best-of suppresses
/// scheduler noise better than a mean for short deterministic kernels).
fn best_ns<F: FnMut() -> R, R>(reps: usize, mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// One instance's measurements.
struct Entry {
    nodes: usize,
    scalar_ns: u128,
    batched_ns: u128,
    /// Batch sweeps one `over_sources` call runs on this instance.
    sweeps: u64,
    /// Of those, sweeps in which the direction heuristic engaged the
    /// bottom-up scan.
    pull_sweeps: u64,
}

impl Entry {
    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.batched_ns as f64
    }
}

/// Bit-identity of the two schedules, then sweep telemetry, then
/// best-of timings (with observability back off, so the timed loop pays
/// no counter traffic).
fn measure(net: &Network, reps: usize) -> Entry {
    // Capped at the node count on small topologies (ARPA has 47 nodes).
    let sources = spread_sources(&net.graph, 64);
    assert!(!sources.is_empty());

    let batched = AverageReachability::over_sources(&net.graph, &sources).unwrap();
    let scalar = scalar_over_sources(&net.graph, &sources);
    assert_eq!(batched.t_vec().len(), scalar.len(), "{}", net.name);
    for (a, b) in batched.t_vec().iter().zip(&scalar) {
        assert_eq!(a.to_bits(), b.to_bits(), "{}", net.name);
    }
    // Per-source distances too, lane by lane.
    let mut batch = BatchBfs::new(&net.graph);
    let mut bfs = Bfs::new(&net.graph);
    for chunk in sources.chunks(MAX_LANES) {
        batch.run(chunk);
        for (lane, &s) in chunk.iter().enumerate() {
            bfs.run(s);
            assert_eq!(batch.distances(lane), bfs.scratch_distances(), "{}", net.name);
        }
    }

    // Sweep telemetry from one counted (untimed) batched pass.
    mcast_obs::set_enabled(true);
    mcast_obs::reset();
    AverageReachability::over_sources(&net.graph, &sources).unwrap();
    let sweeps = mcast_obs::counter("bfs.batch.sweeps").get();
    let pull_sweeps = mcast_obs::counter("bfs.batch.pull_sweeps").get();
    mcast_obs::set_enabled(false);

    let scalar_ns = best_ns(reps, || scalar_over_sources(&net.graph, &sources));
    let batched_ns = best_ns(reps, || {
        AverageReachability::over_sources(&net.graph, &sources).unwrap()
    });
    Entry {
        nodes: net.graph.node_count(),
        scalar_ns,
        batched_ns,
        sweeps,
        pull_sweeps,
    }
}

/// TIERS at 4× the paper's ti5000 (20000 nodes: 100-node WAN, 25 MANs
/// of 40, 12 63-host LANs per MAN), seeded from the fast config like
/// every generated topology.
fn ti20000(cfg: &RunConfig) -> Network {
    let params = TiersParams {
        wan_nodes: 100,
        man_count: 25,
        man_nodes: 40,
        lans_per_man: 12,
        lan_hosts: 63,
        wan_redundancy: 1,
        man_redundancy: 1,
    };
    let mut rng = StdRng::seed_from_u64(cfg.sub_seed("ti20000"));
    let graph = tiers(params, &mut rng).expect("ti20000 parameters are valid");
    assert_eq!(graph.node_count(), 20000);
    Network {
        name: "ti20000",
        kind: NetworkKind::Generated,
        graph,
    }
}

/// The `huge` tier's TIERS instance (1,015,200 nodes), completing the
/// ti5000 → ti20000 → ti1000000 trajectory. Seeded like the suite's own
/// huge build so the two agree bit-for-bit.
fn ti1000000(cfg: &RunConfig) -> Network {
    let params = TiersParams::ti1000000();
    let mut rng = StdRng::seed_from_u64(cfg.sub_seed("ti5000"));
    let graph = tiers(params, &mut rng).expect("ti1000000 parameters are valid");
    assert_eq!(graph.node_count(), 1_015_200);
    Network {
        name: "ti1000000",
        kind: NetworkKind::Generated,
        graph,
    }
}

fn entry_json(name: &str, e: &Entry) -> String {
    format!(
        "  \"{name}\": {{\n    \"nodes\": {},\n    \"scalar_ns\": {},\n    \
         \"batched_ns\": {},\n    \"speedup\": {:.3},\n    \"sweeps\": {},\n    \
         \"pull_sweeps\": {}\n  }}",
        e.nodes,
        e.scalar_ns,
        e.batched_ns,
        e.speedup(),
        e.sweeps,
        e.pull_sweeps,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_bfs.json".to_string());

    let cfg = RunConfig::fast();
    let ti5000 = networks::ti5000(&cfg);
    let ti20000 = ti20000(&cfg);
    let ti1000000 = ti1000000(&cfg);
    let arpa = networks::arpa(&cfg);

    let ti = measure(&ti5000, 20);
    let ti_big = measure(&ti20000, 10);
    let ti_huge = measure(&ti1000000, 2);
    let arpa = measure(&arpa, 50);

    let json = format!(
        "{{\n  \"bench\": \"bfs\",\n  \"workload\": \"64-spread-source reachability \
         sweep, scalar BFS loop vs 64-lane batch\",\n{},\n{},\n{},\n{}\n}}\n",
        entry_json("ti5000", &ti),
        entry_json("ti20000", &ti_big),
        entry_json("ti1000000", &ti_huge),
        entry_json("arpa", &arpa),
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!(
        "wrote {out_path}: ti5000 speedup {:.2}x, ti20000 {:.2}x, ti1000000 {:.2}x, arpa {:.2}x",
        ti.speedup(),
        ti_big.speedup(),
        ti_huge.speedup(),
        arpa.speedup()
    );
    assert!(
        ti.speedup() >= 6.0,
        "acceptance: ti5000 64-source sweep must be at least 6x ({:.2}x)",
        ti.speedup()
    );
}
