//! Records the batched-BFS baseline as machine-readable JSON.
//!
//! Criterion tracks per-function timings interactively; this bin distils
//! the number the acceptance criteria pin — bit-parallel speedup on a
//! 64-source reachability sweep of the largest generated topology
//! (ti5000) — into `BENCH_bfs.json` so CI can archive it next to the
//! other baselines and future PRs can diff it.
//!
//! Usage: `bench_bfs_baseline [OUT_PATH]` (default `BENCH_bfs.json`).

use mcast_experiments::figures::table1::spread_sources;
use mcast_experiments::networks::{self, Network};
use mcast_experiments::RunConfig;
use mcast_topology::batch::{BatchBfs, MAX_LANES};
use mcast_topology::bfs::Bfs;
use mcast_topology::graph::{Graph, NodeId};
use mcast_topology::reachability::{AverageReachability, Reachability};
use std::time::Instant;

/// The pre-batch schedule, replicated exactly with today's public API:
/// one reused scratch BFS run per source, every profile buffered, then
/// the float T(r) merge over the padded vectors (what `over_sources`
/// did before the bit-parallel kernel). Every partial sum is an exact
/// integer below 2^53, so both sides agree bit-for-bit.
fn scalar_over_sources(graph: &Graph, sources: &[NodeId]) -> Vec<f64> {
    let mut bfs = Bfs::new(graph);
    let mut profiles = Vec::with_capacity(sources.len());
    let mut max_ecc = 0usize;
    for &s in sources {
        bfs.run_scratch(s);
        let p = Reachability::from_distances(bfs.scratch_distances(), bfs.scratch_order());
        max_ecc = max_ecc.max(p.eccentricity());
        profiles.push(p);
    }
    let mut t = vec![0.0f64; max_ecc + 1];
    for p in &profiles {
        let tv = p.t_vec();
        for (r, slot) in t.iter_mut().enumerate() {
            let val = if r < tv.len() {
                tv[r]
            } else {
                *tv.last().unwrap()
            };
            *slot += val as f64;
        }
    }
    for slot in &mut t {
        *slot /= sources.len() as f64;
    }
    t
}

/// Best-of-`reps` wall time of `f`, in nanoseconds (best-of suppresses
/// scheduler noise better than a mean for short deterministic kernels).
fn best_ns<F: FnMut() -> R, R>(reps: usize, mut f: F) -> u128 {
    let mut best = u128::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// Bit-identity of the two schedules, then best-of timings.
fn measure(net: &Network, reps: usize) -> (usize, u128, u128) {
    // Capped at the node count on small topologies (ARPA has 47 nodes).
    let sources = spread_sources(&net.graph, 64);
    assert!(!sources.is_empty());

    let batched = AverageReachability::over_sources(&net.graph, &sources).unwrap();
    let scalar = scalar_over_sources(&net.graph, &sources);
    assert_eq!(batched.t_vec().len(), scalar.len(), "{}", net.name);
    for (a, b) in batched.t_vec().iter().zip(&scalar) {
        assert_eq!(a.to_bits(), b.to_bits(), "{}", net.name);
    }
    // Per-source distances too, lane by lane.
    let mut batch = BatchBfs::new(&net.graph);
    let mut bfs = Bfs::new(&net.graph);
    for chunk in sources.chunks(MAX_LANES) {
        batch.run(chunk);
        for (lane, &s) in chunk.iter().enumerate() {
            bfs.run(s);
            assert_eq!(batch.distances(lane), bfs.scratch_distances(), "{}", net.name);
        }
    }

    let scalar_ns = best_ns(reps, || scalar_over_sources(&net.graph, &sources));
    let batched_ns = best_ns(reps, || {
        AverageReachability::over_sources(&net.graph, &sources).unwrap()
    });
    (net.graph.node_count(), scalar_ns, batched_ns)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_bfs.json".to_string());

    let cfg = RunConfig::fast();
    let ti5000 = networks::ti5000(&cfg);
    let arpa = networks::arpa(&cfg);

    let (ti_nodes, ti_scalar_ns, ti_batched_ns) = measure(&ti5000, 20);
    let (arpa_nodes, arpa_scalar_ns, arpa_batched_ns) = measure(&arpa, 50);
    let ti_speedup = ti_scalar_ns as f64 / ti_batched_ns as f64;
    let arpa_speedup = arpa_scalar_ns as f64 / arpa_batched_ns as f64;

    let json = format!(
        "{{\n  \"bench\": \"bfs\",\n  \"workload\": \"64-spread-source reachability sweep, scalar BFS loop vs 64-lane batch\",\n  \"ti5000\": {{\n    \"nodes\": {ti_nodes},\n    \"scalar_ns\": {ti_scalar_ns},\n    \"batched_ns\": {ti_batched_ns},\n    \"speedup\": {ti_speedup:.3}\n  }},\n  \"arpa\": {{\n    \"nodes\": {arpa_nodes},\n    \"scalar_ns\": {arpa_scalar_ns},\n    \"batched_ns\": {arpa_batched_ns},\n    \"speedup\": {arpa_speedup:.3}\n  }}\n}}\n",
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!("wrote {out_path}: ti5000 speedup {ti_speedup:.2}x, arpa {arpa_speedup:.2}x");
    assert!(
        ti_speedup >= 2.0,
        "acceptance: ti5000 64-source sweep must be at least 2x ({ti_speedup:.2}x)"
    );
}
