//! Records the suite-scheduler baseline as machine-readable JSON.
//!
//! The workload is the full paper suite (`mcs suite`, all sixteen
//! experiments). Run sequentially, `verdict` regenerates Figs 1–9 from
//! scratch on top of their own runs — including re-measuring all
//! sixteen Fig 1/Fig 6 Monte-Carlo curves and re-building every
//! topology. The scheduler's in-process memos (curves, topologies,
//! figure reports) make each of those a single computation per run.
//! Both sides must agree bit-for-bit before they are timed. The result
//! goes to `BENCH_suite.json` so CI can archive it and future PRs can
//! diff the scheduling win. (The second lever, overlapping experiments
//! across `--threads` workers, is invisible on a single-core runner —
//! this baseline isolates the deduplication win.)
//!
//! Usage: `bench_suite [OUT_PATH]` (default `BENCH_suite.json`).

use mcast_experiments::{sched, suite, RunConfig};
use std::time::Instant;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_suite.json".to_string());

    let cfg = RunConfig {
        threads: 4,
        ..RunConfig::fast()
    };
    let ids: Vec<String> = suite::EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();

    // One rep per side: these are multi-second macro runs, and the
    // duplicated-work gap dwarfs scheduler noise.
    let t = Instant::now();
    let sequential = suite::run_all(&cfg);
    let sequential_ns = t.elapsed().as_nanos();

    let t = Instant::now();
    let run = sched::run_suite(&ids, &cfg, &sched::SchedPolicy::default());
    let scheduled_ns = t.elapsed().as_nanos();

    assert_eq!(run.status, sched::SuiteStatus::Complete);
    assert_eq!(run.reports.len(), sequential.len());
    for (a, b) in sequential.iter().zip(&run.reports) {
        assert_eq!(a, b, "scheduled report {} must be bit-identical", a.id);
    }

    let speedup = sequential_ns as f64 / scheduled_ns as f64;
    let json = format!(
        "{{\n  \"bench\": \"suite\",\n  \"workload\": {{\n    \"ids\": \"all ({n} experiments)\",\n    \"scale\": \"{scale}\",\n    \"seed\": {seed},\n    \"threads\": {threads},\n    \"figure_runs_deduplicated_by_memo\": 9,\n    \"curve_measurements_deduplicated_by_memo\": 16\n  }},\n  \"sequential_ns\": {sequential_ns},\n  \"scheduled_ns\": {scheduled_ns},\n  \"speedup\": {speedup:.3}\n}}\n",
        n = ids.len(),
        scale = cfg.scale_name(),
        seed = cfg.seed,
        threads = cfg.threads,
        sequential_ns = sequential_ns,
        scheduled_ns = scheduled_ns,
        speedup = speedup,
    );
    std::fs::write(&out_path, &json).expect("write suite baseline json");
    println!("{json}");
    eprintln!("wrote {out_path}: speedup {speedup:.2}x");
}
