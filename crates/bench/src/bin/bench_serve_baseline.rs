//! Records the serve-daemon baseline as machine-readable JSON.
//!
//! Boots an in-process `mcast-serve` daemon backed by the real
//! measurement backend and a disk cache, uploads ti5000, then drives it
//! the way the E2E acceptance does: an 8-client cold burst (distinct
//! curve keys, each a full scheduler execution) followed by a
//! warm-cache QPS drill hammering one cached curve from 8 clients over
//! fresh TCP connections. The distilled numbers land in
//! `BENCH_serve.json` so CI can archive them next to the other
//! baselines and future PRs can diff them.
//!
//! Usage: `bench_serve_baseline [OUT_PATH]` (default `BENCH_serve.json`).

use mcast_experiments::networks;
use mcast_experiments::service::ServeBackend;
use mcast_experiments::RunConfig;
use mcast_serve::protocol::{encode_request, parse_response, ParsedResponse};
use mcast_serve::{serve, QuotaConfig, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const COLD_CLIENTS: usize = 8;
const WARM_CLIENTS: usize = 8;
const WARM_REQUESTS_PER_CLIENT: usize = 250;

/// One round-trip over a fresh connection (the drill deliberately pays
/// connection setup per request, like a curl-style client would).
fn http(addr: SocketAddr, method: &str, target: &str, client: &str, body: &[u8]) -> ParsedResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    let raw = encode_request(method, target, &[("X-Client-Id", client)], body);
    stream.write_all(&raw).expect("send request");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read response");
    parse_response(&buf).expect("well-formed response")
}

fn measure_body(topo_id: &str, seed: u64) -> String {
    format!(
        "{{\"topology\":\"{topo_id}\",\"kind\":\"ratio\",\"seed\":{seed},\
         \"sources\":4,\"receiver_sets\":2,\"xs\":[1,2,4,8,16]}}"
    )
}

fn counter(stats: &mcast_obs::json::Value, name: &str) -> u64 {
    stats
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(|v| v.as_u64())
        .unwrap_or(0)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let scratch = std::env::temp_dir().join(format!("bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    mcast_store::configure(&scratch.join("cache"), false).expect("configure cache");
    mcast_obs::events::init_from_env();
    mcast_obs::set_enabled(true);

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: WARM_CLIENTS,
        quota: QuotaConfig {
            // The drill is throughput-bound, not policy-bound.
            rate_per_sec: 1e9,
            burst: 1e9,
        },
        ..ServeConfig::default()
    };
    let handle = serve(config, Arc::new(ServeBackend::new(0))).expect("boot daemon");
    let addr = handle.addr();

    // Register the topology the drill measures against.
    let cfg = RunConfig::fast();
    let ti5000 = networks::ti5000(&cfg);
    let nodes = ti5000.graph.node_count();
    let edge_list = mcast_topology::io::write_edge_list(&ti5000.graph);
    let up = http(
        addr,
        "POST",
        "/v1/topo?format=edge-list&name=ti5000",
        "uploader",
        edge_list.as_bytes(),
    );
    assert_eq!(up.status, 201, "upload must succeed: {:?}", String::from_utf8_lossy(&up.body));
    let up_json = mcast_obs::json::parse(&String::from_utf8_lossy(&up.body))
        .expect("upload response must parse");
    let topo_id = up_json
        .get("id")
        .and_then(|v| v.as_str())
        .expect("upload response carries the topology id")
        .to_string();
    let topo_id = topo_id.as_str();

    // Cold burst: 8 clients, 8 distinct curve keys, all concurrent —
    // every one routes through the scheduler and lands in the cache.
    let t_cold = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..COLD_CLIENTS {
            scope.spawn(move || {
                let body = measure_body(topo_id, 1_000 + i as u64);
                let client = format!("cold-{i}");
                let r = http(addr, "POST", "/v1/measure", &client, body.as_bytes());
                assert_eq!(r.status, 200, "cold query {i}: {:?}", String::from_utf8_lossy(&r.body));
                assert_eq!(r.header("x-cache"), Some("miss"), "cold query {i} must miss");
            });
        }
    });
    let cold_ns = t_cold.elapsed().as_nanos();

    // Prime one curve, then hammer it: 8 clients x 250 requests, fresh
    // connection each, every response served from cache or the
    // single-flight memo.
    let prime = http(addr, "POST", "/v1/measure", "primer", measure_body(topo_id, 42).as_bytes());
    assert_eq!(prime.status, 200, "prime query: {:?}", String::from_utf8_lossy(&prime.body));
    let expected = prime.body.clone();

    let t_warm = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..WARM_CLIENTS {
            let expected = &expected;
            scope.spawn(move || {
                let body = measure_body(topo_id, 42);
                let client = format!("warm-{c}");
                for _ in 0..WARM_REQUESTS_PER_CLIENT {
                    let r = http(addr, "POST", "/v1/measure", &client, body.as_bytes());
                    assert_eq!(r.status, 200);
                    assert_eq!(r.header("x-cache"), Some("hit"), "warm drill must hit");
                    assert_eq!(&r.body, expected, "warm bodies must be byte-identical");
                }
            });
        }
    });
    let warm_ns = t_warm.elapsed().as_nanos();
    let warm_requests = WARM_CLIENTS * WARM_REQUESTS_PER_CLIENT;

    let stats_resp = http(addr, "GET", "/v1/stats", "stats", b"");
    assert_eq!(stats_resp.status, 200);
    let stats = mcast_obs::json::parse(&String::from_utf8_lossy(&stats_resp.body))
        .expect("stats must parse");
    let execs = counter(&stats, "serve.exec");
    let hits = counter(&stats, "serve.cache.hit");
    let bytes_out = counter(&stats, "serve.bytes_out");
    assert_eq!(
        execs,
        (COLD_CLIENTS + 1) as u64,
        "only the cold burst and the primer may execute"
    );
    assert!(
        hits >= warm_requests as u64,
        "warm drill must be served from cache ({hits} hits)"
    );

    http(addr, "POST", "/v1/admin/shutdown", "admin", b"");
    handle.join();
    let _ = std::fs::remove_dir_all(&scratch);

    let cold_secs = cold_ns as f64 / 1e9;
    let warm_secs = warm_ns as f64 / 1e9;
    let cold_qps = COLD_CLIENTS as f64 / cold_secs;
    let warm_qps = warm_requests as f64 / warm_secs;
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"workload\": \"in-process daemon on ti5000: 8-client cold burst (distinct curve keys) + 8x250 warm-cache drill, fresh TCP connection per request\",\n  \"ti5000\": {{\n    \"nodes\": {nodes},\n    \"cold_clients\": {COLD_CLIENTS},\n    \"cold_executions\": {execs_cold},\n    \"cold_wall_ns\": {cold_ns},\n    \"cold_queries_per_sec\": {cold_qps:.1},\n    \"warm_requests\": {warm_requests},\n    \"warm_wall_ns\": {warm_ns},\n    \"warm_qps\": {warm_qps:.0},\n    \"warm_hit_rate\": 1.0,\n    \"bytes_out\": {bytes_out}\n  }}\n}}\n",
        execs_cold = COLD_CLIENTS,
    );
    std::fs::write(&out_path, &json).expect("write baseline json");
    println!("{json}");
    eprintln!(
        "wrote {out_path}: warm {warm_qps:.0} qps over {warm_secs:.2}s, cold burst {cold_secs:.2}s"
    );
}
