//! Property-based tests for the delivery-tree machinery.

use mcast_topology::bfs::Bfs;
use mcast_topology::graph::{from_edges, Graph};
use mcast_topology::NodeId;
use mcast_tree::affinity::{AffinitySampler, RootedTree};
use mcast_tree::delivery::DeliverySizer;
use mcast_tree::dynamics::{try_simulate_churn, ChurnConfig, LifetimeShape, MemberTree};
use mcast_tree::extremes;
use mcast_tree::policy::{sizer_with_policy, TieBreak};
use mcast_tree::stats::RunningStats;
use mcast_tree::storm::Storm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random labelled tree from a Prüfer-like attachment sequence.
fn random_tree(n: usize, attach: &[u32]) -> Graph {
    let edges: Vec<(NodeId, NodeId)> = (1..n)
        .map(|i| {
            let parent = attach[(i - 1) % attach.len().max(1)] % i as u32;
            (parent, i as NodeId)
        })
        .collect();
    from_edges(n, &edges)
}

fn tree_strategy() -> impl Strategy<Value = Graph> {
    (2usize..40, proptest::collection::vec(any::<u32>(), 1..40))
        .prop_map(|(n, attach)| random_tree(n, &attach))
}

proptest! {
    #[test]
    fn member_tree_tracks_delivery_sizer_through_churn(
        graph in tree_strategy(),
        ops in proptest::collection::vec((any::<bool>(), any::<u32>()), 1..60),
    ) {
        let n = graph.node_count() as u32;
        let mut member_tree = MemberTree::new(&graph, 0);
        let mut sizer = DeliverySizer::from_graph(&graph, 0);
        let mut members: Vec<NodeId> = Vec::new();
        for (join, pick) in ops {
            if join || members.is_empty() {
                let site = 1 + pick % (n - 1);
                member_tree.join(site);
                members.push(site);
            } else {
                let idx = (pick as usize) % members.len();
                let site = members.swap_remove(idx);
                member_tree.leave(site);
            }
            prop_assert_eq!(member_tree.links(), sizer.tree_links(&members));
        }
    }

    #[test]
    fn affinity_invariants_hold_on_random_trees(
        graph in tree_strategy(),
        n_receivers in 1usize..12,
        beta in -3.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let tree = RootedTree::from_graph(&graph, 0);
        let mut sampler = AffinitySampler::new(&tree, n_receivers, beta, seed);
        for _ in 0..40 {
            sampler.step();
        }
        // Tree links equal an independent recount via DeliverySizer.
        let mut sizer = DeliverySizer::from_graph(&graph, 0);
        prop_assert_eq!(
            u64::from(sampler.tree_links()),
            sizer.tree_links(sampler.receivers())
        );
        // Mean pairwise distance equals the brute-force value.
        let rs = sampler.receivers();
        let mut brute = 0u64;
        for i in 0..rs.len() {
            for j in (i + 1)..rs.len() {
                brute += u64::from(tree.distance(rs[i], rs[j]));
            }
        }
        let pairs = rs.len() as f64 * (rs.len() as f64 - 1.0) / 2.0;
        let expect = if pairs > 0.0 { brute as f64 / pairs } else { 0.0 };
        prop_assert!((sampler.mean_pairwise_distance() - expect).abs() < 1e-9);
    }

    #[test]
    fn rooted_tree_distance_is_a_metric(graph in tree_strategy(), picks in proptest::collection::vec(any::<u32>(), 3)) {
        let tree = RootedTree::from_graph(&graph, 0);
        let n = graph.node_count() as u32;
        let a = picks[0] % n;
        let b = picks[1] % n;
        let c = picks[2] % n;
        prop_assert_eq!(tree.distance(a, a), 0);
        prop_assert_eq!(tree.distance(a, b), tree.distance(b, a));
        prop_assert!(tree.distance(a, c) <= tree.distance(a, b) + tree.distance(b, c));
        // Agrees with BFS.
        let bfs = Bfs::new(&graph).run(a);
        prop_assert_eq!(tree.distance(a, b), bfs.distance(b).unwrap());
    }

    #[test]
    fn extreme_sequences_bound_each_other(k in 1u64..5, depth in 1u32..7) {
        let leaves = k.pow(depth);
        let mut prev_spread = 0;
        let mut prev_packed = 0;
        for m in 1..=leaves.min(64) {
            let spread = extremes::disaffinity_distinct(k, depth, m);
            let packed = extremes::affinity_distinct(k, depth, m);
            prop_assert!(spread >= packed, "m={m}");
            // Both monotone nondecreasing.
            prop_assert!(spread >= prev_spread);
            prop_assert!(packed >= prev_packed);
            // Bounded by total links and below by depth (for m >= 1).
            let all_links = if k == 1 { u64::from(depth) } else { (k.pow(depth + 1) - k) / (k - 1) };
            prop_assert!(spread <= all_links);
            prop_assert!(packed >= u64::from(depth));
            prev_spread = spread;
            prev_packed = packed;
        }
    }

    #[test]
    fn policies_preserve_single_receiver_costs(
        graph in tree_strategy(),
        extra in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..15),
        seed in any::<u64>(),
    ) {
        // Add random chords so ties actually exist.
        let n = graph.node_count() as u32;
        let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
        for (a, b) in extra {
            edges.push((a % n, b % n));
        }
        let g = from_edges(n as usize, &edges);
        let reference = DeliverySizer::from_graph(&g, 0);
        let mut rng = StdRng::seed_from_u64(seed);
        for policy in [TieBreak::LowestId, TieBreak::HighestId, TieBreak::Random] {
            let mut sizer = sizer_with_policy(&g, 0, policy, &mut rng);
            for v in g.nodes() {
                prop_assert_eq!(sizer.distance(v), reference.distance(v));
                if let Some(d) = reference.distance(v) {
                    prop_assert_eq!(sizer.tree_links(&[v]), u64::from(d));
                }
            }
        }
    }

    #[test]
    fn running_stats_mean_is_within_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s.mean() >= lo - 1e-9 && s.mean() <= hi + 1e-9);
        prop_assert_eq!(s.count() as usize, xs.len());
        if xs.len() > 1 {
            prop_assert!(s.variance() >= -1e-9);
        }
    }

    // Satellite of the `(time_bits, session, seq)` event-key fix: a storm
    // calendar whose times are drawn from a tiny pool — so most events
    // collide on the exact same instant — replays bit-identically, and
    // replays bit-identically again when skeleton grafting is forced
    // through the batched path. Equal-time ordering therefore cannot
    // depend on heap internals, float comparison quirks, or the graft
    // schedule.
    #[test]
    fn equal_time_storms_replay_bit_identically(
        graph in tree_strategy(),
        sessions in 1u32..5,
        ops in proptest::collection::vec((0u8..4, any::<u32>(), any::<u32>()), 1..80),
    ) {
        let n = graph.node_count() as u32;
        let run = |threshold: usize| {
            let mut storm = Storm::new(&graph).batch_threshold(threshold).sample_every(1);
            for s in 0..sessions {
                // All sessions ignite at the same tied instant.
                storm.schedule_session_start(1.0, s, s % n);
            }
            for &(time_slot, pick, site) in &ops {
                // Four distinct times across up to 80 events: ties are the
                // common case, not the corner case.
                let t = 1.0 + f64::from(time_slot);
                let session = pick % (sessions + 1); // may hit a never-started id
                let site = site % n;
                if pick % 3 == 0 {
                    storm.schedule_leave(t, session, site);
                } else {
                    storm.schedule_join(t, session, site);
                }
            }
            for s in 0..sessions {
                storm.schedule_session_end(5.0, s);
            }
            storm.run().expect("session ids are unique")
        };
        let a = run(1);
        let b = run(1);
        let scalar = run(usize::MAX);
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(&a.samples, &b.samples);
        prop_assert_eq!(a.mean_links.to_bits(), b.mean_links.to_bits());
        prop_assert_eq!(&a.samples, &scalar.samples);
        prop_assert_eq!(a.grafted_links, scalar.grafted_links);
        prop_assert_eq!(a.pruned_links, scalar.pruned_links);
        // Leaves never underflow: every pruned link was first grafted.
        prop_assert!(a.pruned_links <= a.grafted_links);
    }

    // The churn runner under the bits-keyed calendar: identical configs
    // replay bit-identically for every lifetime shape — including Fixed,
    // where all departures are arrival-time translates and the calendar
    // order is exactly the arrival order.
    #[test]
    fn churn_replays_bit_identically_across_lifetime_shapes(
        graph in tree_strategy(),
        shape_pick in 0u8..3,
        seed in any::<u64>(),
    ) {
        let shape = match shape_pick {
            0 => LifetimeShape::Exponential,
            1 => LifetimeShape::Pareto { alpha: 2.5 },
            _ => LifetimeShape::Fixed,
        };
        let cfg = ChurnConfig {
            arrival_rate: 3.0,
            mean_lifetime: 1.0,
            lifetime_shape: shape,
            warmup_events: 40,
            sample_events: 120,
            seed,
        };
        let a = try_simulate_churn(&graph, 0, &cfg).expect("calendar stays in sync");
        let b = try_simulate_churn(&graph, 0, &cfg).expect("calendar stays in sync");
        prop_assert_eq!(a.mean_links.to_bits(), b.mean_links.to_bits());
        prop_assert_eq!(a.mean_members.to_bits(), b.mean_members.to_bits());
        prop_assert_eq!(a.link_samples.count(), b.link_samples.count());
        prop_assert_eq!(a.grafts, b.grafts);
        prop_assert_eq!(a.prunes, b.prunes);
    }
}
