//! Proof of the engine's zero-allocation steady state: after warm-up,
//! re-binding sources and drawing samples must not touch the allocator.
//!
//! A counting global allocator wraps the system one; the single test in
//! this binary snapshots the allocation count around the steady-state
//! loop. (Keep this file at exactly one test: the counter is global, so a
//! concurrently running sibling test would make it noisy.)

use mcast_gen::arpa::arpa;
use mcast_tree::measure::{measure_group, MeasureConfig, MeasureEngine, SampleKind, SourcePlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_sampling_performs_no_allocation() {
    let graph = arpa();
    let cfg = MeasureConfig {
        sources: 60,
        receiver_sets: 3,
        seed: 2026,
    };
    let xs = [2usize, 8, 16];
    let mut engine = MeasureEngine::new(&graph);

    // Warm-up: visit every source once at the largest group size, growing
    // each buffer (BFS queue, sizer arrays, receiver buffer, Floyd dedup
    // set) to its high-water mark.
    for s in 0..graph.node_count() as u32 {
        let m = engine.bind(s);
        let mut rng = mcast_tree::measure::source_rng(cfg.seed, s as usize);
        let _ = m.try_ratio_sample(16, &mut rng);
        let _ = m.try_normalized_tree_sample(16, &mut rng);
    }

    // Steady state: rebinding across sources and sampling at every size
    // must be allocation-free. (`measure_group` itself builds its result
    // vectors, so the raw sampler loop is what's pinned here.)
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for round in 0..5u64 {
        for s in 0..graph.node_count() as u32 {
            let m = engine.bind(s);
            let mut rng = mcast_tree::measure::source_rng(cfg.seed ^ round, s as usize);
            for &x in &xs {
                for _ in 0..cfg.receiver_sets {
                    let v = m.try_ratio_sample(x, &mut rng).expect("arpa is connected");
                    assert!(v.is_finite());
                    let w = m
                        .try_normalized_tree_sample(x, &mut rng)
                        .expect("arpa is connected");
                    assert!(w.is_finite());
                }
            }
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state sampling allocated {} times",
        after - before
    );

    // And the curve path allocates only its per-source bookkeeping, not
    // per sample: a full dedup pass over a plan stays within a small
    // budget proportional to sources × points, far below sample count.
    let plan = SourcePlan::new(&graph, &cfg);
    let mut engine = MeasureEngine::new(&graph);
    for group in plan.groups() {
        let _ = measure_group(&mut engine, group, &xs, &cfg, SampleKind::Ratio);
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut engine2 = MeasureEngine::new(&graph);
    for group in plan.groups() {
        let _ = measure_group(&mut engine2, group, &xs, &cfg, SampleKind::Ratio);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    let samples = (cfg.sources * xs.len() * cfg.receiver_sets) as u64;
    let bookkeeping = after - before;
    assert!(
        bookkeeping < samples / 2,
        "curve pass allocated {bookkeeping} times for {samples} samples — \
         the per-sample path is not allocation-free"
    );
}
