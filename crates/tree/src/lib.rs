//! Multicast delivery-tree machinery for the multicast-scaling study.
//!
//! The quantity at the heart of the paper is `L(m)`: the number of links in
//! the source-specific shortest-path delivery tree connecting a source to
//! `m` receiver sites. This crate builds those trees and measures them:
//!
//! * [`delivery`] — incremental delivery-tree sizing on top of a BFS
//!   shortest-path tree (each receiver's path is walked rootward until it
//!   merges with the already-built tree, mirroring how source-specific
//!   multicast routing grafts branches);
//! * [`sampling`] — the paper's receiver models: `m` *distinct* uniform
//!   sites (§2), `n` with-replacement draws (§3), and leaf-only pools;
//! * [`measure`] — the §2 methodology: per-(source, receiver-set) samples
//!   of `L/ū`, averaged over `N_source × N_rcvr` draws;
//! * [`stats`] — streaming mean/variance accumulation;
//! * [`affinity`] — the §5 receiver affinity/disaffinity model: Metropolis
//!   sampling of configurations weighted by `exp(−β·d̄(α))` on rooted
//!   trees, with O(depth) incremental updates;
//! * [`extremes`] — the §5.2/§5.3 closed forms for `β = ±∞` on k-ary
//!   trees;
//! * [`shared`] — center-based (CBT/PIM-SM style) shared trees, the
//!   alternative the paper's footnote 1 scopes out (ablation support);
//! * [`steiner`] — a greedy nearest-terminal Steiner heuristic, bounding
//!   how far shortest-path trees sit from cost-optimal trees;
//! * [`policy`] — explicit shortest-path tie-breaking (lowest-id,
//!   highest-id, randomised ECMP) over the all-shortest-paths DAG;
//! * [`dynamics`] — join/leave membership churn with incremental
//!   delivery-tree maintenance (session dynamics);
//! * [`storm`] — event-driven churn across 10⁵+ concurrent sessions:
//!   a deterministic `(time_bits, session, seq)` event queue, sparse
//!   per-session trees over shared shortest-path skeletons, and batched
//!   flash-crowd grafts through the bit-parallel BFS kernel;
//! * [`affinity_general`] — the affinity model on arbitrary connected
//!   graphs via an all-pairs distance matrix (the paper only simulates
//!   trees).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod affinity_general;
pub mod delivery;
pub mod dynamics;
pub mod extremes;
pub mod measure;
pub mod policy;
pub mod sampling;
pub mod shared;
pub mod stats;
pub mod steiner;
pub mod storm;

pub use delivery::DeliverySizer;
pub use measure::{MeasureConfig, MeasureEngine, SampleKind, SourceMeasurer, SourcePlan};
pub use stats::RunningStats;
