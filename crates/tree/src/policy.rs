//! Shortest-path tie-breaking policies.
//!
//! Hop-count routing rarely has a unique shortest path; which one a
//! router picks changes the delivery tree and therefore `L(m)`. The
//! paper fixes one tree per source (as any deterministic routing protocol
//! would); this module makes the choice explicit so the
//! `ablate-tiebreak` experiment can measure how much the Chuang–Sirbu
//! curve cares. Policies act on the all-shortest-paths DAG of
//! [`mcast_topology::spdag::SpDag`].

use crate::delivery::DeliverySizer;
use mcast_topology::bfs::UNREACHED;
use mcast_topology::spdag::SpDag;
use mcast_topology::{Graph, NodeId};
use rand::Rng;

/// How to pick among equal-length shortest paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Lowest-id predecessor — identical to the BFS default used
    /// everywhere else in the workspace.
    LowestId,
    /// Highest-id predecessor — the "opposite" deterministic choice.
    HighestId,
    /// Uniform random predecessor per node (drawn once per routing
    /// table, like a hash-seeded ECMP assignment).
    Random,
}

/// Build a delivery sizer whose routing table follows `policy`.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn sizer_with_policy<R: Rng + ?Sized>(
    graph: &Graph,
    source: NodeId,
    policy: TieBreak,
    rng: &mut R,
) -> DeliverySizer {
    let dag = SpDag::new(graph, source);
    let n = graph.node_count();
    let mut parent = vec![UNREACHED; n];
    let mut dist = vec![UNREACHED; n];
    for v in 0..n as NodeId {
        if let Some(d) = dag.distance(v) {
            dist[v as usize] = d;
            if v == source {
                parent[v as usize] = source;
            } else {
                let preds = dag.predecessors(v);
                debug_assert!(!preds.is_empty());
                parent[v as usize] = match policy {
                    TieBreak::LowestId => preds[0],
                    TieBreak::HighestId => *preds.last().expect("non-empty"),
                    TieBreak::Random => preds[rng.gen_range(0..preds.len())],
                };
            }
        }
    }
    DeliverySizer::from_routing(source, parent, dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn diamond() -> Graph {
        // 0 connects to 3 via 1 or 2.
        from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn lowest_matches_bfs_default() {
        let g = diamond();
        let mut rng = StdRng::seed_from_u64(1);
        let mut policy = sizer_with_policy(&g, 0, TieBreak::LowestId, &mut rng);
        let mut default = DeliverySizer::from_graph(&g, 0);
        for set in [&[3u32][..], &[1, 3][..], &[2, 3][..], &[1, 2, 3][..]] {
            assert_eq!(policy.tree_links(set), default.tree_links(set));
        }
    }

    #[test]
    fn highest_takes_the_other_branch() {
        let g = diamond();
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = sizer_with_policy(&g, 0, TieBreak::LowestId, &mut rng);
        let mut high = sizer_with_policy(&g, 0, TieBreak::HighestId, &mut rng);
        // Receiver set {1, 3}: lowest-id routes 3 via 1 (2 links);
        // highest-id routes 3 via 2 (3 links total with the 0-1 branch).
        assert_eq!(low.tree_links(&[1, 3]), 2);
        assert_eq!(high.tree_links(&[1, 3]), 3);
        // Mirror-image set {2, 3}.
        assert_eq!(low.tree_links(&[2, 3]), 3);
        assert_eq!(high.tree_links(&[2, 3]), 2);
    }

    #[test]
    fn distances_are_policy_independent() {
        let g = from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (2, 6),
                (6, 5),
                (5, 7),
            ],
        );
        let mut rng = StdRng::seed_from_u64(2);
        for policy in [TieBreak::LowestId, TieBreak::HighestId, TieBreak::Random] {
            let sizer = sizer_with_policy(&g, 0, policy, &mut rng);
            let reference = DeliverySizer::from_graph(&g, 0);
            for v in g.nodes() {
                assert_eq!(sizer.distance(v), reference.distance(v), "{policy:?} {v}");
            }
            // Single receivers always cost exactly their distance.
            let mut sizer = sizer;
            for v in g.nodes() {
                let d = u64::from(reference.distance(v).unwrap());
                assert_eq!(sizer.tree_links(&[v]), d, "{policy:?} {v}");
            }
        }
    }

    #[test]
    fn random_policy_is_a_valid_routing() {
        let g = from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 5), (5, 4)]);
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sizer = sizer_with_policy(&g, 0, TieBreak::Random, &mut rng);
            // Whatever the draw, a full receiver set yields a spanning
            // tree of the reached nodes: exactly n−1 links.
            let all: Vec<NodeId> = (1..6).collect();
            assert_eq!(sizer.tree_links(&all), 5);
        }
    }
}
