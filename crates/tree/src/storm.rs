//! `storm`: event-driven churn across many concurrent multicast sessions.
//!
//! The single-session machinery in [`crate::dynamics`] answers what one
//! group's tree does under churn; the Chuang–Sirbu law, though, is a
//! statement about a *population* of trees, and the heavy-traffic regime
//! the capacity-scaling literature reasons about is 10⁵–10⁶ sessions
//! churning over one shared topology. This module is that engine:
//!
//! * **One indexed event queue.** A binary heap of events keyed by
//!   [`EventKey`] — `(time_bits, session, seq)`, where `time_bits` is
//!   [`crate::dynamics::time_order_bits`] of the event time. The key is a
//!   plain integer tuple with derived `Ord`, so equal-time events always
//!   replay in `(session, seq)` order: the stream is bit-reproducible
//!   whatever order events were scheduled in and whatever the float
//!   environment does.
//! * **Shared skeletons, sparse sessions.** A dense `MemberTree` per
//!   session would cost `O(sessions × nodes)` memory — 10⁵ sessions on
//!   ti5000 is gigabytes. Instead each distinct source's shortest-path
//!   skeleton (one parent array, built once under the schedule-independent
//!   lowest-id rule of `min_index_parents`) is shared behind an `Arc`, and
//!   a [`SessionTree`] holds only its own sparse refcounts — memory
//!   proportional to *members*, not nodes. Skeleton construction reuses
//!   the engine's single scalar-BFS scratch (the zero-alloc engine's
//!   pattern: one buffer set, every session).
//! * **Batched grafts.** Events are drained a *tick* at a time (all
//!   events with equal `time_bits`). When a tick starts at least
//!   [`Storm::DEFAULT_BATCH_THRESHOLD`] sessions whose skeletons are not
//!   yet cached — a flash crowd igniting — the engine routes skeleton
//!   construction through [`BatchBfs`] 64 lanes per sweep instead of one
//!   scalar BFS per source. Both paths derive parents with the same rule
//!   from bit-identical distances, so batching can never change a number
//!   (pinned by tests).
//!
//! Determinism contract: a [`Storm`] run is a pure function of the graph
//! and the scheduled event set. The engine is sequential; callers that
//! parallelise across scenarios (the `mcs storm` experiment) merge by
//! index, so per-tick L(m) telemetry is bit-identical at every thread
//! count.

use crate::dynamics::{time_order_bits, ChurnConfig, ChurnError};
use mcast_topology::batch::{max_lanes, BatchBfs, LANES_PER_WORD};
use mcast_topology::bfs::{min_index_parents, Bfs, UNREACHED};
use mcast_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Deterministic event-queue key: events order by time (via the
/// total-order bit fold), then session id, then schedule sequence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// [`time_order_bits`] of the event time.
    pub time_bits: u64,
    /// Session the event belongs to.
    pub session: u32,
    /// Monotone schedule counter — the final tie-breaker, so two events
    /// of one session at one instant apply in the order they were
    /// scheduled.
    pub seq: u64,
}

#[derive(Clone, Copy, Debug)]
enum EventKind {
    SessionStart { source: NodeId },
    SessionEnd,
    Join { site: NodeId },
    Leave { site: NodeId },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    key: EventKey,
    time: f64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the queue wants earliest
        // (smallest key) first.
        other.key.cmp(&self.key)
    }
}

/// One source's shortest-path skeleton: parent pointers under the
/// lowest-id rule. `parent[source] == source`; unreachable nodes carry
/// [`UNREACHED`]. Shared by every concurrent session rooted there.
struct SourceTree {
    source: NodeId,
    parent: Vec<NodeId>,
}

/// A sparse per-session member tree over a shared [`SourceTree`].
///
/// State is two sorted `(node, count)` vectors — members joined exactly
/// at a site, and members whose rootward path crosses the link above a
/// node — so memory scales with the session's membership, not the graph.
/// Leaves of non-members are no-ops (same hardened contract as
/// [`crate::dynamics::MemberTree::leave`]).
pub struct SessionTree {
    skeleton: Arc<SourceTree>,
    members: Vec<(NodeId, u32)>,
    refcount: Vec<(NodeId, u32)>,
    member_count: u64,
    links: u64,
}

/// Increment `node`'s count in a sorted sparse vector; returns the new
/// count.
fn sparse_incr(vec: &mut Vec<(NodeId, u32)>, node: NodeId) -> u32 {
    match vec.binary_search_by_key(&node, |e| e.0) {
        Ok(i) => {
            vec[i].1 += 1;
            vec[i].1
        }
        Err(i) => {
            vec.insert(i, (node, 1));
            1
        }
    }
}

/// Decrement `node`'s count (which must be present and positive);
/// returns the new count and drops emptied entries.
fn sparse_decr(vec: &mut Vec<(NodeId, u32)>, node: NodeId) -> u32 {
    let i = vec
        .binary_search_by_key(&node, |e| e.0)
        .expect("decrement of an absent sparse entry");
    vec[i].1 -= 1;
    let left = vec[i].1;
    if left == 0 {
        vec.remove(i);
    }
    left
}

impl SessionTree {
    fn new(skeleton: Arc<SourceTree>) -> Self {
        Self {
            skeleton,
            members: Vec::new(),
            refcount: Vec::new(),
            member_count: 0,
            links: 0,
        }
    }

    /// The session's source.
    pub fn source(&self) -> NodeId {
        self.skeleton.source
    }

    /// Links currently in this session's delivery tree.
    pub fn links(&self) -> u64 {
        self.links
    }

    /// Members currently in this session.
    pub fn member_count(&self) -> u64 {
        self.member_count
    }

    fn reachable(&self, site: NodeId) -> bool {
        site == self.skeleton.source || self.skeleton.parent[site as usize] != UNREACHED
    }

    /// Add a member at `site`; returns links grafted. The source and
    /// unreachable sites join for free but still count as members.
    pub fn join(&mut self, site: NodeId) -> u64 {
        sparse_incr(&mut self.members, site);
        self.member_count += 1;
        if site == self.skeleton.source || !self.reachable(site) {
            return 0;
        }
        let mut grafted = 0;
        let mut v = site;
        while v != self.skeleton.source {
            if sparse_incr(&mut self.refcount, v) == 1 {
                grafted += 1;
            }
            v = self.skeleton.parent[v as usize];
        }
        self.links += grafted;
        grafted
    }

    /// Remove a member at `site`; returns `Some(links pruned)`, or
    /// `None` — a guaranteed no-op — when no member is joined there
    /// (leave-before-join, repeated leave, stale post-teardown prune).
    pub fn leave(&mut self, site: NodeId) -> Option<u64> {
        match self.members.binary_search_by_key(&site, |e| e.0) {
            Ok(_) => {}
            Err(_) => return None,
        }
        sparse_decr(&mut self.members, site);
        self.member_count -= 1;
        if site == self.skeleton.source || !self.reachable(site) {
            return Some(0);
        }
        let mut pruned = 0;
        let mut v = site;
        while v != self.skeleton.source {
            if sparse_decr(&mut self.refcount, v) == 0 {
                pruned += 1;
            }
            v = self.skeleton.parent[v as usize];
        }
        self.links -= pruned;
        Some(pruned)
    }
}

/// One telemetry sample of the aggregate state, taken every
/// [`Storm::sample_every`] applied events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StormSample {
    /// Simulation clock.
    pub time: f64,
    /// Live sessions.
    pub sessions: u64,
    /// Members summed over live sessions.
    pub members: u64,
    /// Links summed over live sessions — the aggregate L(m).
    pub links: u64,
    /// Cumulative joins applied so far (rates fall out of deltas).
    pub joins: u64,
}

/// Aggregate result of a [`Storm::run`].
#[derive(Clone, Debug, Default)]
pub struct StormOutcome {
    /// Events applied.
    pub events: u64,
    /// Member joins applied.
    pub joins: u64,
    /// Member leaves that removed a member.
    pub leaves: u64,
    /// Sessions started.
    pub sessions_started: u64,
    /// Sessions torn down.
    pub sessions_ended: u64,
    /// Events referencing a session no longer (or never) live — e.g.
    /// leaves scheduled past their session's teardown. Counted, ignored.
    pub stale_events: u64,
    /// Links grafted across all sessions.
    pub grafted_links: u64,
    /// Links pruned across all sessions (teardowns included).
    pub pruned_links: u64,
    /// Peak concurrent sessions.
    pub peak_sessions: u64,
    /// Peak aggregate members.
    pub peak_members: u64,
    /// Peak aggregate links.
    pub peak_links: u64,
    /// `BatchBfs` sweeps used for skeleton construction.
    pub batch_sweeps: u64,
    /// Skeletons built on the batched path.
    pub trees_built_batch: u64,
    /// Skeletons built by scalar BFS.
    pub trees_built_scalar: u64,
    /// Time-weighted mean of live sessions over the measured window.
    pub mean_sessions: f64,
    /// Time-weighted mean of aggregate members over the measured window.
    pub mean_members: f64,
    /// Time-weighted mean of aggregate links over the measured window.
    pub mean_links: f64,
    /// Per-tick telemetry (empty when sampling is disabled).
    pub samples: Vec<StormSample>,
}

/// The multi-session event engine. Schedule events, then [`run`](Self::run).
pub struct Storm<'g> {
    graph: &'g Graph,
    bfs: Bfs<'g>,
    batch: BatchBfs<'g>,
    batch_threshold: usize,
    sample_every: u64,
    measure_from: f64,
    measure_until: f64,
    queue: BinaryHeap<Event>,
    next_seq: u64,
    sessions: HashMap<u32, SessionTree>,
    skeletons: HashMap<NodeId, Arc<SourceTree>>,
    /// Scratch for parent derivation, shared by both build paths.
    parent_scratch: Vec<NodeId>,
    /// Scratch for tick draining / batch prefetch.
    tick: Vec<Event>,
    wanted: Vec<NodeId>,
}

impl<'g> Storm<'g> {
    /// Ticks grafting at least this many uncached sources route skeleton
    /// construction through [`BatchBfs`]. Pinned to one mask word of
    /// lanes — the narrowest sweep the kernel runs — not to the kernel's
    /// maximum width, so the break-even point does not move when the
    /// wide-lane ceiling grows.
    pub const DEFAULT_BATCH_THRESHOLD: usize = LANES_PER_WORD;

    /// New engine over `graph` with an empty calendar.
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            bfs: Bfs::new(graph),
            batch: BatchBfs::new(graph),
            batch_threshold: Self::DEFAULT_BATCH_THRESHOLD,
            sample_every: 0,
            measure_from: 0.0,
            measure_until: f64::INFINITY,
            queue: BinaryHeap::new(),
            next_seq: 0,
            sessions: HashMap::new(),
            skeletons: HashMap::new(),
            parent_scratch: Vec::new(),
            tick: Vec::new(),
            wanted: Vec::new(),
        }
    }

    /// Override the batched-graft threshold (tests pin batch-vs-scalar
    /// bit-identity by forcing each path; `usize::MAX` disables batching).
    pub fn batch_threshold(mut self, threshold: usize) -> Self {
        self.batch_threshold = threshold.max(1);
        self
    }

    /// Record a telemetry sample every `n` applied events (0 disables).
    pub fn sample_every(mut self, n: u64) -> Self {
        self.sample_every = n;
        self
    }

    /// Start of the time-weighted measurement window (events before it
    /// still apply; they just don't contribute to the reported means).
    pub fn measure_from(mut self, t: f64) -> Self {
        self.measure_from = t;
        self
    }

    /// End of the time-weighted measurement window. Without a cap the
    /// calendar's drain tail — arrivals stopped, members trickling out —
    /// would bias steady-state means toward empty.
    pub fn measure_until(mut self, t: f64) -> Self {
        self.measure_until = t;
        self
    }

    /// Events currently scheduled.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    fn push(&mut self, t: f64, session: u32, kind: EventKind) {
        let key = EventKey {
            time_bits: time_order_bits(t),
            session,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.queue.push(Event { key, time: t, kind });
    }

    /// Schedule session `session` (a caller-chosen, never-reused id) to
    /// start at `t` rooted at `source`.
    pub fn schedule_session_start(&mut self, t: f64, session: u32, source: NodeId) {
        assert!((source as usize) < self.graph.node_count(), "source out of range");
        self.push(t, session, EventKind::SessionStart { source });
    }

    /// Schedule the teardown of `session` at `t`: every remaining member
    /// leaves and the session's state is dropped.
    pub fn schedule_session_end(&mut self, t: f64, session: u32) {
        self.push(t, session, EventKind::SessionEnd);
    }

    /// Schedule a member join at `site` in `session` at `t`.
    pub fn schedule_join(&mut self, t: f64, session: u32, site: NodeId) {
        assert!((site as usize) < self.graph.node_count(), "site out of range");
        self.push(t, session, EventKind::Join { site });
    }

    /// Schedule a member leave at `site` in `session` at `t`.
    pub fn schedule_leave(&mut self, t: f64, session: u32, site: NodeId) {
        self.push(t, session, EventKind::Leave { site });
    }

    fn build_scalar(&mut self, source: NodeId) -> Arc<SourceTree> {
        self.bfs.run_scratch(source);
        min_index_parents(
            self.graph,
            self.bfs.scratch_distances(),
            source,
            &mut self.parent_scratch,
        );
        Arc::new(SourceTree {
            source,
            parent: std::mem::take(&mut self.parent_scratch),
        })
    }

    /// Drain the calendar, applying every event in `(time, session, seq)`
    /// order, and report the aggregate outcome.
    ///
    /// # Errors
    /// [`ChurnError::DuplicateSession`] if a session id starts twice —
    /// the calendar is desynchronised and the aggregates would silently
    /// double-count.
    pub fn run(&mut self) -> Result<StormOutcome, ChurnError> {
        let _span = mcast_obs::span_at("storm/run");
        let mut out = StormOutcome::default();
        let mut now = 0.0f64;
        let mut links_total: u64 = 0;
        let mut members_total: u64 = 0;
        let mut measured_time = 0.0f64;
        let mut w_sessions = 0.0f64;
        let mut w_members = 0.0f64;
        let mut w_links = 0.0f64;

        let mut tick = std::mem::take(&mut self.tick);
        let mut wanted = std::mem::take(&mut self.wanted);
        while let Some(&head) = self.queue.peek() {
            // Drain the tick: every event sharing the head's time bits.
            tick.clear();
            let bits = head.key.time_bits;
            while let Some(ev) = self.queue.peek() {
                if ev.key.time_bits != bits {
                    break;
                }
                tick.push(self.queue.pop().expect("peeked event"));
            }

            // Advance the clock to the tick, integrating the measured
            // window (state is piecewise constant between ticks).
            let t = head.time;
            let lo = now.max(self.measure_from);
            let hi = t.min(self.measure_until);
            if hi > lo {
                let dt = hi - lo;
                measured_time += dt;
                w_sessions += self.sessions.len() as f64 * dt;
                w_members += members_total as f64 * dt;
                w_links += links_total as f64 * dt;
            }
            now = t;

            // Prefetch: collect the tick's uncached session sources; a
            // flash crowd's worth goes through the bit-parallel kernel.
            wanted.clear();
            for ev in &tick {
                if let EventKind::SessionStart { source } = ev.kind {
                    if !self.skeletons.contains_key(&source) {
                        wanted.push(source);
                    }
                }
            }
            wanted.sort_unstable();
            wanted.dedup();
            if wanted.len() >= self.batch_threshold {
                for chunk in wanted.chunks(max_lanes()) {
                    // An exactly-threshold tick is one batch sweep and
                    // nothing else; only a trailing chunk too small to
                    // amortise a sweep falls through to the per-source
                    // scalar path in the event loop below.
                    if chunk.len() < self.batch_threshold {
                        continue;
                    }
                    self.batch.run(chunk);
                    out.batch_sweeps += 1;
                    for (lane, &source) in chunk.iter().enumerate() {
                        self.batch.parent_tree(lane, &mut self.parent_scratch);
                        self.skeletons.insert(
                            source,
                            Arc::new(SourceTree {
                                source,
                                parent: std::mem::take(&mut self.parent_scratch),
                            }),
                        );
                        out.trees_built_batch += 1;
                    }
                }
            }

            // Apply the tick's events in key order (the heap popped them
            // sorted).
            for i in 0..tick.len() {
                let ev = tick[i];
                match ev.kind {
                    EventKind::SessionStart { source } => {
                        if self.sessions.contains_key(&ev.key.session) {
                            self.tick = tick;
                            self.wanted = wanted;
                            return Err(ChurnError::DuplicateSession {
                                session: ev.key.session,
                                now,
                            });
                        }
                        let skeleton = match self.skeletons.get(&source) {
                            Some(s) => Arc::clone(s),
                            None => {
                                let s = self.build_scalar(source);
                                out.trees_built_scalar += 1;
                                self.skeletons.insert(source, Arc::clone(&s));
                                s
                            }
                        };
                        self.sessions.insert(ev.key.session, SessionTree::new(skeleton));
                        out.sessions_started += 1;
                    }
                    EventKind::SessionEnd => match self.sessions.remove(&ev.key.session) {
                        Some(tree) => {
                            out.pruned_links += tree.links();
                            links_total -= tree.links();
                            members_total -= tree.member_count();
                            out.sessions_ended += 1;
                        }
                        None => out.stale_events += 1,
                    },
                    EventKind::Join { site } => match self.sessions.get_mut(&ev.key.session) {
                        Some(tree) => {
                            let g = tree.join(site);
                            out.grafted_links += g;
                            links_total += g;
                            members_total += 1;
                            out.joins += 1;
                        }
                        None => out.stale_events += 1,
                    },
                    EventKind::Leave { site } => match self
                        .sessions
                        .get_mut(&ev.key.session)
                        .and_then(|tree| tree.leave(site))
                    {
                        Some(p) => {
                            out.pruned_links += p;
                            links_total -= p;
                            members_total -= 1;
                            out.leaves += 1;
                        }
                        None => out.stale_events += 1,
                    },
                }
                out.events += 1;
                out.peak_sessions = out.peak_sessions.max(self.sessions.len() as u64);
                out.peak_members = out.peak_members.max(members_total);
                out.peak_links = out.peak_links.max(links_total);
                if self.sample_every > 0 && out.events % self.sample_every == 0 {
                    out.samples.push(StormSample {
                        time: now,
                        sessions: self.sessions.len() as u64,
                        members: members_total,
                        links: links_total,
                        joins: out.joins,
                    });
                }
            }
        }
        self.tick = tick;
        self.wanted = wanted;

        if measured_time > 0.0 {
            out.mean_sessions = w_sessions / measured_time;
            out.mean_members = w_members / measured_time;
            out.mean_links = w_links / measured_time;
        }
        if mcast_obs::enabled() {
            mcast_obs::counter("storm.events").add(out.events);
            mcast_obs::counter("storm.joins").add(out.joins);
            mcast_obs::counter("storm.leaves").add(out.leaves);
            mcast_obs::counter("storm.sessions.started").add(out.sessions_started);
            mcast_obs::counter("storm.sessions.ended").add(out.sessions_ended);
            mcast_obs::counter("storm.stale").add(out.stale_events);
            mcast_obs::counter("storm.batch.sweeps").add(out.batch_sweeps);
            mcast_obs::counter("storm.trees.batch").add(out.trees_built_batch);
            mcast_obs::counter("storm.trees.scalar").add(out.trees_built_scalar);
        }
        Ok(out)
    }
}

fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / rate
}

fn uniform_node(rng: &mut StdRng, n: NodeId) -> NodeId {
    rng.gen_range(0..n)
}

/// Steady-state scenario: sessions arrive Poisson(`session_rate`) with
/// exponential lifetimes (M/M/∞ over sessions), and each live session's
/// membership churns per the embedded [`ChurnConfig`] — arrivals at
/// uniform non-source sites, lifetimes of the configured shape. The
/// stationary session count is `session_rate × mean_session_lifetime`.
#[derive(Clone, Copy, Debug)]
pub struct SteadyConfig {
    /// Session arrival rate Λ.
    pub session_rate: f64,
    /// Mean session lifetime (exponential).
    pub mean_session_lifetime: f64,
    /// Per-session membership process. Only `arrival_rate`,
    /// `mean_lifetime` and `lifetime_shape` are read — the event horizon
    /// and seed of the storm run come from this config, not the embedded
    /// one.
    pub member: ChurnConfig,
    /// Generate session arrivals on `[0, horizon)`.
    pub horizon: f64,
    /// Start of the measured window (warmup before it; the window closes
    /// at `horizon`, so the post-horizon drain tail is never measured).
    pub measure_from: f64,
    /// Telemetry sampling stride in events (0 disables).
    pub sample_every: u64,
    /// RNG seed for the whole generated event set.
    pub seed: u64,
}

/// Generate and run a [`SteadyConfig`] scenario on `graph`.
///
/// # Panics
/// Panics if rates are non-positive or the graph has fewer than two
/// nodes.
pub fn simulate_steady(graph: &Graph, cfg: &SteadyConfig) -> Result<StormOutcome, ChurnError> {
    assert!(cfg.session_rate > 0.0, "session rate must be positive");
    assert!(cfg.mean_session_lifetime > 0.0, "session lifetime must be positive");
    assert!(cfg.member.arrival_rate > 0.0, "member arrival rate must be positive");
    assert!(graph.node_count() >= 2, "need at least two nodes");
    let n = graph.node_count() as NodeId;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut storm = Storm::new(graph)
        .sample_every(cfg.sample_every)
        .measure_from(cfg.measure_from)
        .measure_until(cfg.horizon);

    let mut t = 0.0f64;
    let mut session: u32 = 0;
    loop {
        t += exp_sample(&mut rng, cfg.session_rate);
        if t >= cfg.horizon {
            break;
        }
        let source = uniform_node(&mut rng, n);
        let end = t + exp_sample(&mut rng, 1.0 / cfg.mean_session_lifetime);
        storm.schedule_session_start(t, session, source);
        // Member arrivals over the session's lifetime; leaves past the
        // teardown are left to the engine's stale handling, like a real
        // protocol's prune timers firing after the session is gone.
        let mut u = t;
        loop {
            u += exp_sample(&mut rng, cfg.member.arrival_rate);
            if u >= end {
                break;
            }
            let site = loop {
                let v = uniform_node(&mut rng, n);
                if v != source {
                    break v;
                }
            };
            storm.schedule_join(u, session, site);
            storm.schedule_leave(u + cfg.member.sample_lifetime(&mut rng), session, site);
        }
        storm.schedule_session_end(end, session);
        session += 1;
    }
    storm.run()
}

/// Flash-crowd scenario: `sessions` sessions all ignite at `burst_time`
/// (the same instant, so skeleton grafting hits the batched path), each
/// with `receivers_per_session` geographically correlated receivers drawn
/// from the §5 affinity sampler (Metropolis chain over the topology's
/// BFS skeleton, weighted `exp(−β·d̄)`), joining within `join_window` and
/// draining with exponential lifetimes.
#[derive(Clone, Copy, Debug)]
pub struct FlashConfig {
    /// Concurrent sessions ignited by the burst.
    pub sessions: u32,
    /// Receivers per session.
    pub receivers_per_session: u32,
    /// Affinity strength β (`> 0` clusters each session's receivers).
    pub beta: f64,
    /// Metropolis sweeps between consecutive sessions' receiver draws.
    pub sampler_sweeps: u32,
    /// The instant every session starts.
    pub burst_time: f64,
    /// Joins land uniformly in `(burst_time, burst_time + join_window]`
    /// (0 puts every join in the burst tick itself).
    pub join_window: f64,
    /// Mean membership lifetime (exponential drain).
    pub mean_lifetime: f64,
    /// Telemetry sampling stride in events (0 disables).
    pub sample_every: u64,
    /// RNG seed.
    pub seed: u64,
}

/// Generate and run a [`FlashConfig`] scenario on `graph`, using `root`
/// as the BFS-skeleton root for the affinity sampler.
///
/// # Panics
/// Panics if the graph is not connected (the affinity chain needs a
/// spanning skeleton), `sessions == 0`, or `receivers_per_session == 0`.
pub fn simulate_flash(
    graph: &Graph,
    root: NodeId,
    cfg: &FlashConfig,
) -> Result<StormOutcome, ChurnError> {
    assert!(cfg.sessions > 0, "need at least one session");
    assert!(cfg.receivers_per_session > 0, "need at least one receiver");
    assert!(cfg.mean_lifetime > 0.0, "lifetime must be positive");
    let n = graph.node_count() as NodeId;

    // Spanning BFS skeleton of the topology, rooted at `root`, as the
    // affinity sampler's tree (§5 samples on rooted trees; distances on
    // the skeleton are a hop-metric proxy for the full graph's).
    let mut bfs = Bfs::new(graph);
    bfs.run_scratch(root);
    assert_eq!(
        bfs.scratch_order().len(),
        graph.node_count(),
        "flash scenario needs a connected graph"
    );
    let edges: Vec<(NodeId, NodeId)> = (0..n)
        .filter(|&v| v != root)
        .map(|v| (bfs.scratch_parents()[v as usize], v))
        .collect();
    let skeleton = mcast_topology::graph::from_edges(graph.node_count(), &edges);
    let rooted = crate::affinity::RootedTree::from_graph(&skeleton, root);
    let mut sampler = crate::affinity::AffinitySampler::new(
        &rooted,
        cfg.receivers_per_session as usize,
        cfg.beta,
        cfg.seed ^ 0x5701_24af,
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut storm = Storm::new(graph)
        .sample_every(cfg.sample_every)
        .measure_from(cfg.burst_time);
    for session in 0..cfg.sessions {
        let source = uniform_node(&mut rng, n);
        storm.schedule_session_start(cfg.burst_time, session, source);
        for _ in 0..cfg.sampler_sweeps {
            sampler.sweep();
        }
        let mut last_leave = cfg.burst_time;
        // Snapshot the chain's current configuration as this session's
        // receiver set (correlated placements, decorrelated sessions).
        for i in 0..sampler.receivers().len() {
            let site = sampler.receivers()[i];
            let join_at = if cfg.join_window > 0.0 {
                cfg.burst_time + rng.gen_range(0.0..cfg.join_window)
            } else {
                cfg.burst_time
            };
            let leave_at = join_at + exp_sample(&mut rng, 1.0 / cfg.mean_lifetime);
            storm.schedule_join(join_at, session, site);
            storm.schedule_leave(leave_at, session, site);
            last_leave = last_leave.max(leave_at);
        }
        storm.schedule_session_end(last_leave, session);
    }
    storm.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{LifetimeShape, MemberTree};
    use mcast_topology::graph::from_edges;

    fn binary_tree(depth: u32) -> Graph {
        let n = (1u32 << (depth + 1)) - 1;
        let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(n as usize, &edges)
    }

    /// A connected graph with shortest-path ties (a grid-ish mesh), so
    /// parent-rule determinism actually matters.
    fn mesh(side: NodeId) -> Graph {
        let mut edges = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let v = r * side + c;
                if c + 1 < side {
                    edges.push((v, v + 1));
                }
                if r + 1 < side {
                    edges.push((v, v + side));
                }
            }
        }
        from_edges((side * side) as usize, &edges)
    }

    #[test]
    fn event_keys_order_by_time_then_session_then_seq() {
        let k = |t: f64, session: u32, seq: u64| EventKey {
            time_bits: time_order_bits(t),
            session,
            seq,
        };
        assert!(k(1.0, 9, 9) < k(2.0, 0, 0));
        assert!(k(1.0, 0, 9) < k(1.0, 1, 0));
        assert!(k(1.0, 3, 0) < k(1.0, 3, 1));
        // Equal times compare equal on bits, never via float comparison.
        assert_eq!(k(0.1 + 0.2, 0, 0).time_bits, k(0.1 + 0.2, 0, 0).time_bits);
    }

    #[test]
    fn session_tree_matches_member_tree_on_unique_spt() {
        // On a tree graph the shortest-path tree is unique, so the
        // lowest-id rule and the scalar FIFO rule coincide and the two
        // implementations must agree link-for-link on any op sequence.
        let g = binary_tree(5);
        let mut dense = MemberTree::new(&g, 0);
        let mut storm = Storm::new(&g);
        let skeleton = storm.build_scalar(0);
        let mut sparse = SessionTree::new(skeleton);
        let ops: [(bool, NodeId); 13] = [
            (true, 9),
            (true, 23),
            (true, 44),
            (true, 44),
            (false, 44),
            (true, 61),
            (false, 23),
            (false, 23), // double leave: no-op on both
            (true, 12),
            (false, 9),
            (false, 61),
            (false, 44), // second leave of the doubly-joined site
            (false, 12),
        ];
        for (join, site) in ops {
            if join {
                assert_eq!(dense.join(site), sparse.join(site), "join {site}");
            } else {
                let d = dense.leave(site);
                let s = sparse.leave(site).unwrap_or(0);
                assert_eq!(d, s, "leave {site}");
            }
            assert_eq!(dense.links(), sparse.links());
            assert_eq!(dense.member_count(), sparse.member_count());
        }
        assert_eq!(sparse.links(), 0);
        assert!(sparse.refcount.is_empty(), "prunes empty the sparse state");
    }

    fn flash_cfg(sessions: u32) -> FlashConfig {
        FlashConfig {
            sessions,
            receivers_per_session: 3,
            beta: 1.0,
            sampler_sweeps: 2,
            burst_time: 1.0,
            join_window: 0.5,
            mean_lifetime: 2.0,
            sample_every: 64,
            seed: 1999,
        }
    }

    #[test]
    fn batched_and_scalar_graft_paths_are_bit_identical() {
        let g = mesh(9); // 81 nodes: a burst can need >64 skeletons
        let cfg = flash_cfg(200);
        // Schedule the identical event set through both engines.
        let run_with = |threshold: usize| {
            let n = g.node_count() as NodeId;
            let mut storm = Storm::new(&g)
                .batch_threshold(threshold)
                .sample_every(cfg.sample_every)
                .measure_from(cfg.burst_time);
            let mut rng = StdRng::seed_from_u64(7);
            for session in 0..cfg.sessions {
                let source = uniform_node(&mut rng, n);
                storm.schedule_session_start(cfg.burst_time, session, source);
                let mut last = cfg.burst_time;
                for _ in 0..cfg.receivers_per_session {
                    let site = uniform_node(&mut rng, n);
                    let at = cfg.burst_time + rng.gen_range(0.0..cfg.join_window);
                    let leave = at + exp_sample(&mut rng, 1.0 / cfg.mean_lifetime);
                    storm.schedule_join(at, session, site);
                    storm.schedule_leave(leave, session, site);
                    last = last.max(leave);
                }
                storm.schedule_session_end(last, session);
            }
            storm.run().expect("calendar is consistent")
        };
        let batched = run_with(1);
        let scalar = run_with(usize::MAX);
        assert!(batched.batch_sweeps > 0, "batched run must batch");
        assert_eq!(scalar.batch_sweeps, 0, "scalar run must not");
        assert!(batched.trees_built_batch >= 64, "burst covers a full word");
        assert_eq!(batched.events, scalar.events);
        assert_eq!(batched.grafted_links, scalar.grafted_links);
        assert_eq!(batched.pruned_links, scalar.pruned_links);
        assert_eq!(batched.peak_links, scalar.peak_links);
        assert_eq!(
            batched.mean_links.to_bits(),
            scalar.mean_links.to_bits(),
            "L(m) telemetry must be bit-identical across graft paths"
        );
        assert_eq!(batched.samples, scalar.samples);
    }

    #[test]
    fn exactly_threshold_tick_is_one_batch_and_no_scalar_pass() {
        // 529 nodes: enough distinct sources for a full wide chunk plus a
        // sub-threshold tail in one tick.
        let g = mesh(23);
        let run_burst = |count: usize| {
            let mut storm = Storm::new(&g);
            for session in 0..count as u32 {
                storm.schedule_session_start(1.0, session, session as NodeId);
                storm.schedule_session_end(2.0, session);
            }
            storm.run().expect("calendar is consistent")
        };
        // Exactly the threshold: one sweep covering every skeleton, with
        // no scalar pass riding along.
        let exact = run_burst(Storm::DEFAULT_BATCH_THRESHOLD);
        assert_eq!(exact.batch_sweeps, 1, "one full-word tick, one sweep");
        assert_eq!(exact.trees_built_batch, Storm::DEFAULT_BATCH_THRESHOLD as u64);
        assert_eq!(exact.trees_built_scalar, 0, "no empty scalar pass");
        // One source short: the batch path must not engage at all.
        let below = run_burst(Storm::DEFAULT_BATCH_THRESHOLD - 1);
        assert_eq!(below.batch_sweeps, 0);
        assert_eq!(
            below.trees_built_scalar,
            Storm::DEFAULT_BATCH_THRESHOLD as u64 - 1
        );
        // A full wide chunk plus a tail below the threshold: the tail is
        // cheaper per-source scalar than as a nearly-empty sweep.
        let lanes = mcast_topology::batch::max_lanes();
        let tail = run_burst(lanes + 8);
        assert_eq!(tail.batch_sweeps, 1);
        assert_eq!(tail.trees_built_batch, lanes as u64);
        assert_eq!(tail.trees_built_scalar, 8);
    }

    #[test]
    fn flash_replays_bit_identically() {
        let g = mesh(6);
        let cfg = flash_cfg(120);
        let a = simulate_flash(&g, 0, &cfg).unwrap();
        let b = simulate_flash(&g, 0, &cfg).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.mean_links.to_bits(), b.mean_links.to_bits());
        assert_eq!(a.peak_sessions, cfg.sessions as u64);
        // Everything drains: every join eventually leaves or is torn down.
        let last = a.samples.last().expect("sampling enabled");
        assert!(last.links <= a.peak_links);
        assert_eq!(a.sessions_started, cfg.sessions as u64);
        assert_eq!(a.sessions_ended, cfg.sessions as u64);
    }

    #[test]
    fn steady_state_tracks_mm_infinity_means() {
        let g = binary_tree(6);
        let cfg = SteadyConfig {
            session_rate: 40.0,
            mean_session_lifetime: 2.0,
            member: ChurnConfig {
                arrival_rate: 6.0,
                mean_lifetime: 1.0,
                lifetime_shape: LifetimeShape::Exponential,
                warmup_events: 0,
                sample_events: 0,
                seed: 0,
            },
            horizon: 60.0,
            measure_from: 20.0,
            sample_every: 1024,
            seed: 11,
        };
        let out = simulate_steady(&g, &cfg).unwrap();
        // E[sessions] = Λ·D = 80.
        let expect_sessions = cfg.session_rate * cfg.mean_session_lifetime;
        assert!(
            (out.mean_sessions - expect_sessions).abs() / expect_sessions < 0.15,
            "sessions {} vs {expect_sessions}",
            out.mean_sessions
        );
        // E[members] = E[sessions]·(λ·E[S] of a session's *stationary*
        // phase) — lifetimes truncated by teardown pull it below λ·E[S],
        // so only sanity-bound it.
        assert!(out.mean_members > 0.0 && out.mean_links > 0.0);
        assert!(out.joins > 1_000, "enough churn to measure: {}", out.joins);
        // Teardown-stranded leaves surface as stale events, never errors.
        assert!(out.stale_events > 0);
    }

    #[test]
    fn duplicate_session_id_is_a_typed_error() {
        let g = binary_tree(3);
        let mut storm = Storm::new(&g);
        storm.schedule_session_start(0.0, 5, 0);
        storm.schedule_session_start(1.0, 5, 1);
        let err = storm.run().unwrap_err();
        assert_eq!(err, ChurnError::DuplicateSession { session: 5, now: 1.0 });
        assert!(err.to_string().contains("session 5"));
    }

    #[test]
    fn stale_events_are_counted_noops() {
        let g = binary_tree(3);
        let mut storm = Storm::new(&g);
        storm.schedule_session_start(0.0, 0, 0);
        storm.schedule_join(1.0, 0, 7);
        storm.schedule_session_end(2.0, 0);
        storm.schedule_leave(3.0, 0, 7); // after teardown: stale
        storm.schedule_leave(3.5, 1, 4); // unknown session: stale
        let out = storm.run().unwrap();
        assert_eq!(out.stale_events, 2);
        assert_eq!(out.joins, 1);
        assert_eq!(out.leaves, 0);
        assert_eq!(out.grafted_links, out.pruned_links);
    }

    #[test]
    fn skeletons_are_shared_across_sessions() {
        let g = binary_tree(4);
        let mut storm = Storm::new(&g);
        for s in 0..10 {
            storm.schedule_session_start(0.5, s, 3);
            storm.schedule_join(1.0, s, 14);
            storm.schedule_session_end(2.0, s);
        }
        let out = storm.run().unwrap();
        assert_eq!(out.trees_built_scalar, 1, "one skeleton serves all");
        assert_eq!(out.peak_sessions, 10);
    }
}
