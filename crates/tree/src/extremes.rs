//! Closed forms for extreme affinity and disaffinity on k-ary trees
//! (§5.2 / §5.3 of the paper).
//!
//! With `β = −∞` receivers spread out maximally: each new receiver is
//! placed to add as many links as possible, giving the increment sequence
//! `ΔL_{−∞}(j) = D − ⌊log_k j⌋` (and `D` for the first receiver). With
//! `β = +∞` receivers pack as tightly as possible: `m = k^l` receivers
//! fill the leaves of one depth-`l` subtree, giving
//! `ΔL_{+∞}(m) = ν_k(m) + 1` where `ν_k` is the k-adic valuation. For
//! with-replacement counts, `L_{+∞}(n) = D` for every `n` (all receivers
//! stack on one site) and `L_{−∞}(n) = L_{−∞}(min(n, M))` (receivers only
//! share a site when forced).

/// `L_{−∞}(m)`: delivery-tree size with `m` maximally spread *distinct*
/// leaf receivers on a k-ary tree of depth `depth`.
///
/// # Panics
/// Panics if `k == 0`, or `m` exceeds the leaf count `M = k^depth`.
pub fn disaffinity_distinct(k: u64, depth: u32, m: u64) -> u64 {
    assert!(k >= 1, "k must be at least 1");
    let leaves = k.checked_pow(depth).expect("leaf count overflows");
    assert!(m <= leaves, "{m} receivers exceed {leaves} leaves");
    if m == 0 {
        return 0;
    }
    let d = u64::from(depth);
    // First receiver: D links. Receiver j (1-based index j >= 1, i.e. the
    // 2nd onward) adds D − ⌊log_k j⌋ links; the count of j with
    // ⌊log_k j⌋ = l is k^l (k − 1) for l ≥ 0 ... clipped to m − 1 entries.
    let mut total = d; // receiver 0
    let mut remaining = m - 1;
    let mut level = 0u32;
    let mut block_start = 1u64; // smallest j with ⌊log_k j⌋ = level
    while remaining > 0 {
        let block_len = if k == 1 { 1 } else { block_start * (k - 1) };
        let take = remaining.min(block_len);
        total += take * (d - u64::from(level.min(depth)));
        remaining -= take;
        level += 1;
        block_start *= k;
        if k == 1 {
            block_start = u64::from(level) + 1;
        }
    }
    total
}

/// `L_{+∞}(m)`: delivery-tree size with `m` maximally clustered *distinct*
/// leaf receivers.
///
/// # Panics
/// Panics if `k == 0` or `m` exceeds the leaf count.
pub fn affinity_distinct(k: u64, depth: u32, m: u64) -> u64 {
    assert!(k >= 1, "k must be at least 1");
    let leaves = k.checked_pow(depth).expect("leaf count overflows");
    assert!(m <= leaves, "{m} receivers exceed {leaves} leaves");
    if m == 0 {
        return 0;
    }
    let d = u64::from(depth);
    // Receiver 0 costs D; receiver j (j ≥ 1, filling leaves left-to-right
    // under one subtree) costs ν_k(j) + 1.
    let mut total = d;
    for j in 1..m {
        total += u64::from(k_adic_valuation(k, j)) + 1;
    }
    total
}

/// `L_{+∞}(k^l)` in closed form (Eq 38): `(D − l) + (k^{l+1} − k)/(k − 1)`.
pub fn affinity_power_closed_form(k: u64, depth: u32, l: u32) -> u64 {
    assert!(l <= depth);
    let d = u64::from(depth);
    if k == 1 {
        return d; // a path: the single leaf chain
    }
    (d - u64::from(l)) + (k.pow(l + 1) - k) / (k - 1)
}

/// `L_{−∞}(k^l)` in closed form (Eq 36):
/// `D + Σ_{i=0}^{l−1} k^i (k − 1)(D − i)`.
pub fn disaffinity_power_closed_form(k: u64, depth: u32, l: u32) -> u64 {
    assert!(l <= depth);
    let d = u64::from(depth);
    if k == 1 {
        return d;
    }
    let mut total = d;
    for i in 0..l {
        total += k.pow(i) * (k - 1) * (d - u64::from(i));
    }
    total
}

/// `L_{−∞}(n)` for `n` with-replacement receivers: receivers only double
/// up once every leaf is occupied.
pub fn disaffinity_with_replacement(k: u64, depth: u32, n: u64) -> u64 {
    let leaves = k.checked_pow(depth).expect("leaf count overflows");
    disaffinity_distinct(k, depth, n.min(leaves))
}

/// `L_{+∞}(n)` for `n ≥ 1` with-replacement receivers: everyone stacks on
/// one leaf, so the tree is a single root-to-leaf path.
pub fn affinity_with_replacement(depth: u32, n: u64) -> u64 {
    if n == 0 {
        0
    } else {
        u64::from(depth)
    }
}

/// Largest power of `k` dividing `j` (the k-adic valuation); 0 for `k = 1`.
fn k_adic_valuation(k: u64, mut j: u64) -> u32 {
    debug_assert!(j >= 1);
    if k == 1 {
        return 0;
    }
    let mut v = 0;
    while j.is_multiple_of(k) {
        j /= k;
        v += 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sequence_binary_disaffinity() {
        // §5.2 sequence for k = 2: ΔL = D, D, D−1, D−1, D−2 (×4), …
        let d = 5;
        let deltas: Vec<u64> = (1..=16u64)
            .map(|m| disaffinity_distinct(2, d, m) - disaffinity_distinct(2, d, m - 1))
            .collect();
        assert_eq!(deltas, vec![5, 5, 4, 4, 3, 3, 3, 3, 2, 2, 2, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn paper_sequence_binary_affinity() {
        // §5.3 sequence for a binary tree: ΔL = D, 1, 2, 1, 3, 1, 2, 1, …
        let d = 6;
        let deltas: Vec<u64> = (1..=8u64)
            .map(|m| affinity_distinct(2, d, m) - affinity_distinct(2, d, m - 1))
            .collect();
        assert_eq!(deltas, vec![6, 1, 2, 1, 3, 1, 2, 1]);
    }

    #[test]
    fn closed_forms_match_sequences() {
        for k in [2u64, 3, 4] {
            for depth in [3u32, 5] {
                for l in 0..=depth.min(4) {
                    let m = k.pow(l);
                    assert_eq!(
                        disaffinity_distinct(k, depth, m),
                        disaffinity_power_closed_form(k, depth, l),
                        "disaffinity k={k} D={depth} l={l}"
                    );
                    assert_eq!(
                        affinity_distinct(k, depth, m),
                        affinity_power_closed_form(k, depth, l),
                        "affinity k={k} D={depth} l={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_occupancy_is_the_whole_tree() {
        // All M leaves selected: both extremes give every link of the tree,
        // (k^{D+1} − k)/(k − 1).
        for (k, d) in [(2u64, 4u32), (3, 3)] {
            let m = k.pow(d);
            let all_links = (k.pow(d + 1) - k) / (k - 1);
            assert_eq!(disaffinity_distinct(k, d, m), all_links);
            assert_eq!(affinity_distinct(k, d, m), all_links);
        }
    }

    #[test]
    fn disaffinity_dominates_affinity() {
        for m in 1..=27u64 {
            let spread = disaffinity_distinct(3, 3, m);
            let packed = affinity_distinct(3, 3, m);
            assert!(spread >= packed, "m={m}: {spread} < {packed}");
        }
    }

    #[test]
    fn with_replacement_variants() {
        assert_eq!(affinity_with_replacement(7, 0), 0);
        assert_eq!(affinity_with_replacement(7, 1), 7);
        assert_eq!(affinity_with_replacement(7, 1000), 7);
        // Disaffinity saturates at full occupancy.
        let full = disaffinity_distinct(2, 4, 16);
        assert_eq!(disaffinity_with_replacement(2, 4, 16), full);
        assert_eq!(disaffinity_with_replacement(2, 4, 1_000_000), full);
        assert_eq!(
            disaffinity_with_replacement(2, 4, 5),
            disaffinity_distinct(2, 4, 5)
        );
    }

    #[test]
    fn degenerate_path_tree() {
        // k = 1: a path with a single leaf.
        assert_eq!(disaffinity_distinct(1, 9, 1), 9);
        assert_eq!(affinity_distinct(1, 9, 1), 9);
        assert_eq!(affinity_power_closed_form(1, 9, 0), 9);
        assert_eq!(disaffinity_power_closed_form(1, 9, 0), 9);
    }

    #[test]
    fn valuation() {
        assert_eq!(k_adic_valuation(2, 8), 3);
        assert_eq!(k_adic_valuation(2, 12), 2);
        assert_eq!(k_adic_valuation(3, 9), 2);
        assert_eq!(k_adic_valuation(3, 7), 0);
        assert_eq!(k_adic_valuation(1, 5), 0);
    }

    #[test]
    #[should_panic]
    fn overdraw_panics() {
        disaffinity_distinct(2, 3, 9);
    }
}
