//! Greedy Steiner-tree heuristic — a cost-optimality yardstick.
//!
//! Source-specific shortest-path trees (the paper's model, and what
//! DVMRP/PIM actually build) are not cost-minimal: the cheapest tree
//! spanning a receiver set is a Steiner tree, which is NP-hard to
//! compute. The classic Takahashi–Matsuyama *shortest-path heuristic*
//! implemented here — repeatedly graft the terminal closest to the
//! current tree — is within `2(1 − 1/ℓ)` of optimal, so comparing it with
//! [`crate::DeliverySizer`] bounds how much of the `L(m)` cost is due to
//! shortest-path routing rather than the group's intrinsic span.

use mcast_topology::bfs::UNREACHED;
use mcast_topology::{Graph, NodeId};

/// Greedy Steiner heuristic engine (reusable scratch buffers).
pub struct SteinerHeuristic<'g> {
    graph: &'g Graph,
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    in_tree: Vec<bool>,
    queue: Vec<NodeId>,
}

impl<'g> SteinerHeuristic<'g> {
    /// New engine over `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        let n = graph.node_count();
        Self {
            graph,
            dist: vec![UNREACHED; n],
            parent: vec![0; n],
            in_tree: vec![false; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// Number of links in the greedy Steiner tree connecting `source` to
    /// every reachable receiver. Duplicates are free; unreachable
    /// receivers are skipped (mirroring [`crate::DeliverySizer`]).
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn tree_links(&mut self, source: NodeId, receivers: &[NodeId]) -> u64 {
        assert!(
            (source as usize) < self.graph.node_count(),
            "source {source} out of range"
        );
        self.in_tree.fill(false);
        self.in_tree[source as usize] = true;
        let mut remaining: Vec<NodeId> = {
            let mut r: Vec<NodeId> = receivers.to_vec();
            r.sort_unstable();
            r.dedup();
            r.retain(|&v| v != source);
            r
        };
        let mut links = 0u64;

        while !remaining.is_empty() {
            // Multi-source BFS from the current tree.
            self.dist.fill(UNREACHED);
            self.queue.clear();
            for v in 0..self.graph.node_count() as NodeId {
                if self.in_tree[v as usize] {
                    self.dist[v as usize] = 0;
                    self.queue.push(v);
                }
            }
            let mut head = 0;
            while head < self.queue.len() {
                let u = self.queue[head];
                head += 1;
                let du = self.dist[u as usize];
                for &w in self.graph.neighbors(u) {
                    if self.dist[w as usize] == UNREACHED {
                        self.dist[w as usize] = du + 1;
                        self.parent[w as usize] = u;
                        self.queue.push(w);
                    }
                }
            }
            // Closest remaining terminal (ties: lowest id, deterministic).
            let Some((&best, &bd)) = remaining
                .iter()
                .map(|t| (t, &self.dist[*t as usize]))
                .filter(|&(_, &d)| d != UNREACHED)
                .min_by_key(|&(t, &d)| (d, *t))
            else {
                break; // everything left is unreachable
            };
            // Graft its path onto the tree.
            links += u64::from(bd);
            let mut v = best;
            while !self.in_tree[v as usize] {
                self.in_tree[v as usize] = true;
                v = self.parent[v as usize];
            }
            // Terminals absorbed by the new branch come along for free.
            remaining.retain(|&t| !self.in_tree[t as usize]);
        }
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::DeliverySizer;
    use mcast_topology::graph::from_edges;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Depth-3 complete binary tree rooted at 0.
    fn binary_tree() -> Graph {
        let edges: Vec<_> = (1..15u32).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(15, &edges)
    }

    #[test]
    fn on_a_tree_it_matches_the_spt_union() {
        // On a tree there is exactly one tree spanning any set.
        let g = binary_tree();
        let mut steiner = SteinerHeuristic::new(&g);
        let mut spt = DeliverySizer::from_graph(&g, 0);
        for set in [&[7u32, 8][..], &[7, 14][..], &[3, 9, 12, 13][..]] {
            assert_eq!(steiner.tree_links(0, set), spt.tree_links(set));
        }
    }

    #[test]
    fn beats_the_spt_when_detours_pay_off() {
        // C6 plus a chord is the classic case: receivers 2 and 4 from
        // source 0. SPT uses 0-1-2 and 0-5-4 (4 links); the Steiner tree
        // can route 0-1-2-3-4 (4 links)… make it strictly better with a
        // "Y" graph: source 0, long stem 0-1-2, arms 2-3 and 2-4, but a
        // direct shortcut 0-5-3 of equal length to 0-1-2-3.
        //   0-1, 1-2, 2-3, 2-4, 0-5, 5-3
        // Receivers {3, 4}: SPT takes 3 via 0-5-3 (2 links) and 4 via
        // 0-1-2-4 (3 links) = 5 links; greedy grafts 3 (2 links) then 4
        // at distance 2 from node 3 via 3-2-4 = 4 links total.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (2, 4), (0, 5), (5, 3)]);
        let mut steiner = SteinerHeuristic::new(&g);
        let mut spt = DeliverySizer::from_graph(&g, 0);
        let s = steiner.tree_links(0, &[3, 4]);
        let t = spt.tree_links(&[3, 4]);
        assert_eq!(t, 5);
        assert_eq!(s, 4);
    }

    #[test]
    fn never_worse_than_spt_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..30 {
            let g = crate::steiner::tests::random_connected(40, &mut rng);
            let mut steiner = SteinerHeuristic::new(&g);
            let mut spt = DeliverySizer::from_graph(&g, 0);
            let receivers: Vec<NodeId> = (0..8).map(|_| rng.gen_range(1..40u32)).collect();
            let s = steiner.tree_links(0, &receivers);
            let t = spt.tree_links(&receivers);
            assert!(s <= t, "trial {trial}: steiner {s} > spt {t}");
            // And it still reaches everyone: at least the distinct count.
            let mut d = receivers.clone();
            d.sort_unstable();
            d.dedup();
            assert!(s >= d.len() as u64 / 2); // loose sanity floor
        }
    }

    pub(crate) fn random_connected(n: usize, rng: &mut StdRng) -> Graph {
        // Ring + random chords: always connected.
        let mut edges: Vec<(NodeId, NodeId)> = (0..n)
            .map(|i| (i as NodeId, ((i + 1) % n) as NodeId))
            .collect();
        for _ in 0..n {
            edges.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
        }
        from_edges(n, &edges)
    }

    #[test]
    fn duplicates_source_and_unreachable_handled() {
        let g = from_edges(5, &[(0, 1), (1, 2)]); // 3, 4 isolated
        let mut steiner = SteinerHeuristic::new(&g);
        assert_eq!(steiner.tree_links(0, &[2, 2, 0, 3, 4]), 2);
        assert_eq!(steiner.tree_links(0, &[]), 0);
        assert_eq!(steiner.tree_links(0, &[0]), 0);
    }

    #[test]
    fn free_absorption_of_on_path_terminals() {
        // Path 0-1-2-3-4: receivers {2, 4}. Grafting 2 first costs 2,
        // then 4 costs 2 more; grafting 4 would absorb 2 for free. The
        // greedy picks the *closest* first (2), total 4 — same as SPT.
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut steiner = SteinerHeuristic::new(&g);
        assert_eq!(steiner.tree_links(0, &[2, 4]), 4);
        assert_eq!(steiner.tree_links(0, &[4, 2]), 4);
    }
}
