//! Shared (center-based) delivery trees — an ablation the paper scopes
//! out.
//!
//! Footnote 1 of the paper: "we are focusing on multicast routing
//! algorithms that are source specific … we do not address the efficiency
//! of shared tree multicast algorithms. See \[12\] for one such comparison."
//! Reference \[12\] is Wei & Estrin's shared-vs-source-tree study. This
//! module provides the shared-tree counterpart (CBT/PIM-SM style): the
//! delivery tree is the union of shortest paths from a *center* (core,
//! rendezvous point) to every receiver plus the path from the source to
//! the center, so the `mcs shared` ablation can quantify how much of the
//! Chuang–Sirbu behaviour depends on the source-specific choice.

use crate::delivery::DeliverySizer;
use mcast_topology::bfs::Bfs;
use mcast_topology::{Graph, NodeId};

/// Shared-tree sizer: one BFS rooted at the center serves every source.
pub struct SharedTreeSizer {
    sizer: DeliverySizer,
    center: NodeId,
}

impl SharedTreeSizer {
    /// Build the center-rooted machinery.
    ///
    /// # Panics
    /// Panics if `center` is out of range.
    pub fn new(graph: &Graph, center: NodeId) -> Self {
        Self {
            sizer: DeliverySizer::from_graph(graph, center),
            center,
        }
    }

    /// The center node.
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// Links in the shared delivery tree serving `source` → `receivers`:
    /// the center-rooted tree spanning the receivers **and** the source
    /// (data flows source → center → receivers along center-shortest
    /// paths, with the usual shortcutting where branches merge).
    pub fn tree_links(&mut self, source: NodeId, receivers: &[NodeId]) -> u64 {
        // Union of center→source and center→receiver paths = tree over
        // {source} ∪ receivers rooted at the center.
        let mut all = Vec::with_capacity(receivers.len() + 1);
        all.push(source);
        all.extend_from_slice(receivers);
        self.sizer.tree_links(&all)
    }
}

/// Pick a low-eccentricity center: BFS from `candidates.len()` spread
/// candidates, keep the one whose farthest node is nearest (a cheap
/// 1-median/center stand-in; Wei & Estrin examined several policies).
pub fn choose_center(graph: &Graph, candidates: &[NodeId]) -> NodeId {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut bfs = Bfs::new(graph);
    let mut best = candidates[0];
    let mut best_ecc = u32::MAX;
    for &c in candidates {
        bfs.run_scratch(c);
        let ecc = bfs
            .scratch_order()
            .iter()
            .map(|&v| bfs.scratch_distances()[v as usize])
            .max()
            .unwrap_or(0);
        if ecc < best_ecc {
            best_ecc = ecc;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    /// Depth-3 complete binary tree rooted at 0.
    fn binary_tree() -> Graph {
        let edges: Vec<_> = (1..15u32).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(15, &edges)
    }

    #[test]
    fn center_equals_source_matches_source_tree() {
        let g = binary_tree();
        let mut shared = SharedTreeSizer::new(&g, 0);
        let mut source = DeliverySizer::from_graph(&g, 0);
        for set in [&[7u32, 8][..], &[14][..], &[3, 9, 12][..]] {
            assert_eq!(shared.tree_links(0, set), source.tree_links(set));
        }
    }

    #[test]
    fn off_center_pays_the_detour() {
        // Source 7, receiver 8 (its sibling): source tree uses 2 links
        // (7-3-8); a shared tree centered at the root pays the full
        // root-to-leaf paths: 0-1-3-7 and 0-1-3-8 = 4 links.
        let g = binary_tree();
        let mut shared = SharedTreeSizer::new(&g, 0);
        let mut source = DeliverySizer::from_graph(&g, 7);
        assert_eq!(source.tree_links(&[8]), 2);
        assert_eq!(shared.tree_links(7, &[8]), 4);
    }

    #[test]
    fn shared_tree_is_shared_across_sources() {
        // With the receiver set spanning the whole tree, every source
        // yields the same (full) shared tree — the defining property.
        let g = binary_tree();
        let mut shared = SharedTreeSizer::new(&g, 0);
        let receivers: Vec<NodeId> = (7..15).collect();
        let l_a = shared.tree_links(7, &receivers);
        let l_b = shared.tree_links(14, &receivers);
        assert_eq!(l_a, l_b);
        assert_eq!(l_a, 14);
    }

    #[test]
    fn choose_center_prefers_the_middle_of_a_path() {
        let edges: Vec<_> = (0..8u32).map(|i| (i, i + 1)).collect();
        let g = from_edges(9, &edges);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(choose_center(&g, &all), 4);
        // Restricted candidates: best available wins.
        assert_eq!(choose_center(&g, &[0, 2]), 2);
    }

    #[test]
    fn empty_receivers_cost_the_source_path_only() {
        let g = binary_tree();
        let mut shared = SharedTreeSizer::new(&g, 0);
        assert_eq!(shared.tree_links(7, &[]), 3); // 0→7 path
        assert_eq!(shared.tree_links(0, &[]), 0);
    }
}
