//! Delivery-tree construction and sizing.
//!
//! The paper's multicast model is source-specific shortest-path routing
//! ("packets traverse the shortest path between source and receiver"): the
//! delivery tree is the union of the BFS shortest paths from the source to
//! each receiver, and `L` merely counts its links — "we do not weight the
//! links by their length or bandwidth".

use mcast_topology::bfs::{Bfs, SpTree, UNREACHED};
use mcast_topology::{Graph, NodeId};

/// Incremental delivery-tree sizer bound to one (graph, source) pair.
///
/// ```
/// use mcast_topology::graph::from_edges;
/// use mcast_tree::DeliverySizer;
///
/// // A path 0-1-2-3: receivers {2, 3} share the 0-1-2 trunk.
/// let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let mut sizer = DeliverySizer::from_graph(&g, 0);
/// assert_eq!(sizer.tree_links(&[2, 3]), 3);
/// assert_eq!(sizer.unicast_links(&[2, 3]), 5);
/// ```
///
/// Each receiver's rootward parent chain is walked only until it meets a
/// node already in the tree, so sizing a receiver set costs `O(new links)`
/// amortised — the same grafting pattern DVMRP/PIM-SSM joins perform.
/// Epoch-stamped visitation marks make successive receiver sets O(1) to
/// reset.
pub struct DeliverySizer {
    source: NodeId,
    parent: Vec<NodeId>,
    dist: Vec<u32>,
    mark: Vec<u32>,
    epoch: u32,
}

impl DeliverySizer {
    /// Build from a graph and source by running BFS.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn from_graph(graph: &Graph, source: NodeId) -> Self {
        let mut bfs = Bfs::new(graph);
        bfs.run_scratch(source);
        Self::from_parts(
            source,
            bfs.scratch_parents().to_vec(),
            bfs.scratch_distances().to_vec(),
        )
    }

    /// Build from a precomputed shortest-path tree.
    pub fn from_sp_tree(tree: &SpTree) -> Self {
        Self::from_parts(
            tree.source(),
            (0..tree.distances().len())
                .map(|v| {
                    tree.parent(v as NodeId)
                        .unwrap_or(if v as NodeId == tree.source() {
                            tree.source()
                        } else {
                            UNREACHED
                        })
                })
                .collect(),
            tree.distances().to_vec(),
        )
    }

    /// Build from a caller-supplied routing table: `parent[v]` must be one
    /// hop closer to `source` for every reachable `v` (`UNREACHED`
    /// otherwise), and `dist` the matching hop counts. This is how the
    /// tie-breaking policies in [`crate::policy`] inject alternative
    /// shortest-path trees.
    pub fn from_routing(source: NodeId, parent: Vec<NodeId>, dist: Vec<u32>) -> Self {
        assert_eq!(parent.len(), dist.len());
        Self::from_parts(source, parent, dist)
    }

    fn from_parts(source: NodeId, parent: Vec<NodeId>, dist: Vec<u32>) -> Self {
        let n = parent.len();
        Self {
            source,
            parent,
            dist,
            mark: vec![0; n],
            epoch: 0,
        }
    }

    /// Re-root the sizer at a new `source` on the same graph, reusing
    /// every buffer: `bfs` refills `parent`/`dist` in place via
    /// [`Bfs::run_into`], and the epoch-stamped `mark` buffer carries
    /// over untouched (stale marks belong to older epochs and can never
    /// match a future one). In the steady state this performs no
    /// allocation at all — it is the "refill" half of the worker-owned
    /// measurement engine.
    ///
    /// # Panics
    /// Panics if `bfs`'s graph has a different node count than the one
    /// this sizer was built for, or if `source` is out of range.
    pub fn rebind(&mut self, bfs: &mut Bfs<'_>, source: NodeId) {
        assert_eq!(
            bfs.graph().node_count(),
            self.mark.len(),
            "rebind requires a graph with the same node count"
        );
        bfs.run_into(source, &mut self.dist, &mut self.parent);
        self.source = source;
    }

    /// The source the delivery trees are rooted at.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance from the source to `v` (`None` if unreachable).
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        match self.dist[v as usize] {
            UNREACHED => None,
            d => Some(d),
        }
    }

    /// Number of links in the delivery tree reaching `receivers`
    /// (duplicates and the source itself contribute no links; unreachable
    /// receivers are skipped — the experiment suite only measures connected
    /// topologies, but the sizer stays total).
    pub fn tree_links(&mut self, receivers: &[NodeId]) -> u64 {
        self.epoch = self.epoch.checked_add(1).unwrap_or_else(|| {
            self.mark.fill(0);
            1
        });
        let epoch = self.epoch;
        self.mark[self.source as usize] = epoch;
        let mut links = 0u64;
        for &r in receivers {
            if self.dist[r as usize] == UNREACHED {
                continue;
            }
            let mut v = r;
            while self.mark[v as usize] != epoch {
                self.mark[v as usize] = epoch;
                links += 1;
                v = self.parent[v as usize];
            }
        }
        links
    }

    /// Total unicast cost of reaching `receivers` individually: the sum of
    /// shortest-path hop counts (unreachable receivers are skipped).
    pub fn unicast_links(&self, receivers: &[NodeId]) -> u64 {
        receivers
            .iter()
            .filter(|&&r| self.dist[r as usize] != UNREACHED)
            .map(|&r| u64::from(self.dist[r as usize]))
            .sum()
    }

    /// Convenience: `(tree_links, unicast_links)` for one receiver set.
    pub fn sample(&mut self, receivers: &[NodeId]) -> (u64, u64) {
        (self.tree_links(receivers), self.unicast_links(receivers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    /// Depth-3 complete binary tree rooted at 0.
    fn binary_tree() -> Graph {
        let edges: Vec<_> = (1..15u32).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(15, &edges)
    }

    #[test]
    fn single_receiver_is_its_path() {
        let g = binary_tree();
        let mut s = DeliverySizer::from_graph(&g, 0);
        assert_eq!(s.tree_links(&[7]), 3);
        assert_eq!(s.unicast_links(&[7]), 3);
    }

    #[test]
    fn sibling_receivers_share_the_trunk() {
        let g = binary_tree();
        let mut s = DeliverySizer::from_graph(&g, 0);
        // Leaves 7 and 8 share parent 3 and grandparent 1.
        assert_eq!(s.tree_links(&[7, 8]), 4);
        assert_eq!(s.unicast_links(&[7, 8]), 6);
    }

    #[test]
    fn all_leaves_give_full_tree() {
        let g = binary_tree();
        let mut s = DeliverySizer::from_graph(&g, 0);
        let leaves: Vec<NodeId> = (7..15).collect();
        assert_eq!(s.tree_links(&leaves), 14); // every edge of the tree
    }

    #[test]
    fn duplicates_and_source_add_nothing() {
        let g = binary_tree();
        let mut s = DeliverySizer::from_graph(&g, 0);
        assert_eq!(s.tree_links(&[7, 7, 7]), 3);
        assert_eq!(s.tree_links(&[0]), 0);
        assert_eq!(s.tree_links(&[]), 0);
        assert_eq!(s.tree_links(&[0, 7, 7]), 3);
    }

    #[test]
    fn successive_receiver_sets_are_independent() {
        let g = binary_tree();
        let mut s = DeliverySizer::from_graph(&g, 0);
        assert_eq!(s.tree_links(&[7]), 3);
        assert_eq!(s.tree_links(&[8]), 3); // not 1: marks were reset
        assert_eq!(s.tree_links(&[7, 8]), 4);
    }

    #[test]
    fn tree_never_exceeds_unicast_sum() {
        let g = from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
                (1, 5),
            ],
        );
        let mut s = DeliverySizer::from_graph(&g, 0);
        let (tree, uni) = s.sample(&[2, 3, 4, 6]);
        assert!(tree <= uni, "{tree} > {uni}");
        assert!(tree >= 4); // must reach four distinct non-source nodes
    }

    #[test]
    fn unreachable_receivers_are_skipped() {
        let g = from_edges(5, &[(0, 1), (1, 2)]); // 3, 4 isolated
        let mut s = DeliverySizer::from_graph(&g, 0);
        assert_eq!(s.tree_links(&[2, 3, 4]), 2);
        assert_eq!(s.unicast_links(&[2, 3, 4]), 2);
        assert_eq!(s.distance(3), None);
        assert_eq!(s.distance(2), Some(2));
    }

    #[test]
    fn from_sp_tree_matches_from_graph() {
        let g = binary_tree();
        let sp = mcast_topology::bfs::Bfs::new(&g).run(0);
        let mut a = DeliverySizer::from_sp_tree(&sp);
        let mut b = DeliverySizer::from_graph(&g, 0);
        for set in [&[7u32, 12][..], &[1, 2, 3][..], &[14][..]] {
            assert_eq!(a.tree_links(set), b.tree_links(set));
        }
    }

    #[test]
    fn non_root_source() {
        let g = binary_tree();
        let mut s = DeliverySizer::from_graph(&g, 7);
        // Path 7 -> 3 -> 1 -> 0 -> 2: distance 4.
        assert_eq!(s.tree_links(&[2]), 4);
        // 8 shares 7's parent 3: path 7->3->8 is 2 links.
        assert_eq!(s.tree_links(&[8]), 2);
    }

    #[test]
    fn rebind_matches_fresh_construction() {
        let g = binary_tree();
        let mut bfs = Bfs::new(&g);
        let mut s = DeliverySizer::from_graph(&g, 0);
        for src in [7u32, 3, 0, 14, 7] {
            s.rebind(&mut bfs, src);
            let mut fresh = DeliverySizer::from_graph(&g, src);
            assert_eq!(s.source(), src);
            for set in [&[2u32, 5][..], &[7, 8, 9][..], &[0][..], &[14][..]] {
                assert_eq!(s.tree_links(set), fresh.tree_links(set), "src {src}");
                assert_eq!(s.unicast_links(set), fresh.unicast_links(set), "src {src}");
            }
        }
    }

    #[test]
    fn rebind_reuses_buffers_in_place() {
        let g = binary_tree();
        let mut bfs = Bfs::new(&g);
        let mut s = DeliverySizer::from_graph(&g, 0);
        let (p0, d0, m0) = (s.parent.as_ptr(), s.dist.as_ptr(), s.mark.as_ptr());
        for src in [1u32, 9, 4] {
            s.rebind(&mut bfs, src);
            let _ = s.tree_links(&[13, 2]);
        }
        assert_eq!(s.parent.as_ptr(), p0, "parent buffer reallocated");
        assert_eq!(s.dist.as_ptr(), d0, "dist buffer reallocated");
        assert_eq!(s.mark.as_ptr(), m0, "mark buffer reallocated");
    }

    #[test]
    #[should_panic(expected = "same node count")]
    fn rebind_rejects_mismatched_graph() {
        let big = binary_tree();
        let small = from_edges(3, &[(0, 1), (1, 2)]);
        let mut bfs = Bfs::new(&big);
        let mut s = DeliverySizer::from_graph(&small, 0);
        s.rebind(&mut bfs, 1);
    }

    #[test]
    fn epoch_overflow_resets_marks() {
        let g = binary_tree();
        let mut s = DeliverySizer::from_graph(&g, 0);
        s.epoch = u32::MAX - 1;
        assert_eq!(s.tree_links(&[7]), 3);
        assert_eq!(s.tree_links(&[7]), 3); // crosses the overflow boundary
        assert_eq!(s.tree_links(&[7, 8]), 4);
    }
}
