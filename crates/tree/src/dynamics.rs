//! Membership churn: joins and leaves with incremental tree maintenance.
//!
//! The paper measures static snapshots, but the pricing application that
//! motivated Chuang–Sirbu bills *sessions*, whose membership evolves.
//! This module simulates an M/G/∞ group: receivers arrive as a Poisson
//! process at rate `λ` at uniform sites and stay for i.i.d. lifetimes
//! ([`LifetimeShape`]: exponential, heavy-tailed Pareto, or fixed). The
//! stationary group size is Poisson(λ·E[S]) *whatever the lifetime
//! distribution* (M/G/∞ insensitivity), so the stationary tree size must
//! match the static with-replacement expectation at a Poisson-mixed `n` —
//! verified in the tests, which is a strong end-to-end check of both
//! machineries.
//!
//! The maintained tree mirrors real protocol behaviour: a join grafts the
//! member's rootward path until it meets the tree (link refcount 0→1 =
//! graft message), a leave prunes refcounts back (1→0 = prune).

use crate::stats::RunningStats;
use mcast_topology::bfs::{Bfs, UNREACHED};
use mcast_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A refcounted source-specific delivery tree supporting joins/leaves.
pub struct MemberTree {
    source: NodeId,
    parent: Vec<NodeId>,
    dist: Vec<u32>,
    /// Members whose path crosses the link above this node.
    refcount: Vec<u32>,
    links: u64,
}

impl MemberTree {
    /// Build for `(graph, source)` with no members.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(graph: &Graph, source: NodeId) -> Self {
        let mut bfs = Bfs::new(graph);
        bfs.run_scratch(source);
        Self {
            source,
            parent: bfs.scratch_parents().to_vec(),
            dist: bfs.scratch_distances().to_vec(),
            refcount: vec![0; graph.node_count()],
            links: 0,
        }
    }

    /// Current number of links in the tree.
    pub fn links(&self) -> u64 {
        self.links
    }

    /// Add a member at `site`; returns the number of links grafted.
    /// Unreachable sites join for free (no path exists).
    pub fn join(&mut self, site: NodeId) -> u64 {
        if self.dist[site as usize] == UNREACHED {
            return 0;
        }
        let mut grafted = 0;
        let mut v = site;
        while v != self.source {
            let rc = &mut self.refcount[v as usize];
            *rc += 1;
            if *rc == 1 {
                grafted += 1;
            }
            v = self.parent[v as usize];
        }
        self.links += grafted;
        grafted
    }

    /// Remove a member previously added at `site`; returns the number of
    /// links pruned.
    ///
    /// # Panics
    /// Panics (in debug builds) if no member was joined at `site` — the
    /// refcounts would underflow.
    pub fn leave(&mut self, site: NodeId) -> u64 {
        if self.dist[site as usize] == UNREACHED {
            return 0;
        }
        let mut pruned = 0;
        let mut v = site;
        while v != self.source {
            let rc = &mut self.refcount[v as usize];
            debug_assert!(*rc > 0, "leave without matching join at {v}");
            *rc -= 1;
            if *rc == 0 {
                pruned += 1;
            }
            v = self.parent[v as usize];
        }
        self.links -= pruned;
        pruned
    }
}

/// Shape of the membership-lifetime distribution (the mean is always
/// [`ChurnConfig::mean_lifetime`]).
///
/// By M/G/∞ insensitivity, the *stationary* group-size law — and hence
/// the stationary tree size — depends on the lifetime distribution only
/// through its mean; the tests verify that an exponential, a heavy-tailed
/// Pareto, and a deterministic lifetime all give the same `E[L]`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum LifetimeShape {
    /// Memoryless lifetimes (the M/M/∞ special case).
    #[default]
    Exponential,
    /// Heavy-tailed Pareto lifetimes with shape `alpha > 1`
    /// (`x_min = mean·(α−1)/α`).
    Pareto {
        /// Tail exponent, must exceed 1 for the mean to exist.
        alpha: f64,
    },
    /// Every member stays exactly the mean lifetime.
    Fixed,
}

/// Churn process configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Poisson arrival rate λ (members per unit time).
    pub arrival_rate: f64,
    /// Mean membership lifetime `E[S]`.
    pub mean_lifetime: f64,
    /// Lifetime distribution shape (mean fixed by `mean_lifetime`).
    pub lifetime_shape: LifetimeShape,
    /// Events discarded before measuring.
    pub warmup_events: usize,
    /// Events measured (time-weighted).
    pub sample_events: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// The stationary mean group size `λ·E[S]` (M/G/∞).
    pub fn mean_group_size(&self) -> f64 {
        self.arrival_rate * self.mean_lifetime
    }

    /// Draw one lifetime.
    fn sample_lifetime<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mean = self.mean_lifetime;
        match self.lifetime_shape {
            LifetimeShape::Exponential => -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() * mean,
            LifetimeShape::Pareto { alpha } => {
                assert!(alpha > 1.0, "Pareto mean needs alpha > 1");
                let x_min = mean * (alpha - 1.0) / alpha;
                x_min * rng.gen_range(f64::MIN_POSITIVE..1.0f64).powf(-1.0 / alpha)
            }
            LifetimeShape::Fixed => mean,
        }
    }
}

/// Result of a churn simulation: time-weighted statistics.
#[derive(Clone, Debug)]
pub struct ChurnOutcome {
    /// Time-averaged tree size.
    pub mean_links: f64,
    /// Time-averaged group size.
    pub mean_members: f64,
    /// Total grafts observed during the measurement phase.
    pub grafts: u64,
    /// Total prunes observed during the measurement phase.
    pub prunes: u64,
    /// Per-event tree-size samples (unweighted, for error estimation).
    pub link_samples: RunningStats,
}

/// `f64` event-time key for the departure heap (no NaNs by
/// construction).
#[derive(PartialEq)]
struct TimeKey(f64, NodeId);

impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .0
            .total_cmp(&self.0)
            .then_with(|| other.1.cmp(&self.1))
    }
}

/// Run the churn process on `(graph, source)` — an event-driven M/G/∞
/// simulation with per-member departure times.
///
/// # Panics
/// Panics if the rates are not positive or the graph has fewer than two
/// nodes.
pub fn simulate_churn(graph: &Graph, source: NodeId, cfg: &ChurnConfig) -> ChurnOutcome {
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.mean_lifetime > 0.0, "lifetime must be positive");
    assert!(graph.node_count() >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tree = MemberTree::new(graph, source);
    let mut departures: std::collections::BinaryHeap<TimeKey> = std::collections::BinaryHeap::new();
    let n_nodes = graph.node_count() as NodeId;

    let mut now = 0.0f64;
    let exp_sample = |rng: &mut StdRng, rate: f64| -> f64 {
        -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / rate
    };
    let mut next_arrival = exp_sample(&mut rng, cfg.arrival_rate);

    let mut weighted_links = 0.0;
    let mut weighted_members = 0.0;
    let mut total_time = 0.0;
    let mut grafts = 0u64;
    let mut prunes = 0u64;
    let mut link_samples = RunningStats::new();

    let total_events = cfg.warmup_events + cfg.sample_events;
    for event in 0..total_events {
        let next_departure = departures.peek().map(|k| k.0).unwrap_or(f64::INFINITY);
        let t_next = next_arrival.min(next_departure);
        let dt = t_next - now;
        let measuring = event >= cfg.warmup_events;
        if measuring {
            weighted_links += tree.links() as f64 * dt;
            weighted_members += departures.len() as f64 * dt;
            total_time += dt;
            link_samples.push(tree.links() as f64);
        }
        now = t_next;
        if next_arrival <= next_departure {
            // Arrival at a uniform non-source site.
            let site = loop {
                let v = rng.gen_range(0..n_nodes);
                if v != source {
                    break v;
                }
            };
            let g = tree.join(site);
            if measuring {
                grafts += g;
            }
            departures.push(TimeKey(now + cfg.sample_lifetime(&mut rng), site));
            next_arrival = now + exp_sample(&mut rng, cfg.arrival_rate);
        } else {
            let TimeKey(_, site) = departures.pop().expect("a departure was due");
            let p = tree.leave(site);
            if measuring {
                prunes += p;
            }
        }
    }
    ChurnOutcome {
        mean_links: weighted_links / total_time,
        mean_members: weighted_members / total_time,
        grafts,
        prunes,
        link_samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::DeliverySizer;
    use crate::sampling::{self, ReceiverPool};
    use mcast_topology::graph::from_edges;

    fn binary_tree(depth: u32) -> Graph {
        let n = (1u32 << (depth + 1)) - 1;
        let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(n as usize, &edges)
    }

    #[test]
    fn member_tree_join_leave_round_trip() {
        let g = binary_tree(3);
        let mut t = MemberTree::new(&g, 0);
        assert_eq!(t.links(), 0);
        assert_eq!(t.join(7), 3);
        assert_eq!(t.join(8), 1); // shares 0-1-3
        assert_eq!(t.links(), 4);
        assert_eq!(t.join(8), 0); // second member at the same site
        assert_eq!(t.leave(8), 0); // one still there
        assert_eq!(t.leave(8), 1); // now the 3-8 link prunes
        assert_eq!(t.leave(7), 3);
        assert_eq!(t.links(), 0);
    }

    #[test]
    fn join_matches_delivery_sizer() {
        let g = binary_tree(5);
        let mut t = MemberTree::new(&g, 0);
        let mut sizer = DeliverySizer::from_graph(&g, 0);
        let receivers = [9u32, 23, 44, 44, 61, 12];
        for &r in &receivers {
            t.join(r);
        }
        assert_eq!(t.links(), sizer.tree_links(&receivers));
    }

    #[test]
    fn stationary_group_size_is_lambda_over_mu() {
        let g = binary_tree(6);
        let cfg = ChurnConfig {
            arrival_rate: 5.0,
            mean_lifetime: 4.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 2_000,
            sample_events: 30_000,
            seed: 42,
        };
        let out = simulate_churn(&g, 0, &cfg);
        let expect = cfg.mean_group_size();
        assert!(
            (out.mean_members - expect).abs() / expect < 0.08,
            "members {} vs {expect}",
            out.mean_members
        );
    }

    #[test]
    fn stationary_tree_size_matches_static_expectation() {
        // E[L] under churn = E_n~Poisson(ν)[L̂(n)] — cross-checked by a
        // direct static Monte-Carlo with Poisson-drawn n.
        let g = binary_tree(6);
        let cfg = ChurnConfig {
            arrival_rate: 6.0,
            mean_lifetime: 3.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 2_000,
            sample_events: 40_000,
            seed: 7,
        };
        let churn = simulate_churn(&g, 0, &cfg);

        let mut sizer = DeliverySizer::from_graph(&g, 0);
        let pool = ReceiverPool::AllExceptSource {
            nodes: g.node_count(),
            source: 0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = Vec::new();
        let nu = cfg.mean_group_size();
        let mut direct = RunningStats::new();
        for _ in 0..8_000 {
            // Poisson(ν) via Knuth (ν = 18, fine).
            let mut k = 0usize;
            let mut p = 1.0f64;
            let l = (-nu).exp();
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    break;
                }
                k += 1;
            }
            if k == 0 {
                direct.push(0.0);
                continue;
            }
            sampling::with_replacement(&pool, k, &mut rng, &mut buf);
            direct.push(sizer.tree_links(&buf) as f64);
        }
        let diff = (churn.mean_links - direct.mean()).abs();
        let tol = 4.0 * (churn.link_samples.std_err() + direct.std_err()) + 0.02 * direct.mean();
        assert!(
            diff < tol,
            "churn {} vs static {} (tol {tol})",
            churn.mean_links,
            direct.mean()
        );
    }

    #[test]
    fn grafts_balance_prunes_in_steady_state() {
        let g = binary_tree(5);
        let cfg = ChurnConfig {
            arrival_rate: 3.0,
            mean_lifetime: 2.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 1_000,
            sample_events: 20_000,
            seed: 3,
        };
        let out = simulate_churn(&g, 0, &cfg);
        let ratio = out.grafts as f64 / out.prunes as f64;
        assert!((ratio - 1.0).abs() < 0.1, "grafts/prunes {ratio}");
        assert!(out.grafts > 1_000, "some churn happened");
    }

    #[test]
    fn lifetime_distribution_is_insensitive_in_steady_state() {
        // M/G/∞ insensitivity: the stationary group-size law — and hence
        // E[L] — depends on the lifetime distribution only through its
        // mean. Exponential, heavy-tailed Pareto, and deterministic
        // lifetimes with the same mean must agree.
        let g = binary_tree(6);
        let run = |shape: LifetimeShape, seed: u64| {
            simulate_churn(
                &g,
                0,
                &ChurnConfig {
                    arrival_rate: 8.0,
                    mean_lifetime: 2.5,
                    lifetime_shape: shape,
                    warmup_events: 4_000,
                    sample_events: 60_000,
                    seed,
                },
            )
        };
        let exp = run(LifetimeShape::Exponential, 1);
        let pareto = run(LifetimeShape::Pareto { alpha: 2.5 }, 2);
        let fixed = run(LifetimeShape::Fixed, 3);
        for out in [&exp, &pareto, &fixed] {
            assert!(
                (out.mean_members - 20.0).abs() / 20.0 < 0.1,
                "members {}",
                out.mean_members
            );
        }
        let lref = exp.mean_links;
        for (name, out) in [("pareto", &pareto), ("fixed", &fixed)] {
            assert!(
                (out.mean_links - lref).abs() / lref < 0.06,
                "{name}: {} vs exponential {lref}",
                out.mean_links
            );
        }
    }

    #[test]
    fn pareto_lifetimes_have_the_requested_mean() {
        let cfg = ChurnConfig {
            arrival_rate: 1.0,
            mean_lifetime: 4.0,
            lifetime_shape: LifetimeShape::Pareto { alpha: 3.0 },
            warmup_events: 0,
            sample_events: 1,
            seed: 0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..200_000)
            .map(|_| cfg.sample_lifetime(&mut rng))
            .sum::<f64>()
            / 200_000.0;
        assert!((mean - 4.0).abs() < 0.15, "sampled mean {mean}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let g = binary_tree(2);
        simulate_churn(
            &g,
            0,
            &ChurnConfig {
                arrival_rate: 0.0,
                mean_lifetime: 1.0,
                lifetime_shape: LifetimeShape::Exponential,
                warmup_events: 0,
                sample_events: 1,
                seed: 0,
            },
        );
    }
}
