//! Membership churn: joins and leaves with incremental tree maintenance.
//!
//! The paper measures static snapshots, but the pricing application that
//! motivated Chuang–Sirbu bills *sessions*, whose membership evolves.
//! This module simulates an M/G/∞ group: receivers arrive as a Poisson
//! process at rate `λ` at uniform sites and stay for i.i.d. lifetimes
//! ([`LifetimeShape`]: exponential, heavy-tailed Pareto, or fixed). The
//! stationary group size is Poisson(λ·E[S]) *whatever the lifetime
//! distribution* (M/G/∞ insensitivity), so the stationary tree size must
//! match the static with-replacement expectation at a Poisson-mixed `n` —
//! verified in the tests, which is a strong end-to-end check of both
//! machineries.
//!
//! The maintained tree mirrors real protocol behaviour: a join grafts the
//! member's rootward path until it meets the tree (link refcount 0→1 =
//! graft message), a leave prunes refcounts back (1→0 = prune).

use crate::stats::RunningStats;
use mcast_topology::bfs::{Bfs, UNREACHED};
use mcast_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A refcounted source-specific delivery tree supporting joins/leaves.
pub struct MemberTree {
    source: NodeId,
    parent: Vec<NodeId>,
    dist: Vec<u32>,
    /// Members whose path crosses the link above this node.
    refcount: Vec<u32>,
    /// Members currently joined exactly at this site (so a leave at a
    /// site with no member is detectably a no-op, never an underflow).
    members: Vec<u32>,
    member_count: u64,
    links: u64,
}

impl MemberTree {
    /// Build for `(graph, source)` with no members.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(graph: &Graph, source: NodeId) -> Self {
        let mut bfs = Bfs::new(graph);
        bfs.run_scratch(source);
        Self {
            source,
            parent: bfs.scratch_parents().to_vec(),
            dist: bfs.scratch_distances().to_vec(),
            refcount: vec![0; graph.node_count()],
            members: vec![0; graph.node_count()],
            member_count: 0,
            links: 0,
        }
    }

    /// Current number of links in the tree.
    pub fn links(&self) -> u64 {
        self.links
    }

    /// Current number of members (joins minus matched leaves).
    pub fn member_count(&self) -> u64 {
        self.member_count
    }

    /// Members currently joined exactly at `site`.
    pub fn members_at(&self, site: NodeId) -> u32 {
        self.members[site as usize]
    }

    /// Add a member at `site`; returns the number of links grafted.
    /// Unreachable sites and the source itself join for free (no rootward
    /// path to graft), but still count as members.
    pub fn join(&mut self, site: NodeId) -> u64 {
        self.members[site as usize] += 1;
        self.member_count += 1;
        if self.dist[site as usize] == UNREACHED {
            return 0;
        }
        let mut grafted = 0;
        let mut v = site;
        while v != self.source {
            let rc = &mut self.refcount[v as usize];
            *rc += 1;
            if *rc == 1 {
                grafted += 1;
            }
            v = self.parent[v as usize];
        }
        self.links += grafted;
        grafted
    }

    /// Remove a member previously added at `site`; returns the number of
    /// links pruned.
    ///
    /// Leaving a site that has no current member — a leave-before-join, a
    /// repeated leave, or a stray prune for the source — is a no-op that
    /// returns 0: the link count and every refcount are left untouched,
    /// so a desynchronised caller can never underflow the tree.
    pub fn leave(&mut self, site: NodeId) -> u64 {
        let m = &mut self.members[site as usize];
        if *m == 0 {
            return 0;
        }
        *m -= 1;
        self.member_count -= 1;
        if self.dist[site as usize] == UNREACHED {
            return 0;
        }
        let mut pruned = 0;
        let mut v = site;
        while v != self.source {
            let rc = &mut self.refcount[v as usize];
            debug_assert!(*rc > 0, "leave without matching join at {v}");
            *rc -= 1;
            if *rc == 0 {
                pruned += 1;
            }
            v = self.parent[v as usize];
        }
        self.links -= pruned;
        pruned
    }
}

/// Shape of the membership-lifetime distribution (the mean is always
/// [`ChurnConfig::mean_lifetime`]).
///
/// By M/G/∞ insensitivity, the *stationary* group-size law — and hence
/// the stationary tree size — depends on the lifetime distribution only
/// through its mean; the tests verify that an exponential, a heavy-tailed
/// Pareto, and a deterministic lifetime all give the same `E[L]`.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum LifetimeShape {
    /// Memoryless lifetimes (the M/M/∞ special case).
    #[default]
    Exponential,
    /// Heavy-tailed Pareto lifetimes with shape `alpha > 1`
    /// (`x_min = mean·(α−1)/α`).
    Pareto {
        /// Tail exponent, must exceed 1 for the mean to exist.
        alpha: f64,
    },
    /// Every member stays exactly the mean lifetime.
    Fixed,
}

/// Churn process configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnConfig {
    /// Poisson arrival rate λ (members per unit time).
    pub arrival_rate: f64,
    /// Mean membership lifetime `E[S]`.
    pub mean_lifetime: f64,
    /// Lifetime distribution shape (mean fixed by `mean_lifetime`).
    pub lifetime_shape: LifetimeShape,
    /// Events discarded before measuring.
    pub warmup_events: usize,
    /// Events measured (time-weighted).
    pub sample_events: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ChurnConfig {
    /// The stationary mean group size `λ·E[S]` (M/G/∞).
    pub fn mean_group_size(&self) -> f64 {
        self.arrival_rate * self.mean_lifetime
    }

    /// Draw one lifetime (shared with the multi-session storm engine).
    pub(crate) fn sample_lifetime<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mean = self.mean_lifetime;
        match self.lifetime_shape {
            LifetimeShape::Exponential => -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() * mean,
            LifetimeShape::Pareto { alpha } => {
                assert!(alpha > 1.0, "Pareto mean needs alpha > 1");
                let x_min = mean * (alpha - 1.0) / alpha;
                x_min * rng.gen_range(f64::MIN_POSITIVE..1.0f64).powf(-1.0 / alpha)
            }
            LifetimeShape::Fixed => mean,
        }
    }
}

/// Result of a churn simulation: time-weighted statistics.
#[derive(Clone, Debug)]
pub struct ChurnOutcome {
    /// Time-averaged tree size.
    pub mean_links: f64,
    /// Time-averaged group size.
    pub mean_members: f64,
    /// Total grafts observed during the measurement phase.
    pub grafts: u64,
    /// Total prunes observed during the measurement phase.
    pub prunes: u64,
    /// Per-event tree-size samples (unweighted, for error estimation).
    pub link_samples: RunningStats,
}

/// Map an event time to a `u64` that orders exactly like the `f64`
/// (a monotone total order over every non-NaN value, negatives
/// included). Keys built from it compare with plain integer `Ord`, so
/// heap order can never depend on insertion order, float environment, or
/// a `partial_cmp` fallback — two events at the *same* time carry the
/// same bits and fall through to the explicit integer tie-breakers.
///
/// This is the canonical time key of every event calendar in the crate:
/// the single-session departure heap below and the multi-session
/// [`crate::storm`] queue's `(time_bits, session, seq)` tuples.
///
/// # Panics
/// Panics (debug) on NaN — a NaN event time is always a caller bug.
#[inline]
pub fn time_order_bits(t: f64) -> u64 {
    debug_assert!(!t.is_nan(), "event times must not be NaN");
    let bits = t.to_bits();
    // Positive floats order as-is above all negatives; negative floats
    // reverse. The standard sign-fold keeps both monotone.
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`time_order_bits`]: recover the `f64` a key was built
/// from (exact — the fold is a bijection on non-NaN bit patterns).
#[inline]
pub fn time_order_value(bits: u64) -> f64 {
    if bits >> 63 == 1 {
        f64::from_bits(bits & !(1 << 63))
    } else {
        f64::from_bits(!bits)
    }
}

/// Departure-heap key: `(time_order_bits, site)` — a total integer order
/// with the site id as the deterministic tie-breaker for equal times.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct TimeKey {
    bits: u64,
    site: NodeId,
}

/// Reversed wrapper: `BinaryHeap` is a max-heap, we want earliest first.
#[derive(PartialEq, Eq)]
struct Earliest(TimeKey);

impl PartialOrd for Earliest {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Earliest {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0)
    }
}

/// A churn event calendar desynchronised from the simulation loop — the
/// typed form of what used to be a panic deep inside the runner, so a
/// suite run can quarantine the one affected curve instead of aborting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnError {
    /// A departure was due (the next-event scan saw one earlier than the
    /// next arrival) but the calendar had none to pop.
    MissingDeparture {
        /// Index of the event being processed when the desync surfaced.
        event: usize,
        /// Simulation clock at that point.
        now: f64,
    },
    /// A session id was started twice in the multi-session engine.
    DuplicateSession {
        /// The offending session id.
        session: u32,
        /// Simulation clock at that point.
        now: f64,
    },
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnError::MissingDeparture { event, now } => write!(
                f,
                "churn calendar desync: departure due at event {event} (t={now}) but the calendar is empty"
            ),
            ChurnError::DuplicateSession { session, now } => {
                write!(f, "storm calendar desync: session {session} started twice (t={now})")
            }
        }
    }
}

impl std::error::Error for ChurnError {}

/// Run the churn process on `(graph, source)` — an event-driven M/G/∞
/// simulation with per-member departure times.
///
/// Fallible twin of [`simulate_churn`]: a desynchronised event calendar
/// surfaces as a typed [`ChurnError`] instead of a panic, so runner
/// paths can fold it into their per-group failure reporting.
///
/// # Panics
/// Panics if the rates are not positive or the graph has fewer than two
/// nodes (configuration bugs, not runtime conditions).
pub fn try_simulate_churn(
    graph: &Graph,
    source: NodeId,
    cfg: &ChurnConfig,
) -> Result<ChurnOutcome, ChurnError> {
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.mean_lifetime > 0.0, "lifetime must be positive");
    assert!(graph.node_count() >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut tree = MemberTree::new(graph, source);
    let mut departures: std::collections::BinaryHeap<Earliest> = std::collections::BinaryHeap::new();
    let n_nodes = graph.node_count() as NodeId;

    let mut now = 0.0f64;
    let exp_sample = |rng: &mut StdRng, rate: f64| -> f64 {
        -rng.gen_range(f64::MIN_POSITIVE..1.0f64).ln() / rate
    };
    let mut next_arrival = exp_sample(&mut rng, cfg.arrival_rate);

    let mut weighted_links = 0.0;
    let mut weighted_members = 0.0;
    let mut total_time = 0.0;
    let mut grafts = 0u64;
    let mut prunes = 0u64;
    let mut link_samples = RunningStats::new();

    let total_events = cfg.warmup_events + cfg.sample_events;
    for event in 0..total_events {
        let next_departure = departures
            .peek()
            .map(|k| time_order_value(k.0.bits))
            .unwrap_or(f64::INFINITY);
        let t_next = next_arrival.min(next_departure);
        let dt = t_next - now;
        let measuring = event >= cfg.warmup_events;
        if measuring {
            weighted_links += tree.links() as f64 * dt;
            weighted_members += departures.len() as f64 * dt;
            total_time += dt;
            link_samples.push(tree.links() as f64);
        }
        now = t_next;
        if next_arrival <= next_departure {
            // Arrival at a uniform non-source site.
            let site = loop {
                let v = rng.gen_range(0..n_nodes);
                if v != source {
                    break v;
                }
            };
            let g = tree.join(site);
            if measuring {
                grafts += g;
            }
            let depart_at = now + cfg.sample_lifetime(&mut rng);
            departures.push(Earliest(TimeKey {
                bits: time_order_bits(depart_at),
                site,
            }));
            next_arrival = now + exp_sample(&mut rng, cfg.arrival_rate);
        } else {
            let Some(Earliest(TimeKey { site, .. })) = departures.pop() else {
                return Err(ChurnError::MissingDeparture { event, now });
            };
            let p = tree.leave(site);
            if measuring {
                prunes += p;
            }
        }
    }
    Ok(ChurnOutcome {
        mean_links: weighted_links / total_time,
        mean_members: weighted_members / total_time,
        grafts,
        prunes,
        link_samples,
    })
}

/// Run the churn process on `(graph, source)` — the infallible wrapper
/// around [`try_simulate_churn`] kept for callers with no error channel.
///
/// # Panics
/// Panics if the rates are not positive, the graph has fewer than two
/// nodes, or (never observed in practice) the event calendar desyncs —
/// see [`ChurnError`].
pub fn simulate_churn(graph: &Graph, source: NodeId, cfg: &ChurnConfig) -> ChurnOutcome {
    match try_simulate_churn(graph, source, cfg) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delivery::DeliverySizer;
    use crate::sampling::{self, ReceiverPool};
    use mcast_topology::graph::from_edges;

    fn binary_tree(depth: u32) -> Graph {
        let n = (1u32 << (depth + 1)) - 1;
        let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(n as usize, &edges)
    }

    #[test]
    fn member_tree_join_leave_round_trip() {
        let g = binary_tree(3);
        let mut t = MemberTree::new(&g, 0);
        assert_eq!(t.links(), 0);
        assert_eq!(t.join(7), 3);
        assert_eq!(t.join(8), 1); // shares 0-1-3
        assert_eq!(t.links(), 4);
        assert_eq!(t.join(8), 0); // second member at the same site
        assert_eq!(t.leave(8), 0); // one still there
        assert_eq!(t.leave(8), 1); // now the 3-8 link prunes
        assert_eq!(t.leave(7), 3);
        assert_eq!(t.links(), 0);
    }

    #[test]
    fn leave_before_join_is_a_noop() {
        // Regression: a leave with no matching join used to underflow the
        // path refcounts in release builds (debug_assert only in debug).
        let g = binary_tree(3);
        let mut t = MemberTree::new(&g, 0);
        assert_eq!(t.leave(7), 0);
        assert_eq!(t.links(), 0);
        assert_eq!(t.member_count(), 0);
        // The tree still behaves correctly afterwards.
        assert_eq!(t.join(7), 3);
        assert_eq!(t.leave(7), 3);
        assert_eq!(t.links(), 0);
    }

    #[test]
    fn repeated_leave_is_a_noop() {
        let g = binary_tree(3);
        let mut t = MemberTree::new(&g, 0);
        t.join(7);
        t.join(8);
        let links = t.links();
        assert_eq!(t.leave(8), 1);
        // Second and third leave at the same site: nothing left to prune,
        // nothing to underflow.
        assert_eq!(t.leave(8), 0);
        assert_eq!(t.leave(8), 0);
        assert_eq!(t.links(), links - 1);
        assert_eq!(t.member_count(), 1);
        assert_eq!(t.leave(7), 3);
        assert_eq!(t.links(), 0);
    }

    #[test]
    fn source_join_and_leave_touch_no_links() {
        let g = binary_tree(2);
        let mut t = MemberTree::new(&g, 0);
        assert_eq!(t.join(0), 0);
        assert_eq!(t.member_count(), 1);
        assert_eq!(t.members_at(0), 1);
        assert_eq!(t.leave(0), 0);
        assert_eq!(t.leave(0), 0, "stray source prune stays a no-op");
        assert_eq!(t.member_count(), 0);
        assert_eq!(t.links(), 0);
    }

    #[test]
    fn time_order_bits_is_monotone_and_invertible() {
        let times = [
            -f64::INFINITY,
            -1.5e300,
            -2.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            0.25,
            1.0,
            1.0 + f64::EPSILON,
            6.5e12,
            f64::INFINITY,
        ];
        for w in times.windows(2) {
            assert!(
                time_order_bits(w[0]) <= time_order_bits(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        for &t in &times {
            let round = time_order_value(time_order_bits(t));
            assert_eq!(round.to_bits(), t.to_bits(), "{t} round-trip");
        }
        // Strictness away from the -0.0/0.0 fold.
        assert!(time_order_bits(1.0) < time_order_bits(1.0 + f64::EPSILON));
    }

    #[test]
    fn churn_error_is_typed_and_displayable() {
        let e = ChurnError::MissingDeparture { event: 41, now: 2.5 };
        let text = e.to_string();
        assert!(text.contains("event 41") && text.contains("desync"), "{text}");
        let d = ChurnError::DuplicateSession { session: 9, now: 0.0 };
        assert!(d.to_string().contains("session 9"), "{d}");
        // try_simulate_churn returns the same numbers as the wrapper.
        let g = binary_tree(4);
        let cfg = ChurnConfig {
            arrival_rate: 2.0,
            mean_lifetime: 1.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 100,
            sample_events: 2_000,
            seed: 5,
        };
        let a = try_simulate_churn(&g, 0, &cfg).expect("calendar stays in sync");
        let b = simulate_churn(&g, 0, &cfg);
        assert_eq!(a.mean_links.to_bits(), b.mean_links.to_bits());
        assert_eq!((a.grafts, a.prunes), (b.grafts, b.prunes));
    }

    #[test]
    fn join_matches_delivery_sizer() {
        let g = binary_tree(5);
        let mut t = MemberTree::new(&g, 0);
        let mut sizer = DeliverySizer::from_graph(&g, 0);
        let receivers = [9u32, 23, 44, 44, 61, 12];
        for &r in &receivers {
            t.join(r);
        }
        assert_eq!(t.links(), sizer.tree_links(&receivers));
    }

    #[test]
    fn stationary_group_size_is_lambda_over_mu() {
        let g = binary_tree(6);
        let cfg = ChurnConfig {
            arrival_rate: 5.0,
            mean_lifetime: 4.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 2_000,
            sample_events: 30_000,
            seed: 42,
        };
        let out = simulate_churn(&g, 0, &cfg);
        let expect = cfg.mean_group_size();
        assert!(
            (out.mean_members - expect).abs() / expect < 0.08,
            "members {} vs {expect}",
            out.mean_members
        );
    }

    #[test]
    fn stationary_tree_size_matches_static_expectation() {
        // E[L] under churn = E_n~Poisson(ν)[L̂(n)] — cross-checked by a
        // direct static Monte-Carlo with Poisson-drawn n.
        let g = binary_tree(6);
        let cfg = ChurnConfig {
            arrival_rate: 6.0,
            mean_lifetime: 3.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 2_000,
            sample_events: 40_000,
            seed: 7,
        };
        let churn = simulate_churn(&g, 0, &cfg);

        let mut sizer = DeliverySizer::from_graph(&g, 0);
        let pool = ReceiverPool::AllExceptSource {
            nodes: g.node_count(),
            source: 0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = Vec::new();
        let nu = cfg.mean_group_size();
        let mut direct = RunningStats::new();
        for _ in 0..8_000 {
            // Poisson(ν) via Knuth (ν = 18, fine).
            let mut k = 0usize;
            let mut p = 1.0f64;
            let l = (-nu).exp();
            loop {
                p *= rng.gen::<f64>();
                if p <= l {
                    break;
                }
                k += 1;
            }
            if k == 0 {
                direct.push(0.0);
                continue;
            }
            sampling::with_replacement(&pool, k, &mut rng, &mut buf);
            direct.push(sizer.tree_links(&buf) as f64);
        }
        let diff = (churn.mean_links - direct.mean()).abs();
        let tol = 4.0 * (churn.link_samples.std_err() + direct.std_err()) + 0.02 * direct.mean();
        assert!(
            diff < tol,
            "churn {} vs static {} (tol {tol})",
            churn.mean_links,
            direct.mean()
        );
    }

    #[test]
    fn grafts_balance_prunes_in_steady_state() {
        let g = binary_tree(5);
        let cfg = ChurnConfig {
            arrival_rate: 3.0,
            mean_lifetime: 2.0,
            lifetime_shape: LifetimeShape::Exponential,
            warmup_events: 1_000,
            sample_events: 20_000,
            seed: 3,
        };
        let out = simulate_churn(&g, 0, &cfg);
        let ratio = out.grafts as f64 / out.prunes as f64;
        assert!((ratio - 1.0).abs() < 0.1, "grafts/prunes {ratio}");
        assert!(out.grafts > 1_000, "some churn happened");
    }

    #[test]
    fn lifetime_distribution_is_insensitive_in_steady_state() {
        // M/G/∞ insensitivity: the stationary group-size law — and hence
        // E[L] — depends on the lifetime distribution only through its
        // mean. Exponential, heavy-tailed Pareto, and deterministic
        // lifetimes with the same mean must agree.
        let g = binary_tree(6);
        let run = |shape: LifetimeShape, seed: u64| {
            simulate_churn(
                &g,
                0,
                &ChurnConfig {
                    arrival_rate: 8.0,
                    mean_lifetime: 2.5,
                    lifetime_shape: shape,
                    warmup_events: 4_000,
                    sample_events: 60_000,
                    seed,
                },
            )
        };
        let exp = run(LifetimeShape::Exponential, 1);
        let pareto = run(LifetimeShape::Pareto { alpha: 2.5 }, 2);
        let fixed = run(LifetimeShape::Fixed, 3);
        for out in [&exp, &pareto, &fixed] {
            assert!(
                (out.mean_members - 20.0).abs() / 20.0 < 0.1,
                "members {}",
                out.mean_members
            );
        }
        let lref = exp.mean_links;
        for (name, out) in [("pareto", &pareto), ("fixed", &fixed)] {
            assert!(
                (out.mean_links - lref).abs() / lref < 0.06,
                "{name}: {} vs exponential {lref}",
                out.mean_links
            );
        }
    }

    #[test]
    fn pareto_lifetimes_have_the_requested_mean() {
        let cfg = ChurnConfig {
            arrival_rate: 1.0,
            mean_lifetime: 4.0,
            lifetime_shape: LifetimeShape::Pareto { alpha: 3.0 },
            warmup_events: 0,
            sample_events: 1,
            seed: 0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..200_000)
            .map(|_| cfg.sample_lifetime(&mut rng))
            .sum::<f64>()
            / 200_000.0;
        assert!((mean - 4.0).abs() < 0.15, "sampled mean {mean}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let g = binary_tree(2);
        simulate_churn(
            &g,
            0,
            &ChurnConfig {
                arrival_rate: 0.0,
                mean_lifetime: 1.0,
                lifetime_shape: LifetimeShape::Exponential,
                warmup_events: 0,
                sample_events: 1,
                seed: 0,
            },
        );
    }
}
