//! The paper's §2 measurement methodology.
//!
//! "For each network we pick a source at random. For each m, we pick
//! `N_rcvr` random sets of m distinct receiver locations chosen uniformly
//! over the network. For each random set … we compute the size of the
//! delivery tree `L(m)`; we also compute the sum of the unicast paths …
//! and average those to determine the average unicast path length `ū(m)`
//! for this sample … For each such sample we compute the ratio … We repeat
//! this for `N_source` random choices of the sources [picked with
//! replacement] … then average this quantity."
//!
//! [`SourceMeasurer`] produces the per-(source, receiver-set) samples;
//! [`ratio_curve`] / [`lhat_curve`] run the full `N_source × N_rcvr`
//! average. Because sources are drawn **with replacement**, the same node
//! is often picked for several source indices (on ARPA's 47 nodes, 100
//! draws hit only ~44 distinct sources); [`SourcePlan`] groups the draws
//! by node and [`MeasureEngine`] runs one BFS per *distinct* node while
//! every source index keeps its own RNG stream, so the merged statistics
//! are bit-identical to the naive one-BFS-per-index schedule. The curve
//! drivers here are single-threaded — the experiment crate parallelises by
//! sharding [`SourcePlan`] groups across worker-owned engines and merging
//! [`RunningStats`] in source-index order.

use crate::delivery::DeliverySizer;
use crate::sampling::{self, DedupMarks, ReceiverPool};
use crate::stats::RunningStats;
use mcast_topology::batch::{max_lanes, BatchBfs};
use mcast_topology::bfs::Bfs;
use mcast_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample-count configuration (paper defaults: 100 × 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasureConfig {
    /// `N_source`: random sources, drawn with replacement.
    pub sources: usize,
    /// `N_rcvr`: receiver sets per (source, group-size) pair.
    pub receiver_sets: usize,
    /// Root seed; every (source index, point) derives from it.
    pub seed: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            sources: 100,
            receiver_sets: 100,
            seed: 0x6d63_6173_7431,
        }
    }
}

/// One point of a measured curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Group size (the paper's `m` or `n`).
    pub x: usize,
    /// Accumulated samples at this size.
    pub stats: RunningStats,
}

/// Which §-model a measured curve samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleKind {
    /// §2: `L(m)/ū(m)` over `m` distinct receivers.
    Ratio,
    /// §4: `L̂(n)/(n·ū)` over `n` with-replacement receivers.
    NormalizedTree,
}

/// Per-source measurement engine: one BFS, then cheap repeated sampling.
///
/// Samples are tallied in a plain local counter and flushed to the
/// global `tree.samples` metric on drop, so observability costs one
/// non-atomic increment per sample and one atomic add per source. When
/// reused across sources via [`SourceMeasurer::reuse`], the flush covers
/// every source index the measurer served.
pub struct SourceMeasurer {
    sizer: DeliverySizer,
    pool: ReceiverPool,
    mean_dist: f64,
    buf: Vec<NodeId>,
    /// Epoch-marked dedup scratch for Floyd sampling: grown once to the
    /// pool's high-water mark, so the steady-state §2 sample path performs
    /// no allocation and no hashing.
    dedup: DedupMarks,
    samples: u64,
    /// Source indices served (grows via `reuse` and the dedup cache).
    sources: u64,
}

impl SourceMeasurer {
    /// Measurer whose receivers range over every node except `source`
    /// (the paper's general-network model).
    pub fn new(graph: &Graph, source: NodeId) -> Self {
        let pool = ReceiverPool::AllExceptSource {
            nodes: graph.node_count(),
            source,
        };
        Self::with_pool(graph, source, pool)
    }

    /// Measurer with an explicit receiver pool (e.g. k-ary tree leaves).
    pub fn with_pool(graph: &Graph, source: NodeId, pool: ReceiverPool) -> Self {
        let sizer = DeliverySizer::from_graph(graph, source);
        let mean_dist = mean_pool_distance(&sizer, &pool);
        Self {
            sizer,
            pool,
            mean_dist,
            buf: Vec::new(),
            dedup: DedupMarks::new(),
            samples: 0,
            sources: 1,
        }
    }

    /// [`SourceMeasurer::new`] with `ū` supplied by the caller instead of
    /// scanned from the sizer's distance array, for the general-network
    /// (all-except-source) pool. The caller promises `mean_dist` equals
    /// the scan's result bit-for-bit — [`batched_mean_distances`]
    /// guarantees exactly that.
    pub fn new_precomputed(graph: &Graph, source: NodeId, mean_dist: f64) -> Self {
        let pool = ReceiverPool::AllExceptSource {
            nodes: graph.node_count(),
            source,
        };
        let sizer = DeliverySizer::from_graph(graph, source);
        Self {
            sizer,
            pool,
            mean_dist,
            buf: Vec::new(),
            dedup: DedupMarks::new(),
            samples: 0,
            sources: 1,
        }
    }

    /// Re-target this measurer at a new source without allocating: the
    /// sizer's parent/dist/mark buffers are refilled in place through
    /// `bfs` ([`DeliverySizer::rebind`]), the receiver pool follows the
    /// source, `ū` is recomputed, and the receiver/dedup scratch buffers
    /// carry over. Sample/source tallies keep accumulating and flush once
    /// on drop.
    ///
    /// An [`ReceiverPool::AllExceptSource`] pool tracks the new source;
    /// explicit/range pools (fixed site sets) are kept as-is.
    ///
    /// # Panics
    /// Panics if `bfs` belongs to a graph of a different node count.
    pub fn reuse(&mut self, bfs: &mut Bfs<'_>, source: NodeId) {
        self.sizer.rebind(bfs, source);
        if let ReceiverPool::AllExceptSource { source: s, .. } = &mut self.pool {
            *s = source;
        }
        self.mean_dist = mean_pool_distance(&self.sizer, &self.pool);
        self.sources += 1;
    }

    /// [`SourceMeasurer::reuse`] with the new source's `ū` supplied by the
    /// caller (see [`Self::new_precomputed`]); skips the O(pool) distance
    /// scan. Only meaningful for the all-except-source pool, whose `ū`
    /// follows the source.
    pub fn reuse_precomputed(&mut self, bfs: &mut Bfs<'_>, source: NodeId, mean_dist: f64) {
        self.sizer.rebind(bfs, source);
        if let ReceiverPool::AllExceptSource { source: s, .. } = &mut self.pool {
            *s = source;
        }
        self.mean_dist = mean_dist;
        self.sources += 1;
    }

    /// The source this measurer is currently rooted at.
    pub fn source(&self) -> NodeId {
        self.sizer.source()
    }

    /// This source's average unicast path length over the pool (`ū`).
    pub fn mean_distance(&self) -> f64 {
        self.mean_dist
    }

    /// The receiver pool size (`M`).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// §2 sample: `m` distinct receivers; returns `L / ū_sample` where
    /// `ū_sample` is the mean unicast path of *this* receiver set, or
    /// `None` when every sampled receiver is unreachable from the source
    /// (`ū_sample = 0`, so the ratio is undefined). The RNG stream is
    /// consumed identically either way, so skipping never perturbs later
    /// draws.
    ///
    /// # Panics
    /// Panics if `m` is zero or exceeds the pool.
    pub fn try_ratio_sample<R: Rng + ?Sized>(&mut self, m: usize, rng: &mut R) -> Option<f64> {
        assert!(m > 0, "need at least one receiver");
        self.samples += 1;
        sampling::distinct_marked(&self.pool, m, rng, &mut self.buf, &mut self.dedup);
        let (tree, unicast) = self.sizer.sample(&self.buf);
        if unicast == 0 {
            return None;
        }
        Some(tree as f64 * m as f64 / unicast as f64)
    }

    /// [`Self::try_ratio_sample`] for callers that know the topology is
    /// connected.
    ///
    /// # Panics
    /// Panics if `m` is zero or exceeds the pool, or if the sample is
    /// degenerate (all receivers unreachable) — release builds used to
    /// divide by zero here and emit silent NaN.
    pub fn ratio_sample<R: Rng + ?Sized>(&mut self, m: usize, rng: &mut R) -> f64 {
        self.try_ratio_sample(m, rng)
            .expect("ratio_sample: no sampled receiver is reachable from the source")
    }

    /// §3 sample: `n` with-replacement receivers; returns the raw tree
    /// size `L̂`.
    pub fn tree_sample<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> u64 {
        self.samples += 1;
        sampling::with_replacement(&self.pool, n, rng, &mut self.buf);
        self.sizer.tree_links(&self.buf)
    }

    /// §4 sample: `L̂ / (n · ū)` with `ū` this source's mean unicast path
    /// length — the normalisation of the paper's Fig 6 — or `None` when
    /// the source reaches no pool site at all (`ū = 0`). The RNG stream
    /// is consumed identically either way.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn try_normalized_tree_sample<R: Rng + ?Sized>(
        &mut self,
        n: usize,
        rng: &mut R,
    ) -> Option<f64> {
        assert!(n > 0, "need at least one receiver");
        let l = self.tree_sample(n, rng);
        if self.mean_dist == 0.0 {
            return None;
        }
        Some(l as f64 / (n as f64 * self.mean_dist))
    }

    /// [`Self::try_normalized_tree_sample`] for callers that know the
    /// topology is connected.
    ///
    /// # Panics
    /// Panics if `n` is zero or the source reaches no pool site.
    pub fn normalized_tree_sample<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> f64 {
        self.try_normalized_tree_sample(n, rng)
            .expect("normalized_tree_sample: source reaches no pool site (ū = 0)")
    }
}

/// `ū` over the pool: mean hop distance to the *reachable* pool sites.
fn mean_pool_distance(sizer: &DeliverySizer, pool: &ReceiverPool) -> f64 {
    let mut total = 0u64;
    let mut reachable = 0u64;
    for i in 0..pool.len() {
        if let Some(d) = sizer.distance(pool.site(i)) {
            total += u64::from(d);
            reachable += 1;
        }
    }
    if reachable == 0 {
        0.0
    } else {
        total as f64 / reachable as f64
    }
}

/// `ū` for each of `nodes` via the bit-parallel kernel: one sweep per
/// lane-width batch of sources instead of one O(pool) distance scan each.
/// For the
/// general-network pool (every node except the source) the scan sums hop
/// distances over exactly the reachable non-source sites — the kernel's
/// `Σ r·S(r)` over `reached − 1` — as exact integers, so every returned
/// value is bit-identical to what [`SourceMeasurer::new`] would compute,
/// including the `0.0` convention for sources that reach no site.
pub fn batched_mean_distances(batch: &mut BatchBfs<'_>, nodes: &[NodeId]) -> Vec<f64> {
    let mut out = Vec::with_capacity(nodes.len());
    for chunk in nodes.chunks(max_lanes()) {
        batch.run_profiles(chunk);
        for lane in 0..batch.lanes() {
            let reached = batch.reached(lane);
            out.push(if reached <= 1 {
                0.0
            } else {
                batch.total_distance(lane) as f64 / (reached - 1) as f64
            });
        }
    }
    out
}

impl Drop for SourceMeasurer {
    fn drop(&mut self) {
        if self.samples > 0 && mcast_obs::enabled() {
            mcast_obs::counter("tree.samples").add(self.samples);
            mcast_obs::counter("tree.sources_measured").add(self.sources);
        }
    }
}

/// Derive the RNG for a given (seed, source index) pair, so shards can be
/// distributed across threads while reproducing the sequential result
/// structure.
pub fn source_rng(seed: u64, source_index: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (source_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Pick the source node for `source_index` (paper: uniform, with
/// replacement).
pub fn pick_source(graph: &Graph, seed: u64, source_index: usize) -> NodeId {
    let mut rng = source_rng(seed ^ 0x5eed, source_index);
    rng.gen_range(0..graph.node_count() as NodeId)
}

/// One distinct source node and every source index that drew it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceGroup {
    /// The drawn node.
    pub node: NodeId,
    /// Source indices (ascending) that picked `node`.
    pub indices: Vec<usize>,
}

/// The deduplicated source schedule for one (graph, config) pair.
///
/// [`pick_source`] draws `N_source` nodes with replacement; this plan
/// groups the draws by node (in first-appearance order) so the engine runs
/// one BFS per **distinct** node. Dedup is purely a work-sharing
/// transform: each index still derives its own [`source_rng`] stream, so
/// per-index sample values — and any index-order merge of their
/// [`RunningStats`] — are unchanged.
#[derive(Clone, Debug)]
pub struct SourcePlan {
    groups: Vec<SourceGroup>,
    total: usize,
}

impl SourcePlan {
    /// Draw and group all `cfg.sources` source indices.
    pub fn new(graph: &Graph, cfg: &MeasureConfig) -> Self {
        let mut slot: Vec<Option<usize>> = vec![None; graph.node_count()];
        let mut groups: Vec<SourceGroup> = Vec::new();
        for index in 0..cfg.sources {
            let node = pick_source(graph, cfg.seed, index);
            match slot[node as usize] {
                Some(g) => groups[g].indices.push(index),
                None => {
                    slot[node as usize] = Some(groups.len());
                    groups.push(SourceGroup {
                        node,
                        indices: vec![index],
                    });
                }
            }
        }
        Self {
            groups,
            total: cfg.sources,
        }
    }

    /// The groups, in first-appearance order of their node.
    pub fn groups(&self) -> &[SourceGroup] {
        &self.groups
    }

    /// Number of distinct source nodes (= BFS runs needed).
    pub fn distinct(&self) -> usize {
        self.groups.len()
    }

    /// Total source indices covered (`N_source`).
    pub fn total(&self) -> usize {
        self.total
    }
}

/// A worker-owned measurement engine: one BFS frontier queue plus one
/// [`SourceMeasurer`] whose buffers persist across sources.
///
/// After warm-up (first bind), re-binding to a new source allocates
/// nothing, and binding to the *current* source is free — which is what
/// makes [`SourcePlan`] dedup pay: consecutive indices of a group hit the
/// cache and share the BFS.
pub struct MeasureEngine<'g> {
    graph: &'g Graph,
    bfs: Bfs<'g>,
    measurer: Option<SourceMeasurer>,
    rebinds: u64,
}

impl<'g> MeasureEngine<'g> {
    /// Engine for `graph`; no BFS is run until the first [`Self::bind`].
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            bfs: Bfs::new(graph),
            measurer: None,
            rebinds: 0,
        }
    }

    /// Measurer rooted at `source` (general-network receiver pool),
    /// running a BFS only if the engine is not already bound to it.
    pub fn bind(&mut self, source: NodeId) -> &mut SourceMeasurer {
        let hit = self.measurer.as_ref().is_some_and(|m| m.source() == source);
        if !hit {
            self.rebinds += 1;
            match &mut self.measurer {
                Some(m) => m.reuse(&mut self.bfs, source),
                None => self.measurer = Some(SourceMeasurer::new(self.graph, source)),
            }
        }
        self.measurer.as_mut().expect("measurer bound")
    }

    /// [`Self::bind`] with the source's `ū` supplied by the caller (from a
    /// batched pre-sweep, see [`batched_mean_distances`]); caching
    /// behaviour is identical, only the per-source distance scan is
    /// skipped.
    pub fn bind_precomputed(&mut self, source: NodeId, mean_dist: f64) -> &mut SourceMeasurer {
        let hit = self.measurer.as_ref().is_some_and(|m| m.source() == source);
        if !hit {
            self.rebinds += 1;
            match &mut self.measurer {
                Some(m) => m.reuse_precomputed(&mut self.bfs, source, mean_dist),
                None => {
                    self.measurer = Some(SourceMeasurer::new_precomputed(
                        self.graph, source, mean_dist,
                    ))
                }
            }
        }
        self.measurer.as_mut().expect("measurer bound")
    }

    /// How many binds actually ran a BFS (cache misses).
    pub fn rebinds(&self) -> u64 {
        self.rebinds
    }
}

/// Measure every source index of `group` on `engine`: one BFS (at most),
/// `indices × xs × receiver_sets` samples. Returns, per source index in
/// ascending order, the per-`x` statistics — exactly what the naive
/// one-measurer-per-index schedule produces, since each index keeps its
/// own [`source_rng`] stream and degenerate samples are skipped
/// deterministically (the RNG advances regardless).
pub fn measure_group(
    engine: &mut MeasureEngine<'_>,
    group: &SourceGroup,
    xs: &[usize],
    cfg: &MeasureConfig,
    kind: SampleKind,
) -> Vec<(usize, Vec<RunningStats>)> {
    measure_group_with_mean(engine, group, xs, cfg, kind, None)
}

/// [`measure_group`] with the group's `ū` optionally precomputed by a
/// batched sweep ([`batched_mean_distances`]); `None` falls back to the
/// engine's own per-source scan. Results are bit-identical either way.
pub fn measure_group_with_mean(
    engine: &mut MeasureEngine<'_>,
    group: &SourceGroup,
    xs: &[usize],
    cfg: &MeasureConfig,
    kind: SampleKind,
    mean_dist: Option<f64>,
) -> Vec<(usize, Vec<RunningStats>)> {
    let mut out = Vec::with_capacity(group.indices.len());
    for (k, &index) in group.indices.iter().enumerate() {
        let measurer = match mean_dist {
            Some(u) => engine.bind_precomputed(group.node, u),
            None => engine.bind(group.node),
        };
        if k > 0 {
            // Cache hit for a *different* source index: the paper drew
            // this node again, so it counts as another measured source.
            measurer.sources += 1;
        }
        let mut rng = source_rng(cfg.seed, index);
        let mut per_x = Vec::with_capacity(xs.len());
        for &x in xs {
            let mut stats = RunningStats::new();
            for _ in 0..cfg.receiver_sets {
                let sample = match kind {
                    SampleKind::Ratio => measurer.try_ratio_sample(x, &mut rng),
                    SampleKind::NormalizedTree => measurer.try_normalized_tree_sample(x, &mut rng),
                };
                if let Some(v) = sample {
                    stats.push(v);
                }
            }
            per_x.push(stats);
        }
        out.push((index, per_x));
    }
    out
}

/// Sequential curve driver on the dedup engine: per-index statistics are
/// merged in source-index order, the same reduction the parallel driver
/// performs — so sequential and parallel results are bit-identical by
/// construction.
fn sequential_curve(
    graph: &Graph,
    xs: &[usize],
    cfg: &MeasureConfig,
    kind: SampleKind,
) -> Vec<CurvePoint> {
    let plan = SourcePlan::new(graph, cfg);
    let mut per_index: Vec<Option<Vec<RunningStats>>> = vec![None; plan.total()];
    let mut engine = MeasureEngine::new(graph);
    for group in plan.groups() {
        for (index, stats) in measure_group(&mut engine, group, xs, cfg, kind) {
            per_index[index] = Some(stats);
        }
    }
    merge_indexed(xs, per_index)
}

/// Merge per-source-index statistics (ascending index order) into curve
/// points. Order matters bit-wise: every driver — sequential or parallel —
/// must reduce in this order to produce identical artefacts.
pub fn merge_indexed(xs: &[usize], per_index: Vec<Option<Vec<RunningStats>>>) -> Vec<CurvePoint> {
    let mut merged = vec![RunningStats::new(); xs.len()];
    for per_x in per_index.into_iter().flatten() {
        for (m, s) in merged.iter_mut().zip(per_x) {
            m.merge(&s);
        }
    }
    xs.iter()
        .zip(merged)
        .map(|(&x, stats)| CurvePoint { x, stats })
        .collect()
}

/// Measure the §2 ratio curve `E[L(m)/ū(m)]` at each `m`.
pub fn ratio_curve(graph: &Graph, ms: &[usize], cfg: &MeasureConfig) -> Vec<CurvePoint> {
    sequential_curve(graph, ms, cfg, SampleKind::Ratio)
}

/// Measure the §4 normalised curve `E[L̂(n)/(n·ū)]` at each `n`.
pub fn lhat_curve(graph: &Graph, ns: &[usize], cfg: &MeasureConfig) -> Vec<CurvePoint> {
    sequential_curve(graph, ns, cfg, SampleKind::NormalizedTree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    fn binary_tree(depth: u32) -> Graph {
        let n = (1u32 << (depth + 1)) - 1;
        let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(n as usize, &edges)
    }

    #[test]
    fn single_receiver_ratio_is_one() {
        let g = binary_tree(4);
        let mut m = SourceMeasurer::new(&g, 0);
        let mut rng = source_rng(1, 0);
        for _ in 0..50 {
            let r = m.ratio_sample(1, &mut rng);
            assert!((r - 1.0).abs() < 1e-12, "ratio {r}");
        }
    }

    #[test]
    fn normalized_single_receiver_is_one_on_average() {
        let g = binary_tree(5);
        let mut m = SourceMeasurer::new(&g, 0);
        let mut rng = source_rng(2, 0);
        let mut stats = RunningStats::new();
        for _ in 0..4000 {
            stats.push(m.normalized_tree_sample(1, &mut rng));
        }
        assert!((stats.mean() - 1.0).abs() < 0.05, "mean {}", stats.mean());
    }

    #[test]
    fn ratio_grows_sublinearly() {
        // Multicast efficiency: E[L(m)/ū] must fall below m and above 1.
        let g = binary_tree(6);
        let cfg = MeasureConfig {
            sources: 5,
            receiver_sets: 20,
            seed: 3,
        };
        let pts = ratio_curve(&g, &[2, 8, 32], &cfg);
        for p in &pts {
            let mean = p.stats.mean();
            assert!(mean > 1.0, "m={} mean={mean}", p.x);
            assert!(mean < p.x as f64, "m={} mean={mean}", p.x);
        }
        // Monotone in m.
        assert!(pts[0].stats.mean() < pts[1].stats.mean());
        assert!(pts[1].stats.mean() < pts[2].stats.mean());
    }

    #[test]
    fn lhat_normalised_decreases_with_n() {
        let g = binary_tree(7);
        let cfg = MeasureConfig {
            sources: 4,
            receiver_sets: 20,
            seed: 4,
        };
        let pts = lhat_curve(&g, &[1, 16, 128], &cfg);
        // Per-receiver efficiency improves with group size.
        assert!(pts[0].stats.mean() > pts[1].stats.mean());
        assert!(pts[1].stats.mean() > pts[2].stats.mean());
        // And the n=1 point is exactly 1 in expectation-normalised form.
        assert!((pts[0].stats.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn leaf_pool_measures_leaves_only() {
        let g = binary_tree(3);
        let pool = ReceiverPool::IdRange(7..15);
        let mut m = SourceMeasurer::with_pool(&g, 0, pool);
        assert_eq!(m.pool_size(), 8);
        assert!((m.mean_distance() - 3.0).abs() < 1e-12); // all leaves at depth 3
        let mut rng = source_rng(5, 0);
        // Saturating the leaves gives the full 14-link tree.
        let l = m.tree_sample(10_000, &mut rng);
        assert_eq!(l, 14);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = binary_tree(5);
        let cfg = MeasureConfig {
            sources: 3,
            receiver_sets: 5,
            seed: 42,
        };
        let a = ratio_curve(&g, &[4, 9], &cfg);
        let b = ratio_curve(&g, &[4, 9], &cfg);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.stats.mean(), pb.stats.mean());
            assert_eq!(pa.stats.count(), pb.stats.count());
        }
    }

    #[test]
    fn source_rngs_differ_between_sources() {
        let mut a = source_rng(7, 0);
        let mut b = source_rng(7, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn curve_sample_counts_are_full() {
        let g = binary_tree(4);
        let cfg = MeasureConfig {
            sources: 3,
            receiver_sets: 7,
            seed: 9,
        };
        let pts = lhat_curve(&g, &[2], &cfg);
        assert_eq!(pts[0].stats.count(), 21);
    }

    #[test]
    fn source_plan_partitions_every_index() {
        let g = binary_tree(3); // 15 nodes, so 60 draws repeat heavily
        let cfg = MeasureConfig {
            sources: 60,
            receiver_sets: 1,
            seed: 11,
        };
        let plan = SourcePlan::new(&g, &cfg);
        assert_eq!(plan.total(), 60);
        assert!(plan.distinct() <= 15);
        assert!(plan.distinct() > 1);
        // Every index appears exactly once, under the node it drew.
        let mut seen = vec![false; 60];
        for group in plan.groups() {
            assert!(!group.indices.is_empty());
            for &i in &group.indices {
                assert_eq!(group.node, pick_source(&g, cfg.seed, i));
                assert!(!seen[i], "index {i} duplicated");
                seen[i] = true;
            }
            assert!(group.indices.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(seen.iter().all(|&s| s));
        // Groups appear in order of their first index.
        let firsts: Vec<usize> = plan.groups().iter().map(|g| g.indices[0]).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn engine_runs_one_bfs_per_distinct_source() {
        let g = binary_tree(4);
        let cfg = MeasureConfig {
            sources: 40,
            receiver_sets: 2,
            seed: 13,
        };
        let plan = SourcePlan::new(&g, &cfg);
        let mut engine = MeasureEngine::new(&g);
        for group in plan.groups() {
            let _ = measure_group(&mut engine, group, &[2, 5], &cfg, SampleKind::Ratio);
        }
        assert_eq!(engine.rebinds(), plan.distinct() as u64);
        // Re-binding the last node again is a cache hit.
        let last = plan.groups().last().unwrap().node;
        let before = engine.rebinds();
        let _ = engine.bind(last);
        assert_eq!(engine.rebinds(), before);
    }

    #[test]
    fn dedup_curves_match_the_naive_schedule_bitwise() {
        // Reference: one fresh measurer per source index (the pre-dedup
        // schedule), merged in index order. The engine must reproduce it
        // bit-for-bit on a graph small enough that draws repeat.
        let g = binary_tree(3);
        let cfg = MeasureConfig {
            sources: 25,
            receiver_sets: 6,
            seed: 21,
        };
        let xs = [2usize, 7];
        for kind in [SampleKind::Ratio, SampleKind::NormalizedTree] {
            let mut per_index = Vec::with_capacity(cfg.sources);
            for index in 0..cfg.sources {
                let source = pick_source(&g, cfg.seed, index);
                let mut measurer = SourceMeasurer::new(&g, source);
                let mut rng = source_rng(cfg.seed, index);
                let mut per_x = Vec::with_capacity(xs.len());
                for &x in &xs {
                    let mut stats = RunningStats::new();
                    for _ in 0..cfg.receiver_sets {
                        stats.push(match kind {
                            SampleKind::Ratio => measurer.ratio_sample(x, &mut rng),
                            SampleKind::NormalizedTree => {
                                measurer.normalized_tree_sample(x, &mut rng)
                            }
                        });
                    }
                    per_x.push(stats);
                }
                per_index.push(Some(per_x));
            }
            let naive = merge_indexed(&xs, per_index);
            let dedup = sequential_curve(&g, &xs, &cfg, kind);
            for (a, b) in naive.iter().zip(&dedup) {
                assert_eq!(a.x, b.x);
                assert_eq!(a.stats.count(), b.stats.count());
                assert_eq!(a.stats.mean().to_bits(), b.stats.mean().to_bits());
                assert_eq!(a.stats.variance().to_bits(), b.stats.variance().to_bits());
            }
        }
    }

    #[test]
    fn reuse_matches_a_fresh_measurer() {
        let g = binary_tree(5);
        let mut bfs = Bfs::new(&g);
        let mut reused = SourceMeasurer::new(&g, 0);
        for source in [9u32, 30, 0, 9] {
            reused.reuse(&mut bfs, source);
            let mut fresh = SourceMeasurer::new(&g, source);
            assert_eq!(reused.source(), source);
            assert_eq!(
                reused.mean_distance().to_bits(),
                fresh.mean_distance().to_bits()
            );
            assert_eq!(reused.pool_size(), fresh.pool_size());
            let mut ra = source_rng(17, 3);
            let mut rb = source_rng(17, 3);
            for &m in &[1usize, 4, 12] {
                assert_eq!(
                    reused.ratio_sample(m, &mut ra).to_bits(),
                    fresh.ratio_sample(m, &mut rb).to_bits()
                );
            }
        }
    }

    #[test]
    fn batched_means_match_the_scan_bitwise() {
        // Includes a disconnected component and an isolated node so the
        // reached <= 1 convention is exercised.
        let mut edges: Vec<_> = (0..64u32).map(|i| (i, i + 1)).collect();
        edges.push((66, 67));
        edges.push((67, 68));
        let g = from_edges(70, &edges);
        let nodes: Vec<NodeId> = (0..70).collect();
        let mut batch = BatchBfs::new(&g);
        let means = batched_mean_distances(&mut batch, &nodes);
        assert_eq!(means.len(), 70);
        for (&v, &u) in nodes.iter().zip(&means) {
            let fresh = SourceMeasurer::new(&g, v);
            assert_eq!(fresh.mean_distance().to_bits(), u.to_bits(), "node {v}");
        }
    }

    #[test]
    fn precomputed_groups_match_the_scanning_engine_bitwise() {
        let g = binary_tree(4);
        let cfg = MeasureConfig {
            sources: 20,
            receiver_sets: 5,
            seed: 37,
        };
        let plan = SourcePlan::new(&g, &cfg);
        let nodes: Vec<NodeId> = plan.groups().iter().map(|gr| gr.node).collect();
        let mut batch = BatchBfs::new(&g);
        let means = batched_mean_distances(&mut batch, &nodes);
        let xs = [2usize, 6];
        for kind in [SampleKind::Ratio, SampleKind::NormalizedTree] {
            let mut scan_engine = MeasureEngine::new(&g);
            let mut pre_engine = MeasureEngine::new(&g);
            for (gi, group) in plan.groups().iter().enumerate() {
                let a = measure_group(&mut scan_engine, group, &xs, &cfg, kind);
                let b =
                    measure_group_with_mean(&mut pre_engine, group, &xs, &cfg, kind, Some(means[gi]));
                for ((ia, pa), (ib, pb)) in a.iter().zip(&b) {
                    assert_eq!(ia, ib);
                    for (sa, sb) in pa.iter().zip(pb) {
                        assert_eq!(sa.count(), sb.count());
                        assert_eq!(sa.mean().to_bits(), sb.mean().to_bits());
                        assert_eq!(sa.variance().to_bits(), sb.variance().to_bits());
                    }
                }
            }
            assert_eq!(scan_engine.rebinds(), pre_engine.rebinds());
        }
    }

    #[test]
    fn degenerate_samples_are_skipped_not_nan() {
        // Node 0 is isolated: every receiver is unreachable, unicast = 0,
        // ū = 0. The try-samplers must skip (the old path emitted NaN in
        // release builds), and the RNG must advance as if they hadn't.
        let g = from_edges(4, &[(1, 2), (2, 3)]);
        let mut m = SourceMeasurer::new(&g, 0);
        let mut rng = source_rng(23, 0);
        assert_eq!(m.try_ratio_sample(2, &mut rng), None);
        assert_eq!(m.try_normalized_tree_sample(2, &mut rng), None);
        assert_eq!(m.mean_distance(), 0.0);

        // A fully disconnected graph: every point ends up empty — zero
        // counts, no NaN — rather than poisoning the curve.
        let iso = from_edges(3, &[]);
        let cfg = MeasureConfig {
            sources: 4,
            receiver_sets: 3,
            seed: 5,
        };
        for pts in [
            ratio_curve(&iso, &[1, 2], &cfg),
            lhat_curve(&iso, &[1, 2], &cfg),
        ] {
            for p in &pts {
                assert_eq!(p.stats.count(), 0);
                assert!(!p.stats.mean().is_nan());
            }
        }
    }

    #[test]
    #[should_panic(expected = "no sampled receiver is reachable")]
    fn ratio_sample_panics_deterministically_when_degenerate() {
        let g = from_edges(3, &[(1, 2)]);
        let mut m = SourceMeasurer::new(&g, 0);
        let mut rng = source_rng(29, 0);
        let _ = m.ratio_sample(1, &mut rng);
    }
}
