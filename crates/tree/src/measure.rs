//! The paper's §2 measurement methodology.
//!
//! "For each network we pick a source at random. For each m, we pick
//! `N_rcvr` random sets of m distinct receiver locations chosen uniformly
//! over the network. For each random set … we compute the size of the
//! delivery tree `L(m)`; we also compute the sum of the unicast paths …
//! and average those to determine the average unicast path length `ū(m)`
//! for this sample … For each such sample we compute the ratio … We repeat
//! this for `N_source` random choices of the sources [picked with
//! replacement] … then average this quantity."
//!
//! [`SourceMeasurer`] produces the per-(source, receiver-set) samples;
//! [`ratio_curve`] / [`lhat_curve`] run the full
//! `N_source × N_rcvr` average. These drivers are single-threaded — the
//! experiment crate parallelises by sharding sources and merging
//! [`RunningStats`].

use crate::delivery::DeliverySizer;
use crate::sampling::{self, ReceiverPool};
use crate::stats::RunningStats;
use mcast_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sample-count configuration (paper defaults: 100 × 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasureConfig {
    /// `N_source`: random sources, drawn with replacement.
    pub sources: usize,
    /// `N_rcvr`: receiver sets per (source, group-size) pair.
    pub receiver_sets: usize,
    /// Root seed; every (source index, point) derives from it.
    pub seed: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            sources: 100,
            receiver_sets: 100,
            seed: 0x6d63_6173_7431,
        }
    }
}

/// One point of a measured curve.
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    /// Group size (the paper's `m` or `n`).
    pub x: usize,
    /// Accumulated samples at this size.
    pub stats: RunningStats,
}

/// Per-source measurement engine: one BFS, then cheap repeated sampling.
///
/// Samples are tallied in a plain local counter and flushed to the
/// global `tree.samples` metric on drop, so observability costs one
/// non-atomic increment per sample and one atomic add per source.
pub struct SourceMeasurer {
    sizer: DeliverySizer,
    pool: ReceiverPool,
    mean_dist: f64,
    buf: Vec<NodeId>,
    samples: u64,
}

impl SourceMeasurer {
    /// Measurer whose receivers range over every node except `source`
    /// (the paper's general-network model).
    pub fn new(graph: &Graph, source: NodeId) -> Self {
        let pool = ReceiverPool::AllExceptSource {
            nodes: graph.node_count(),
            source,
        };
        Self::with_pool(graph, source, pool)
    }

    /// Measurer with an explicit receiver pool (e.g. k-ary tree leaves).
    pub fn with_pool(graph: &Graph, source: NodeId, pool: ReceiverPool) -> Self {
        let sizer = DeliverySizer::from_graph(graph, source);
        let mut total = 0u64;
        let mut reachable = 0u64;
        for i in 0..pool.len() {
            if let Some(d) = sizer.distance(pool.site(i)) {
                total += u64::from(d);
                reachable += 1;
            }
        }
        let mean_dist = if reachable == 0 {
            0.0
        } else {
            total as f64 / reachable as f64
        };
        Self {
            sizer,
            pool,
            mean_dist,
            buf: Vec::new(),
            samples: 0,
        }
    }

    /// This source's average unicast path length over the pool (`ū`).
    pub fn mean_distance(&self) -> f64 {
        self.mean_dist
    }

    /// The receiver pool size (`M`).
    pub fn pool_size(&self) -> usize {
        self.pool.len()
    }

    /// §2 sample: `m` distinct receivers; returns `L / ū_sample` where
    /// `ū_sample` is the mean unicast path of *this* receiver set.
    ///
    /// # Panics
    /// Panics if `m` is zero or exceeds the pool.
    pub fn ratio_sample<R: Rng + ?Sized>(&mut self, m: usize, rng: &mut R) -> f64 {
        assert!(m > 0, "need at least one receiver");
        self.samples += 1;
        sampling::distinct(&self.pool, m, rng, &mut self.buf);
        let (tree, unicast) = self.sizer.sample(&self.buf);
        debug_assert!(unicast > 0, "receivers at distance zero?");
        tree as f64 * m as f64 / unicast as f64
    }

    /// §3 sample: `n` with-replacement receivers; returns the raw tree
    /// size `L̂`.
    pub fn tree_sample<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> u64 {
        self.samples += 1;
        sampling::with_replacement(&self.pool, n, rng, &mut self.buf);
        self.sizer.tree_links(&self.buf)
    }

    /// §4 sample: `L̂ / (n · ū)` with `ū` this source's mean unicast path
    /// length — the normalisation of the paper's Fig 6.
    pub fn normalized_tree_sample<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> f64 {
        assert!(n > 0, "need at least one receiver");
        let l = self.tree_sample(n, rng);
        l as f64 / (n as f64 * self.mean_dist)
    }
}

impl Drop for SourceMeasurer {
    fn drop(&mut self) {
        if self.samples > 0 && mcast_obs::enabled() {
            mcast_obs::counter("tree.samples").add(self.samples);
            mcast_obs::counter("tree.sources_measured").add(1);
        }
    }
}

/// Derive the RNG for a given (seed, source index) pair, so shards can be
/// distributed across threads while reproducing the sequential result
/// structure.
pub fn source_rng(seed: u64, source_index: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (source_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Pick the source node for `source_index` (paper: uniform, with
/// replacement).
pub fn pick_source(graph: &Graph, seed: u64, source_index: usize) -> NodeId {
    let mut rng = source_rng(seed ^ 0x5eed, source_index);
    rng.gen_range(0..graph.node_count() as NodeId)
}

/// Measure the §2 ratio curve `E[L(m)/ū(m)]` at each `m`.
pub fn ratio_curve(graph: &Graph, ms: &[usize], cfg: &MeasureConfig) -> Vec<CurvePoint> {
    let mut points: Vec<CurvePoint> = ms
        .iter()
        .map(|&m| CurvePoint {
            x: m,
            stats: RunningStats::new(),
        })
        .collect();
    for s in 0..cfg.sources {
        let source = pick_source(graph, cfg.seed, s);
        let mut measurer = SourceMeasurer::new(graph, source);
        let mut rng = source_rng(cfg.seed, s);
        for p in &mut points {
            for _ in 0..cfg.receiver_sets {
                p.stats.push(measurer.ratio_sample(p.x, &mut rng));
            }
        }
    }
    points
}

/// Measure the §4 normalised curve `E[L̂(n)/(n·ū)]` at each `n`.
pub fn lhat_curve(graph: &Graph, ns: &[usize], cfg: &MeasureConfig) -> Vec<CurvePoint> {
    let mut points: Vec<CurvePoint> = ns
        .iter()
        .map(|&n| CurvePoint {
            x: n,
            stats: RunningStats::new(),
        })
        .collect();
    for s in 0..cfg.sources {
        let source = pick_source(graph, cfg.seed, s);
        let mut measurer = SourceMeasurer::new(graph, source);
        let mut rng = source_rng(cfg.seed, s);
        for p in &mut points {
            for _ in 0..cfg.receiver_sets {
                p.stats.push(measurer.normalized_tree_sample(p.x, &mut rng));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    fn binary_tree(depth: u32) -> Graph {
        let n = (1u32 << (depth + 1)) - 1;
        let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(n as usize, &edges)
    }

    #[test]
    fn single_receiver_ratio_is_one() {
        let g = binary_tree(4);
        let mut m = SourceMeasurer::new(&g, 0);
        let mut rng = source_rng(1, 0);
        for _ in 0..50 {
            let r = m.ratio_sample(1, &mut rng);
            assert!((r - 1.0).abs() < 1e-12, "ratio {r}");
        }
    }

    #[test]
    fn normalized_single_receiver_is_one_on_average() {
        let g = binary_tree(5);
        let mut m = SourceMeasurer::new(&g, 0);
        let mut rng = source_rng(2, 0);
        let mut stats = RunningStats::new();
        for _ in 0..4000 {
            stats.push(m.normalized_tree_sample(1, &mut rng));
        }
        assert!((stats.mean() - 1.0).abs() < 0.05, "mean {}", stats.mean());
    }

    #[test]
    fn ratio_grows_sublinearly() {
        // Multicast efficiency: E[L(m)/ū] must fall below m and above 1.
        let g = binary_tree(6);
        let cfg = MeasureConfig {
            sources: 5,
            receiver_sets: 20,
            seed: 3,
        };
        let pts = ratio_curve(&g, &[2, 8, 32], &cfg);
        for p in &pts {
            let mean = p.stats.mean();
            assert!(mean > 1.0, "m={} mean={mean}", p.x);
            assert!(mean < p.x as f64, "m={} mean={mean}", p.x);
        }
        // Monotone in m.
        assert!(pts[0].stats.mean() < pts[1].stats.mean());
        assert!(pts[1].stats.mean() < pts[2].stats.mean());
    }

    #[test]
    fn lhat_normalised_decreases_with_n() {
        let g = binary_tree(7);
        let cfg = MeasureConfig {
            sources: 4,
            receiver_sets: 20,
            seed: 4,
        };
        let pts = lhat_curve(&g, &[1, 16, 128], &cfg);
        // Per-receiver efficiency improves with group size.
        assert!(pts[0].stats.mean() > pts[1].stats.mean());
        assert!(pts[1].stats.mean() > pts[2].stats.mean());
        // And the n=1 point is exactly 1 in expectation-normalised form.
        assert!((pts[0].stats.mean() - 1.0).abs() < 0.1);
    }

    #[test]
    fn leaf_pool_measures_leaves_only() {
        let g = binary_tree(3);
        let pool = ReceiverPool::IdRange(7..15);
        let mut m = SourceMeasurer::with_pool(&g, 0, pool);
        assert_eq!(m.pool_size(), 8);
        assert!((m.mean_distance() - 3.0).abs() < 1e-12); // all leaves at depth 3
        let mut rng = source_rng(5, 0);
        // Saturating the leaves gives the full 14-link tree.
        let l = m.tree_sample(10_000, &mut rng);
        assert_eq!(l, 14);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = binary_tree(5);
        let cfg = MeasureConfig {
            sources: 3,
            receiver_sets: 5,
            seed: 42,
        };
        let a = ratio_curve(&g, &[4, 9], &cfg);
        let b = ratio_curve(&g, &[4, 9], &cfg);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.stats.mean(), pb.stats.mean());
            assert_eq!(pa.stats.count(), pb.stats.count());
        }
    }

    #[test]
    fn source_rngs_differ_between_sources() {
        let mut a = source_rng(7, 0);
        let mut b = source_rng(7, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn curve_sample_counts_are_full() {
        let g = binary_tree(4);
        let cfg = MeasureConfig {
            sources: 3,
            receiver_sets: 7,
            seed: 9,
        };
        let pts = lhat_curve(&g, &[2], &cfg);
        assert_eq!(pts[0].stats.count(), 21);
    }
}
