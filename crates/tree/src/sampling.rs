//! Receiver-site sampling.
//!
//! The paper uses two receiver models, and the distinction matters (its
//! Eq 1 converts between them):
//!
//! * §2 empirics: `m` **distinct** sites "chosen uniformly over the
//!   network" (excluding the source);
//! * §3 theory: `n` draws **with replacement** ("not necessarily unique"),
//!   either over the `M = k^D` leaves or over every non-root site (§3.4).
//!
//! [`ReceiverPool`] abstracts over which sites are eligible; samplers fill
//! a reusable buffer so inner measurement loops stay allocation-free.

use mcast_topology::NodeId;
use rand::Rng;
use std::collections::HashSet;
use std::ops::Range;

/// The set of sites receivers may occupy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReceiverPool {
    /// Every node of an `n`-node graph except `source` (§2's model).
    AllExceptSource {
        /// Total node count.
        nodes: usize,
        /// The excluded source.
        source: NodeId,
    },
    /// A contiguous id range (k-ary tree leaves are laid out contiguously).
    IdRange(Range<NodeId>),
    /// An explicit site list (used by structured/clustered placements).
    Explicit(Vec<NodeId>),
}

impl ReceiverPool {
    /// Number of eligible sites (the paper's `M`).
    pub fn len(&self) -> usize {
        match self {
            Self::AllExceptSource { nodes, source } => {
                nodes - usize::from((*source as usize) < *nodes)
            }
            Self::IdRange(r) => r.len(),
            Self::Explicit(v) => v.len(),
        }
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th eligible site, `i < len()`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn site(&self, i: usize) -> NodeId {
        match self {
            Self::AllExceptSource { nodes, source } => {
                assert!(i < self.len(), "site index {i} out of range");
                let _ = nodes;
                if (i as NodeId) < *source {
                    i as NodeId
                } else {
                    i as NodeId + 1
                }
            }
            Self::IdRange(r) => {
                assert!(i < r.len());
                r.start + i as NodeId
            }
            Self::Explicit(v) => v[i],
        }
    }

    /// One uniform site.
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        self.site(rng.gen_range(0..self.len()))
    }
}

/// Fill `out` with `n` sites drawn uniformly **with replacement** (§3's
/// receiver model).
pub fn with_replacement<R: Rng + ?Sized>(
    pool: &ReceiverPool,
    n: usize,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    assert!(!pool.is_empty(), "cannot sample from an empty pool");
    out.clear();
    out.extend((0..n).map(|_| pool.sample_one(rng)));
}

/// Fill `out` with `m` **distinct** sites drawn uniformly (§2's receiver
/// model). Uses Floyd's algorithm, O(m) expected, no pool-sized
/// allocation.
///
/// Allocates a fresh dedup set per call; measurement inner loops should
/// use [`distinct_with`] with a persistent scratch set, or the
/// hash-free [`distinct_marked`], instead.
///
/// # Panics
/// Panics if `m` exceeds the pool size.
pub fn distinct<R: Rng + ?Sized>(
    pool: &ReceiverPool,
    m: usize,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    let mut chosen: HashSet<usize> = HashSet::with_capacity(m * 2);
    distinct_with(pool, m, rng, out, &mut chosen);
}

/// [`distinct`] with a caller-owned scratch set, so steady-state sampling
/// performs no allocation at all: `chosen` is cleared (capacity kept) and
/// reused, and `out` is refilled in place. Draws the exact same RNG
/// stream as [`distinct`].
///
/// # Panics
/// Panics if `m` exceeds the pool size.
pub fn distinct_with<R: Rng + ?Sized>(
    pool: &ReceiverPool,
    m: usize,
    rng: &mut R,
    out: &mut Vec<NodeId>,
    chosen: &mut HashSet<usize>,
) {
    let len = pool.len();
    assert!(m <= len, "cannot draw {m} distinct sites from {len}");
    out.clear();
    chosen.clear();
    // Floyd's sampling: for j in len-m..len, pick t in [0, j]; insert t or j.
    for j in (len - m)..len {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.insert(t) {
            t
        } else {
            chosen.insert(j);
            j
        };
        out.push(pool.site(pick));
    }
}

/// Epoch-marked membership scratch for Floyd sampling: `O(1)` insert with
/// no hashing and no steady-state allocation. A `u32` stamp per pool slot
/// marks membership in the *current* draw; starting a new draw bumps the
/// epoch instead of clearing, so a draw costs `O(m)` regardless of pool
/// size once the mark vector has grown to the pool's high-water mark.
///
/// This is the measurement hot path's replacement for the `HashSet`
/// scratch: SipHash on every Floyd insert was the single largest
/// per-sample cost on small group sizes.
#[derive(Clone, Debug, Default)]
pub struct DedupMarks {
    marks: Vec<u32>,
    epoch: u32,
}

impl DedupMarks {
    /// Empty scratch; the mark vector grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new draw over a pool of `len` slots.
    fn begin(&mut self, len: usize) {
        if self.marks.len() < len {
            self.marks.resize(len, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One epoch wrap every 2^32 draws: re-zero and restart.
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Mark slot `i`; returns whether it was newly inserted this draw.
    fn insert(&mut self, i: usize) -> bool {
        if self.marks[i] == self.epoch {
            false
        } else {
            self.marks[i] = self.epoch;
            true
        }
    }
}

/// [`distinct`] with an epoch-marked scratch instead of a hash set: the
/// same Floyd algorithm consuming the exact same RNG stream and choosing
/// the exact same sites (membership semantics are identical), but each
/// insert is one array compare instead of a SipHash probe. This is what
/// [`crate::measure::SourceMeasurer`] runs per sample.
///
/// # Panics
/// Panics if `m` exceeds the pool size.
pub fn distinct_marked<R: Rng + ?Sized>(
    pool: &ReceiverPool,
    m: usize,
    rng: &mut R,
    out: &mut Vec<NodeId>,
    dedup: &mut DedupMarks,
) {
    let len = pool.len();
    assert!(m <= len, "cannot draw {m} distinct sites from {len}");
    out.clear();
    dedup.begin(len);
    // Floyd's sampling: for j in len-m..len, pick t in [0, j]; insert t or j.
    for j in (len - m)..len {
        let t = rng.gen_range(0..=j);
        let pick = if dedup.insert(t) {
            t
        } else {
            dedup.insert(j);
            j
        };
        out.push(pool.site(pick));
    }
}

/// The expected number of **distinct** sites after `n` with-replacement
/// draws from `m_total` sites: the paper's Eq 1 occupancy relation,
/// `m̄ = M·(1 − (1 − 1/M)^n)`.
///
/// Total over the whole domain: the degenerate corners are pinned to
/// their combinatorial values rather than left to floating point.
/// `M = 1` in particular would otherwise evaluate `n · ln(0)`, which is
/// `0 · −∞ = NaN` for `n = 0` (and `−∞` noise for `n > 0`).
pub fn expected_distinct(m_total: usize, n: usize) -> f64 {
    if m_total == 0 || n == 0 {
        // No sites, or no draws: nothing can be occupied.
        return 0.0;
    }
    if m_total == 1 {
        // Every draw lands on the single site.
        return 1.0;
    }
    let m = m_total as f64;
    m * (1.0 - ((n as f64) * (-1.0 / m).ln_1p()).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_except_source_skips_the_source() {
        let pool = ReceiverPool::AllExceptSource {
            nodes: 5,
            source: 2,
        };
        assert_eq!(pool.len(), 4);
        let sites: Vec<NodeId> = (0..4).map(|i| pool.site(i)).collect();
        assert_eq!(sites, vec![0, 1, 3, 4]);
    }

    #[test]
    fn source_outside_range_is_not_subtracted() {
        let pool = ReceiverPool::AllExceptSource {
            nodes: 4,
            source: 9,
        };
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.site(3), 3);
    }

    #[test]
    fn id_range_and_explicit_pools() {
        let r = ReceiverPool::IdRange(10..14);
        assert_eq!(r.len(), 4);
        assert_eq!(r.site(0), 10);
        assert_eq!(r.site(3), 13);
        let e = ReceiverPool::Explicit(vec![5, 9, 2]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.site(1), 9);
    }

    #[test]
    fn with_replacement_hits_only_pool_sites() {
        let pool = ReceiverPool::AllExceptSource {
            nodes: 10,
            source: 3,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        with_replacement(&pool, 500, &mut rng, &mut out);
        assert_eq!(out.len(), 500);
        assert!(out.iter().all(|&v| v < 10 && v != 3));
        // With 500 draws over 9 sites, every site appears.
        let unique: HashSet<_> = out.iter().collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn distinct_draws_are_distinct_and_in_pool() {
        let pool = ReceiverPool::IdRange(100..160);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        for m in [0usize, 1, 7, 59, 60] {
            distinct(&pool, m, &mut rng, &mut out);
            assert_eq!(out.len(), m);
            let unique: HashSet<_> = out.iter().collect();
            assert_eq!(unique.len(), m, "m={m}");
            assert!(out.iter().all(|&v| (100..160).contains(&v)));
        }
    }

    #[test]
    fn distinct_with_matches_distinct_and_reuses_scratch() {
        let pool = ReceiverPool::IdRange(0..80);
        let mut scratch = HashSet::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for m in [1usize, 5, 40, 80] {
            // Same seed → same RNG stream → identical draws.
            let mut r1 = SmallRng::seed_from_u64(77);
            let mut r2 = SmallRng::seed_from_u64(77);
            distinct(&pool, m, &mut r1, &mut a);
            distinct_with(&pool, m, &mut r2, &mut b, &mut scratch);
            assert_eq!(a, b, "m={m}");
        }
    }

    #[test]
    fn distinct_marked_matches_distinct_exactly() {
        // The epoch-marked fast path must choose the same sites from the
        // same RNG stream as the hash-set reference, across repeated
        // draws (epoch bumps) and across pools of different sizes
        // (mark-vector growth).
        let mut dedup = DedupMarks::new();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (round, pool) in [
            ReceiverPool::IdRange(0..80),
            ReceiverPool::Explicit(vec![4, 8, 15, 16, 23, 42]),
            ReceiverPool::IdRange(100..160),
            ReceiverPool::AllExceptSource {
                nodes: 30,
                source: 7,
            },
        ]
        .into_iter()
        .enumerate()
        {
            for m in [1usize, 2, 5] {
                let m = m.min(pool.len());
                let mut r1 = SmallRng::seed_from_u64(round as u64 * 31 + m as u64);
                let mut r2 = SmallRng::seed_from_u64(round as u64 * 31 + m as u64);
                distinct(&pool, m, &mut r1, &mut a);
                distinct_marked(&pool, m, &mut r2, &mut b, &mut dedup);
                assert_eq!(a, b, "round={round} m={m}");
            }
            // Full-pool draws stress the collision branch hardest.
            let full = pool.len();
            let mut r1 = SmallRng::seed_from_u64(round as u64 + 1000);
            let mut r2 = SmallRng::seed_from_u64(round as u64 + 1000);
            distinct(&pool, full, &mut r1, &mut a);
            distinct_marked(&pool, full, &mut r2, &mut b, &mut dedup);
            assert_eq!(a, b, "round={round} full pool");
        }
    }

    #[test]
    fn dedup_marks_epoch_wrap_resets_cleanly() {
        // Force the epoch counter through its wrap: membership from the
        // pre-wrap draw must not leak into the post-wrap draw.
        let mut dedup = DedupMarks::new();
        dedup.begin(4);
        assert!(dedup.insert(2));
        assert!(!dedup.insert(2));
        dedup.epoch = u32::MAX;
        dedup.marks.fill(u32::MAX); // every slot "in" the pre-wrap draw
        dedup.begin(4);
        assert_eq!(dedup.epoch, 1, "wrap restarts the epoch");
        assert!(dedup.insert(2), "pre-wrap membership must not leak");
        assert!(!dedup.insert(2));
    }

    #[test]
    fn distinct_full_pool_is_a_permutation() {
        let pool = ReceiverPool::Explicit(vec![4, 8, 15, 16, 23, 42]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        distinct(&pool, 6, &mut rng, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![4, 8, 15, 16, 23, 42]);
    }

    #[test]
    #[should_panic]
    fn distinct_overdraw_panics() {
        let pool = ReceiverPool::IdRange(0..3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut out = Vec::new();
        distinct(&pool, 4, &mut rng, &mut out);
    }

    #[test]
    fn distinct_is_roughly_uniform() {
        // Chi-squared-ish sanity: each of 10 sites should appear in a
        // size-5 sample about half the time.
        let pool = ReceiverPool::IdRange(0..10);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        let mut counts = [0u32; 10];
        let trials = 4000;
        for _ in 0..trials {
            distinct(&pool, 5, &mut rng, &mut out);
            for &v in &out {
                counts[v as usize] += 1;
            }
        }
        for (site, &c) in counts.iter().enumerate() {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.05, "site {site}: {f}");
        }
    }

    #[test]
    fn expected_distinct_degenerate_corners_are_exact() {
        // Regression: M = 1, n = 0 used to evaluate 0 · ln(0) = NaN.
        assert_eq!(expected_distinct(1, 0), 0.0);
        // M = 1 with any draws occupies the single site exactly.
        assert_eq!(expected_distinct(1, 1), 1.0);
        assert_eq!(expected_distinct(1, 1_000_000), 1.0);
        // Zero sites can never be occupied, draws or not.
        assert_eq!(expected_distinct(0, 0), 0.0);
        assert_eq!(expected_distinct(0, 7), 0.0);
        // The whole small-domain corner is finite and within [0, M].
        for m_total in 0..=4usize {
            for n in 0..=4usize {
                let e = expected_distinct(m_total, n);
                assert!(e.is_finite(), "M={m_total} n={n}: {e}");
                assert!(
                    (0.0..=m_total as f64).contains(&e),
                    "M={m_total} n={n}: {e}"
                );
                // Eq 1 never predicts more occupied sites than draws.
                assert!(e <= n as f64 + 1e-12, "M={m_total} n={n}: {e}");
            }
        }
    }

    #[test]
    fn expected_distinct_limits() {
        assert_eq!(expected_distinct(0, 5), 0.0);
        assert_eq!(expected_distinct(100, 0), 0.0);
        // One draw: exactly one distinct site.
        assert!((expected_distinct(100, 1) - 1.0).abs() < 1e-12);
        // Many draws saturate at M.
        assert!((expected_distinct(50, 100_000) - 50.0).abs() < 1e-6);
        // Monotone in n.
        let a = expected_distinct(1000, 10);
        let b = expected_distinct(1000, 20);
        assert!(b > a);
        // Matches a direct Monte-Carlo estimate.
        let mut rng = SmallRng::seed_from_u64(6);
        let pool = ReceiverPool::IdRange(0..200);
        let mut out = Vec::new();
        let mut mean = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            with_replacement(&pool, 150, &mut rng, &mut out);
            let unique: HashSet<_> = out.iter().collect();
            mean += unique.len() as f64;
        }
        mean /= trials as f64;
        let predicted = expected_distinct(200, 150);
        assert!((mean - predicted).abs() < 1.0, "{mean} vs {predicted}");
    }
}
