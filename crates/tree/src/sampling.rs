//! Receiver-site sampling.
//!
//! The paper uses two receiver models, and the distinction matters (its
//! Eq 1 converts between them):
//!
//! * §2 empirics: `m` **distinct** sites "chosen uniformly over the
//!   network" (excluding the source);
//! * §3 theory: `n` draws **with replacement** ("not necessarily unique"),
//!   either over the `M = k^D` leaves or over every non-root site (§3.4).
//!
//! [`ReceiverPool`] abstracts over which sites are eligible; samplers fill
//! a reusable buffer so inner measurement loops stay allocation-free.

use mcast_topology::NodeId;
use rand::Rng;
use std::collections::HashSet;
use std::ops::Range;

/// The set of sites receivers may occupy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReceiverPool {
    /// Every node of an `n`-node graph except `source` (§2's model).
    AllExceptSource {
        /// Total node count.
        nodes: usize,
        /// The excluded source.
        source: NodeId,
    },
    /// A contiguous id range (k-ary tree leaves are laid out contiguously).
    IdRange(Range<NodeId>),
    /// An explicit site list (used by structured/clustered placements).
    Explicit(Vec<NodeId>),
}

impl ReceiverPool {
    /// Number of eligible sites (the paper's `M`).
    pub fn len(&self) -> usize {
        match self {
            Self::AllExceptSource { nodes, source } => {
                nodes - usize::from((*source as usize) < *nodes)
            }
            Self::IdRange(r) => r.len(),
            Self::Explicit(v) => v.len(),
        }
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th eligible site, `i < len()`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn site(&self, i: usize) -> NodeId {
        match self {
            Self::AllExceptSource { nodes, source } => {
                assert!(i < self.len(), "site index {i} out of range");
                let _ = nodes;
                if (i as NodeId) < *source {
                    i as NodeId
                } else {
                    i as NodeId + 1
                }
            }
            Self::IdRange(r) => {
                assert!(i < r.len());
                r.start + i as NodeId
            }
            Self::Explicit(v) => v[i],
        }
    }

    /// One uniform site.
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        self.site(rng.gen_range(0..self.len()))
    }
}

/// Fill `out` with `n` sites drawn uniformly **with replacement** (§3's
/// receiver model).
pub fn with_replacement<R: Rng + ?Sized>(
    pool: &ReceiverPool,
    n: usize,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    assert!(!pool.is_empty(), "cannot sample from an empty pool");
    out.clear();
    out.extend((0..n).map(|_| pool.sample_one(rng)));
}

/// Fill `out` with `m` **distinct** sites drawn uniformly (§2's receiver
/// model). Uses Floyd's algorithm, O(m) expected, no pool-sized
/// allocation.
///
/// # Panics
/// Panics if `m` exceeds the pool size.
pub fn distinct<R: Rng + ?Sized>(
    pool: &ReceiverPool,
    m: usize,
    rng: &mut R,
    out: &mut Vec<NodeId>,
) {
    let len = pool.len();
    assert!(m <= len, "cannot draw {m} distinct sites from {len}");
    out.clear();
    // Floyd's sampling: for j in len-m..len, pick t in [0, j]; insert t or j.
    let mut chosen: HashSet<usize> = HashSet::with_capacity(m * 2);
    for j in (len - m)..len {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.insert(t) {
            t
        } else {
            chosen.insert(j);
            j
        };
        out.push(pool.site(pick));
    }
}

/// The expected number of **distinct** sites after `n` with-replacement
/// draws from `m_total` sites: the paper's Eq 1 occupancy relation,
/// `m̄ = M·(1 − (1 − 1/M)^n)`.
pub fn expected_distinct(m_total: usize, n: usize) -> f64 {
    if m_total == 0 {
        return 0.0;
    }
    let m = m_total as f64;
    m * (1.0 - ((n as f64) * (-1.0 / m).ln_1p()).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_except_source_skips_the_source() {
        let pool = ReceiverPool::AllExceptSource {
            nodes: 5,
            source: 2,
        };
        assert_eq!(pool.len(), 4);
        let sites: Vec<NodeId> = (0..4).map(|i| pool.site(i)).collect();
        assert_eq!(sites, vec![0, 1, 3, 4]);
    }

    #[test]
    fn source_outside_range_is_not_subtracted() {
        let pool = ReceiverPool::AllExceptSource {
            nodes: 4,
            source: 9,
        };
        assert_eq!(pool.len(), 4);
        assert_eq!(pool.site(3), 3);
    }

    #[test]
    fn id_range_and_explicit_pools() {
        let r = ReceiverPool::IdRange(10..14);
        assert_eq!(r.len(), 4);
        assert_eq!(r.site(0), 10);
        assert_eq!(r.site(3), 13);
        let e = ReceiverPool::Explicit(vec![5, 9, 2]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.site(1), 9);
    }

    #[test]
    fn with_replacement_hits_only_pool_sites() {
        let pool = ReceiverPool::AllExceptSource {
            nodes: 10,
            source: 3,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        with_replacement(&pool, 500, &mut rng, &mut out);
        assert_eq!(out.len(), 500);
        assert!(out.iter().all(|&v| v < 10 && v != 3));
        // With 500 draws over 9 sites, every site appears.
        let unique: HashSet<_> = out.iter().collect();
        assert_eq!(unique.len(), 9);
    }

    #[test]
    fn distinct_draws_are_distinct_and_in_pool() {
        let pool = ReceiverPool::IdRange(100..160);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        for m in [0usize, 1, 7, 59, 60] {
            distinct(&pool, m, &mut rng, &mut out);
            assert_eq!(out.len(), m);
            let unique: HashSet<_> = out.iter().collect();
            assert_eq!(unique.len(), m, "m={m}");
            assert!(out.iter().all(|&v| (100..160).contains(&v)));
        }
    }

    #[test]
    fn distinct_full_pool_is_a_permutation() {
        let pool = ReceiverPool::Explicit(vec![4, 8, 15, 16, 23, 42]);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut out = Vec::new();
        distinct(&pool, 6, &mut rng, &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![4, 8, 15, 16, 23, 42]);
    }

    #[test]
    #[should_panic]
    fn distinct_overdraw_panics() {
        let pool = ReceiverPool::IdRange(0..3);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut out = Vec::new();
        distinct(&pool, 4, &mut rng, &mut out);
    }

    #[test]
    fn distinct_is_roughly_uniform() {
        // Chi-squared-ish sanity: each of 10 sites should appear in a
        // size-5 sample about half the time.
        let pool = ReceiverPool::IdRange(0..10);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        let mut counts = [0u32; 10];
        let trials = 4000;
        for _ in 0..trials {
            distinct(&pool, 5, &mut rng, &mut out);
            for &v in &out {
                counts[v as usize] += 1;
            }
        }
        for (site, &c) in counts.iter().enumerate() {
            let f = c as f64 / trials as f64;
            assert!((f - 0.5).abs() < 0.05, "site {site}: {f}");
        }
    }

    #[test]
    fn expected_distinct_limits() {
        assert_eq!(expected_distinct(0, 5), 0.0);
        assert_eq!(expected_distinct(100, 0), 0.0);
        // One draw: exactly one distinct site.
        assert!((expected_distinct(100, 1) - 1.0).abs() < 1e-12);
        // Many draws saturate at M.
        assert!((expected_distinct(50, 100_000) - 50.0).abs() < 1e-6);
        // Monotone in n.
        let a = expected_distinct(1000, 10);
        let b = expected_distinct(1000, 20);
        assert!(b > a);
        // Matches a direct Monte-Carlo estimate.
        let mut rng = SmallRng::seed_from_u64(6);
        let pool = ReceiverPool::IdRange(0..200);
        let mut out = Vec::new();
        let mut mean = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            with_replacement(&pool, 150, &mut rng, &mut out);
            let unique: HashSet<_> = out.iter().collect();
            mean += unique.len() as f64;
        }
        mean /= trials as f64;
        let predicted = expected_distinct(200, 150);
        assert!((mean - predicted).abs() < 1.0, "{mean} vs {predicted}");
    }
}
