//! Receiver affinity on general graphs.
//!
//! §5 defines the weighting `W_α(β) ∝ exp(−β·d̄(α))` for *any* network —
//! "for convenience, we measure the distance d between two receivers in
//! terms of the number of hops in the shortest path between them" — but
//! the paper only simulates k-ary trees (§5.4). This module lifts the
//! Metropolis sampler to arbitrary connected graphs using a precomputed
//! all-pairs distance matrix, so the affinity question can be asked of
//! ARPA, r100, or any other suite member (see the `fig9` experiment's
//! general-graph companion).
//!
//! Memory is O(V²) u16 distances — fine for the ≤ ~5000-node graphs this
//! is meant for; the tree-specialised [`crate::affinity`] sampler stays
//! the right tool for the paper's big binary trees.

use crate::delivery::DeliverySizer;
use crate::stats::RunningStats;
use mcast_topology::bfs::Bfs;
use mcast_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All-pairs hop distances, row-major `u16`.
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u16>,
}

impl DistanceMatrix {
    /// Compute by BFS from every node. `O(V·(V+E))` time, `O(V²)` space.
    ///
    /// # Panics
    /// Panics if the graph is disconnected (pairwise distances would be
    /// undefined) or a distance exceeds `u16::MAX`.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut d = vec![0u16; n * n];
        let mut bfs = Bfs::new(graph);
        for v in 0..n as NodeId {
            bfs.run_scratch(v);
            assert_eq!(
                bfs.scratch_order().len(),
                n,
                "distance matrix requires a connected graph"
            );
            let row = &mut d[v as usize * n..(v as usize + 1) * n];
            for (u, slot) in row.iter_mut().enumerate() {
                let dist = bfs.scratch_distances()[u];
                assert!(dist <= u16::MAX as u32, "distance overflow");
                *slot = dist as u16;
            }
        }
        Self { n, d }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Hop distance between `a` and `b`.
    #[inline]
    pub fn get(&self, a: NodeId, b: NodeId) -> u32 {
        u32::from(self.d[a as usize * self.n + b as usize])
    }
}

/// Metropolis sampler over receiver configurations on a general graph.
pub struct GraphAffinitySampler<'g> {
    distances: &'g DistanceMatrix,
    sizer: DeliverySizer,
    source: NodeId,
    beta: f64,
    receivers: Vec<NodeId>,
    /// Σ distances from receiver i to all other receivers.
    row_sums: Vec<i64>,
    pair_sum: i64,
    rng: StdRng,
}

impl<'g> GraphAffinitySampler<'g> {
    /// Start a chain of `n` receivers placed uniformly over all non-source
    /// nodes.
    ///
    /// # Panics
    /// Panics if `n == 0` or the graph has fewer than two nodes.
    pub fn new(
        graph: &Graph,
        distances: &'g DistanceMatrix,
        source: NodeId,
        n: usize,
        beta: f64,
        seed: u64,
    ) -> Self {
        assert!(n > 0, "need at least one receiver");
        assert!(graph.node_count() >= 2, "need at least two nodes");
        assert_eq!(graph.node_count(), distances.len(), "matrix mismatch");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_nodes = graph.node_count() as NodeId;
        let receivers: Vec<NodeId> = (0..n)
            .map(|_| loop {
                let v = rng.gen_range(0..n_nodes);
                if v != source {
                    break v;
                }
            })
            .collect();
        let mut row_sums = vec![0i64; n];
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    row_sums[i] += i64::from(distances.get(receivers[i], receivers[j]));
                }
            }
        }
        let pair_sum = row_sums.iter().sum::<i64>() / 2;
        Self {
            distances,
            sizer: DeliverySizer::from_graph(graph, source),
            source,
            beta,
            receivers,
            row_sums,
            pair_sum,
            rng,
        }
    }

    /// Current receiver placement.
    pub fn receivers(&self) -> &[NodeId] {
        &self.receivers
    }

    /// Current mean pairwise distance (0 for one receiver).
    pub fn mean_pairwise_distance(&self) -> f64 {
        let n = self.receivers.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        self.pair_sum as f64 / (n * (n - 1.0) / 2.0)
    }

    /// Current delivery-tree size (recomputed; `O(tree links)`).
    pub fn tree_links(&mut self) -> u64 {
        self.sizer.tree_links(&self.receivers)
    }

    /// Propose and maybe accept one relocation; returns acceptance.
    pub fn step(&mut self) -> bool {
        let n = self.receivers.len();
        let idx = self.rng.gen_range(0..n);
        let old = self.receivers[idx];
        let new = loop {
            let v = self.rng.gen_range(0..self.distances.len() as NodeId);
            if v != self.source {
                break v;
            }
        };
        if new == old {
            return true;
        }
        // New row sum for idx if moved.
        let mut new_row = 0i64;
        for (j, &r) in self.receivers.iter().enumerate() {
            if j != idx {
                new_row += i64::from(self.distances.get(new, r));
            }
        }
        let dsum = new_row - self.row_sums[idx];
        let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
        let delta_dbar = if pairs > 0.0 {
            dsum as f64 / pairs
        } else {
            0.0
        };
        let accept = self.beta * delta_dbar <= 0.0
            || self.rng.gen::<f64>() < (-self.beta * delta_dbar).exp();
        if accept {
            // Update all row sums for the swap old → new.
            for (j, &r) in self.receivers.iter().enumerate() {
                if j != idx {
                    self.row_sums[j] += i64::from(self.distances.get(new, r))
                        - i64::from(self.distances.get(old, r));
                }
            }
            self.row_sums[idx] = new_row;
            self.pair_sum += dsum;
            self.receivers[idx] = new;
        }
        accept
    }

    /// One sweep (`n` proposals); returns the acceptance fraction.
    pub fn sweep(&mut self) -> f64 {
        let n = self.receivers.len();
        let mut accepted = 0;
        for _ in 0..n {
            if self.step() {
                accepted += 1;
            }
        }
        accepted as f64 / n as f64
    }
}

/// Estimate `E_β[L̂(n)]` on a general graph (burn-in, then one `L`
/// observation per sweep).
#[allow(clippy::too_many_arguments)]
pub fn mean_tree_size_general(
    graph: &Graph,
    distances: &DistanceMatrix,
    source: NodeId,
    n: usize,
    beta: f64,
    burn_in_sweeps: usize,
    sample_sweeps: usize,
    seed: u64,
) -> RunningStats {
    let mut sampler = GraphAffinitySampler::new(graph, distances, source, n, beta, seed);
    for _ in 0..burn_in_sweeps {
        sampler.sweep();
    }
    let mut stats = RunningStats::new();
    for _ in 0..sample_sweeps {
        sampler.sweep();
        stats.push(sampler.tree_links() as f64);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    fn ring_with_chords() -> Graph {
        let mut edges: Vec<(NodeId, NodeId)> = (0..12).map(|i| (i, (i + 1) % 12)).collect();
        edges.push((0, 6));
        edges.push((3, 9));
        from_edges(12, &edges)
    }

    fn binary_tree(depth: u32) -> Graph {
        let n = (1u32 << (depth + 1)) - 1;
        let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(n as usize, &edges)
    }

    #[test]
    fn distance_matrix_matches_bfs() {
        let g = ring_with_chords();
        let m = DistanceMatrix::new(&g);
        let bfs = Bfs::new(&g).run(4);
        for v in g.nodes() {
            assert_eq!(m.get(4, v), bfs.distance(v).unwrap());
            assert_eq!(m.get(v, 4), bfs.distance(v).unwrap(), "symmetry");
        }
        assert_eq!(m.get(7, 7), 0);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let g = from_edges(4, &[(0, 1), (2, 3)]);
        DistanceMatrix::new(&g);
    }

    #[test]
    fn invariants_survive_many_steps() {
        let g = ring_with_chords();
        let m = DistanceMatrix::new(&g);
        let mut s = GraphAffinitySampler::new(&g, &m, 0, 6, 1.0, 9);
        for step in 0..200 {
            s.step();
            // Brute-force pair sum.
            let rs = s.receivers();
            let mut brute = 0i64;
            for i in 0..rs.len() {
                for j in (i + 1)..rs.len() {
                    brute += i64::from(m.get(rs[i], rs[j]));
                }
            }
            assert_eq!(s.pair_sum, brute, "step {step}");
        }
    }

    #[test]
    fn matches_tree_sampler_on_trees() {
        // On a tree the general sampler and the subtree-count sampler
        // target the same distribution: compare E[L] at β = 1.
        let g = binary_tree(5);
        let m = DistanceMatrix::new(&g);
        let general = mean_tree_size_general(&g, &m, 0, 15, 1.0, 150, 400, 21);

        let rooted = crate::affinity::RootedTree::from_graph(&g, 0);
        let tree = crate::affinity::mean_tree_size(
            &rooted,
            15,
            &crate::affinity::AffinityConfig {
                beta: 1.0,
                burn_in_sweeps: 150,
                sample_sweeps: 400,
                seed: 22,
            },
        );
        let diff = (general.mean() - tree.mean()).abs();
        let tol = 4.0 * (general.std_err() + tree.std_err()) + 1.0;
        assert!(
            diff < tol,
            "general {} vs tree {}",
            general.mean(),
            tree.mean()
        );
    }

    #[test]
    fn affinity_ordering_on_a_real_mesh() {
        let g = mcast_gen_like_arpa();
        let m = DistanceMatrix::new(&g);
        let l = |beta: f64| mean_tree_size_general(&g, &m, 0, 8, beta, 120, 200, 5).mean();
        let clustered = l(6.0);
        let uniform = l(0.0);
        let spread = l(-6.0);
        assert!(
            clustered < uniform && uniform < spread,
            "{clustered} < {uniform} < {spread}"
        );
    }

    /// A small ARPA-like mesh (ring of rings) without depending on
    /// mcast-gen from this crate.
    fn mcast_gen_like_arpa() -> Graph {
        let mut edges: Vec<(NodeId, NodeId)> = (0..20).map(|i| (i, (i + 1) % 20)).collect();
        for i in 0..5 {
            edges.push((i * 4, 20 + i));
            edges.push((20 + i, 20 + (i + 1) % 5));
        }
        from_edges(25, &edges)
    }
}
