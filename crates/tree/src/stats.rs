//! Streaming statistics (Welford accumulation).
//!
//! Every experiment averages thousands of Monte-Carlo samples; Welford's
//! online algorithm gives the mean and an unbiased variance in one pass
//! without catastrophic cancellation.

/// Streaming mean/variance accumulator.
///
/// ```
/// use mcast_tree::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator (parallel reduction; Chan et al.).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
    }

    /// Decompose into the raw accumulator state `(count, mean, m2)`.
    ///
    /// Together with [`Self::from_parts`] this is the checkpoint
    /// serialisation hook: persisting the raw state (with the floats as
    /// IEEE-754 bit patterns) and restoring it reproduces the
    /// accumulator *bit-exactly*, so curves merged from a mixture of
    /// checkpointed and freshly-measured sources are indistinguishable
    /// from an uninterrupted run.
    pub fn to_parts(&self) -> (u64, f64, f64) {
        (self.count, self.mean, self.m2)
    }

    /// Rebuild an accumulator from raw state produced by
    /// [`Self::to_parts`].
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        Self { count, mean, m2 }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`NaN` for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.count as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.variance().is_nan());
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_nan());
    }

    #[test]
    fn known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance 4 → sample variance 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_err() - (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 * 0.25).collect();
        let mut all = RunningStats::new();
        for &x in &data {
            all.push(x);
        }
        let (left, right) = data.split_at(33);
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in left {
            a.push(x);
        }
        for &x in right {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn parts_round_trip_bitwise() {
        let mut s = RunningStats::new();
        for x in [0.1, 2.7, -3.3, 1e9, 5.5e-7] {
            s.push(x);
        }
        let (count, mean, m2) = s.to_parts();
        let back = RunningStats::from_parts(count, mean, m2);
        assert_eq!(back.count(), s.count());
        assert_eq!(back.mean().to_bits(), s.mean().to_bits());
        assert_eq!(back.variance().to_bits(), s.variance().to_bits());
        // Continuing to push after a round trip matches the original.
        let mut a = s;
        let mut b = back;
        a.push(42.0);
        b.push(42.0);
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.variance().to_bits(), b.variance().to_bits());
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        let mut s = RunningStats::new();
        for i in 0..1000 {
            s.push(1e9 + (i % 2) as f64);
        }
        assert!((s.mean() - (1e9 + 0.5)).abs() < 1e-6);
        assert!((s.variance() - 0.2502502502502503).abs() < 1e-6);
    }
}
