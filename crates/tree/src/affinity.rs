//! Receiver affinity and disaffinity (§5 of the paper).
//!
//! Receiver configurations `α` (n sites, with replacement, anywhere but the
//! root) are weighted `W_α(β) ∝ exp(−β·d̄(α))`, where `d̄(α)` is the mean
//! pairwise hop distance between receivers: `β > 0` clusters receivers
//! (affinity), `β < 0` spreads them out (disaffinity), `β = 0` recovers the
//! uniform model. The paper simulates intermediate `β` on binary trees of
//! depth 10 and 12 (Fig 9); we sample the weighted ensemble with a
//! Metropolis chain whose moves relocate one receiver at a time.
//!
//! Two tree identities make each move O(depth):
//!
//! * the pairwise distance sum equals `Σ_{v≠root} c_v·(n − c_v)` where
//!   `c_v` counts receivers in the subtree under `v` (each edge separates
//!   exactly `c_v·(n−c_v)` pairs);
//! * the delivery-tree size `L` equals the number of edges with `c_v > 0`.
//!
//! Relocating a receiver only changes `c_v` along two root paths.

use crate::stats::RunningStats;
use mcast_topology::bfs::Bfs;
use mcast_topology::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A rooted tree (parent pointers + depths) extracted from a tree-shaped
/// graph.
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<NodeId>,
    depth: Vec<u32>,
}

impl RootedTree {
    /// Root `graph` at `root`.
    ///
    /// # Panics
    /// Panics if `graph` is not a connected tree (edge count must be
    /// `nodes − 1` and every node reachable) or `root` is out of range.
    pub fn from_graph(graph: &Graph, root: NodeId) -> Self {
        assert_eq!(
            graph.edge_count() + 1,
            graph.node_count(),
            "graph is not a tree"
        );
        let mut bfs = Bfs::new(graph);
        bfs.run_scratch(root);
        assert_eq!(
            bfs.scratch_order().len(),
            graph.node_count(),
            "graph is not connected"
        );
        Self {
            root,
            parent: bfs.scratch_parents().to_vec(),
            depth: bfs.scratch_distances().to_vec(),
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Number of receiver-eligible sites (everything but the root).
    pub fn site_count(&self) -> usize {
        self.node_count() - 1
    }

    /// Depth of `v` (root = 0).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v as usize]
    }

    /// Parent of `v` (the root is its own parent).
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Hop distance between two nodes via their lowest common ancestor.
    pub fn distance(&self, mut a: NodeId, mut b: NodeId) -> u32 {
        let mut hops = 0;
        while self.depth[a as usize] > self.depth[b as usize] {
            a = self.parent[a as usize];
            hops += 1;
        }
        while self.depth[b as usize] > self.depth[a as usize] {
            b = self.parent[b as usize];
            hops += 1;
        }
        while a != b {
            a = self.parent[a as usize];
            b = self.parent[b as usize];
            hops += 2;
        }
        hops
    }
}

/// Metropolis chain configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AffinityConfig {
    /// Inverse-temperature-like parameter: `> 0` affinity, `< 0`
    /// disaffinity, `0` uniform.
    pub beta: f64,
    /// Sweeps (n proposed moves each) discarded before sampling.
    pub burn_in_sweeps: usize,
    /// Sweeps sampled after burn-in (one `L` observation per sweep).
    pub sample_sweeps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        Self {
            beta: 0.0,
            burn_in_sweeps: 50,
            sample_sweeps: 200,
            seed: 0xaff1_7e57,
        }
    }
}

/// Metropolis sampler over receiver configurations on a rooted tree.
pub struct AffinitySampler<'t> {
    tree: &'t RootedTree,
    beta: f64,
    receivers: Vec<NodeId>,
    /// Receivers at-or-below each node.
    count: Vec<u32>,
    /// `Σ_{v≠root} c_v (n − c_v)` — the pairwise distance sum.
    pair_sum: i64,
    /// Number of edges with `c_v > 0` — the delivery-tree size `L`.
    occupied: u32,
    rng: StdRng,
}

impl<'t> AffinitySampler<'t> {
    /// Start a chain with `n` receivers placed uniformly at random.
    ///
    /// # Panics
    /// Panics if the tree has no eligible sites or `n == 0`.
    pub fn new(tree: &'t RootedTree, n: usize, beta: f64, seed: u64) -> Self {
        assert!(n > 0, "need at least one receiver");
        assert!(tree.site_count() > 0, "tree has no receiver sites");
        let rng = StdRng::seed_from_u64(seed);
        let mut s = Self {
            tree,
            beta,
            receivers: Vec::with_capacity(n),
            count: vec![0; tree.node_count()],
            pair_sum: 0,
            occupied: 0,
            rng,
        };
        for _ in 0..n {
            let site = s.random_site();
            s.receivers.push(site);
        }
        // Build counts from scratch, then derive the invariants.
        for i in 0..n {
            let mut v = s.receivers[i];
            while v != tree.root {
                s.count[v as usize] += 1;
                v = tree.parent(v);
            }
        }
        let n_i = n as i64;
        for v in 0..tree.node_count() as NodeId {
            if v == tree.root {
                continue;
            }
            let c = i64::from(s.count[v as usize]);
            s.pair_sum += c * (n_i - c);
            if c > 0 {
                s.occupied += 1;
            }
        }
        s
    }

    fn random_site(&mut self) -> NodeId {
        loop {
            let v = self.rng.gen_range(0..self.tree.node_count() as NodeId);
            if v != self.tree.root {
                return v;
            }
        }
    }

    /// Number of receivers `n`.
    pub fn receiver_count(&self) -> usize {
        self.receivers.len()
    }

    /// Current delivery-tree size `L` (links).
    pub fn tree_links(&self) -> u32 {
        self.occupied
    }

    /// Current mean pairwise receiver distance `d̄` (0 for n = 1).
    pub fn mean_pairwise_distance(&self) -> f64 {
        let n = self.receivers.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        self.pair_sum as f64 / (n * (n - 1.0) / 2.0)
    }

    /// Current receiver placement.
    pub fn receivers(&self) -> &[NodeId] {
        &self.receivers
    }

    /// Propose and maybe accept one relocation; returns whether it was
    /// accepted.
    pub fn step(&mut self) -> bool {
        let n = self.receivers.len();
        let idx = self.rng.gen_range(0..n);
        let old = self.receivers[idx];
        let new = self.random_site();
        if new == old {
            return true; // identity move always accepted
        }
        let (dsum, docc) = self.apply_move(old, new);
        let pairs = n as f64 * (n as f64 - 1.0) / 2.0;
        let delta_dbar = if pairs > 0.0 {
            dsum as f64 / pairs
        } else {
            0.0
        };
        let accept = if self.beta * delta_dbar <= 0.0 {
            true
        } else {
            self.rng.gen::<f64>() < (-self.beta * delta_dbar).exp()
        };
        if accept {
            self.receivers[idx] = new;
            self.pair_sum += dsum;
            self.occupied = (self.occupied as i64 + docc) as u32;
            true
        } else {
            // Undo.
            let _ = self.apply_move(new, old);
            false
        }
    }

    /// Move one receiver from `from` to `to` in the count array, returning
    /// the (pair_sum delta, occupied delta). Call a second time with the
    /// arguments swapped to undo.
    fn apply_move(&mut self, from: NodeId, to: NodeId) -> (i64, i64) {
        let n = self.receivers.len() as i64;
        let root = self.tree.root;
        let mut dsum = 0i64;
        let mut docc = 0i64;
        let mut v = from;
        while v != root {
            let c = i64::from(self.count[v as usize]);
            // c → c−1: Δ[c(n−c)] = (c−1)(n−c+1) − c(n−c) = 2c − n − 1.
            dsum += 2 * c - n - 1;
            self.count[v as usize] -= 1;
            if c == 1 {
                docc -= 1;
            }
            v = self.tree.parent(v);
        }
        let mut v = to;
        while v != root {
            let c = i64::from(self.count[v as usize]);
            // c → c+1: Δ = n − 2c − 1.
            dsum += n - 2 * c - 1;
            self.count[v as usize] += 1;
            if c == 0 {
                docc += 1;
            }
            v = self.tree.parent(v);
        }
        (dsum, docc)
    }

    /// Run one sweep (`n` proposals); returns the acceptance fraction.
    pub fn sweep(&mut self) -> f64 {
        let n = self.receivers.len();
        let mut accepted = 0usize;
        for _ in 0..n {
            if self.step() {
                accepted += 1;
            }
        }
        accepted as f64 / n as f64
    }
}

/// Estimate `E_β[L̂(n)]` on a rooted tree: burn in, then record `L` once
/// per sweep.
pub fn mean_tree_size(tree: &RootedTree, n: usize, cfg: &AffinityConfig) -> RunningStats {
    let mut sampler = AffinitySampler::new(tree, n, cfg.beta, cfg.seed);
    for _ in 0..cfg.burn_in_sweeps {
        sampler.sweep();
    }
    let mut stats = RunningStats::new();
    for _ in 0..cfg.sample_sweeps {
        sampler.sweep();
        stats.push(f64::from(sampler.tree_links()));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    fn binary_tree(depth: u32) -> Graph {
        let n = (1u32 << (depth + 1)) - 1;
        let edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        from_edges(n as usize, &edges)
    }

    fn brute_pair_sum(tree: &RootedTree, receivers: &[NodeId]) -> i64 {
        let mut sum = 0i64;
        for i in 0..receivers.len() {
            for j in (i + 1)..receivers.len() {
                sum += i64::from(tree.distance(receivers[i], receivers[j]));
            }
        }
        sum
    }

    fn brute_tree_links(tree: &RootedTree, receivers: &[NodeId]) -> u32 {
        let mut edges = std::collections::HashSet::new();
        for &r in receivers {
            let mut v = r;
            while v != tree.root() {
                edges.insert(v);
                v = tree.parent(v);
            }
        }
        edges.len() as u32
    }

    #[test]
    fn rooted_tree_distances() {
        let g = binary_tree(3);
        let t = RootedTree::from_graph(&g, 0);
        assert_eq!(t.distance(7, 8), 2); // siblings
        assert_eq!(t.distance(7, 0), 3);
        assert_eq!(t.distance(7, 14), 6); // opposite leaves
        assert_eq!(t.distance(5, 5), 0);
        assert_eq!(t.site_count(), 14);
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn non_tree_rejected() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        RootedTree::from_graph(&g, 0);
    }

    #[test]
    fn invariants_match_brute_force_through_moves() {
        let g = binary_tree(4);
        let t = RootedTree::from_graph(&g, 0);
        let mut s = AffinitySampler::new(&t, 9, 0.5, 11);
        for step in 0..300 {
            s.step();
            let brute_sum = brute_pair_sum(&t, s.receivers());
            assert_eq!(s.pair_sum, brute_sum, "step {step}");
            let brute_links = brute_tree_links(&t, s.receivers());
            assert_eq!(s.tree_links(), brute_links, "step {step}");
        }
    }

    #[test]
    fn beta_zero_matches_uniform_expectation() {
        // With β = 0 every move is accepted and the chain samples the
        // uniform with-replacement ensemble, so E[L] must match a direct
        // Monte-Carlo estimate.
        let g = binary_tree(6);
        let t = RootedTree::from_graph(&g, 0);
        let n = 20;
        let cfg = AffinityConfig {
            beta: 0.0,
            burn_in_sweeps: 20,
            sample_sweeps: 600,
            seed: 7,
        };
        let mcmc = mean_tree_size(&t, n, &cfg);

        let mut direct = RunningStats::new();
        let mut sizer = crate::delivery::DeliverySizer::from_graph(&g, 0);
        let pool = crate::sampling::ReceiverPool::AllExceptSource {
            nodes: g.node_count(),
            source: 0,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let mut buf = Vec::new();
        for _ in 0..2000 {
            crate::sampling::with_replacement(&pool, n, &mut rng, &mut buf);
            direct.push(sizer.tree_links(&buf) as f64);
        }
        let diff = (mcmc.mean() - direct.mean()).abs();
        let tol = 3.0 * (mcmc.std_err() + direct.std_err()) + 0.5;
        assert!(
            diff < tol,
            "mcmc {} vs direct {}",
            mcmc.mean(),
            direct.mean()
        );
    }

    #[test]
    fn affinity_shrinks_and_disaffinity_grows_the_tree() {
        let g = binary_tree(7);
        let t = RootedTree::from_graph(&g, 0);
        let n = 30;
        let l = |beta: f64| {
            mean_tree_size(
                &t,
                n,
                &AffinityConfig {
                    beta,
                    burn_in_sweeps: 80,
                    sample_sweeps: 150,
                    seed: 21,
                },
            )
            .mean()
        };
        let clustered = l(5.0);
        let uniform = l(0.0);
        let spread = l(-5.0);
        assert!(
            clustered < uniform && uniform < spread,
            "L: affinity {clustered}, uniform {uniform}, disaffinity {spread}"
        );
    }

    #[test]
    fn extreme_affinity_approaches_depth() {
        // β → ∞: all receivers collapse to one site; L → depth of that
        // site (≤ D). With strong β the mean should sit well below the
        // uniform value and near D.
        let g = binary_tree(6);
        let t = RootedTree::from_graph(&g, 0);
        let stats = mean_tree_size(
            &t,
            40,
            &AffinityConfig {
                beta: 50.0,
                burn_in_sweeps: 400,
                sample_sweeps: 100,
                seed: 3,
            },
        );
        assert!(stats.mean() < 15.0, "mean {}", stats.mean());
    }

    #[test]
    fn single_receiver_chain_runs() {
        let g = binary_tree(4);
        let t = RootedTree::from_graph(&g, 0);
        let stats = mean_tree_size(
            &t,
            1,
            &AffinityConfig {
                beta: 2.0,
                burn_in_sweeps: 5,
                sample_sweeps: 50,
                seed: 9,
            },
        );
        // One receiver: L is its depth, between 1 and D.
        assert!(stats.mean() >= 1.0 && stats.mean() <= 4.0);
    }

    #[test]
    fn mean_pairwise_distance_is_consistent() {
        let g = binary_tree(5);
        let t = RootedTree::from_graph(&g, 0);
        let s = AffinitySampler::new(&t, 12, 0.0, 31);
        let brute = brute_pair_sum(&t, s.receivers()) as f64 / (12.0 * 11.0 / 2.0);
        assert!((s.mean_pairwise_distance() - brute).abs() < 1e-9);
    }
}
