//! Shell crate: integration tests live in /tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
