//! Periodic checkpointing of partial measurement state.
//!
//! Long measures dedupe their Monte-Carlo source draws into *groups*
//! (one BFS per distinct source node) and merge per-index statistics in
//! ascending index order. That merge discipline is what makes results
//! independent of thread count — and it is also what makes group-level
//! checkpointing sufficient for *bit-identical* resume: a group's
//! statistics depend only on its own per-index RNG streams, so a
//! checkpoint that stores **only fully-measured groups** can be merged
//! with freshly-measured remaining groups in index order and the result
//! is indistinguishable from an uninterrupted run. No RNG positions need
//! to be persisted; incomplete groups simply restart their streams from
//! the derived per-index seeds.
//!
//! File layout (`<cache>/checkpoints/<keyhex>.ckpt`):
//!
//! ```text
//! header (44 bytes):
//!   0   4   magic b"MCSC"
//!   4   4   version (u32 LE, currently 1)
//!   8   32  cache key the checkpoint belongs to
//!   40  4   number of x-axis points per index (u32 LE)
//! then zero or more frames, each:
//!   0   8   payload length (u64 LE)
//!   8   32  SHA-256 of the payload
//!   40  …   payload (one fully-measured group, see GroupRecord)
//! ```
//!
//! Frames are appended and flushed one group at a time. A kill can tear
//! at most the final frame; [`open`] tolerates a torn tail by truncating
//! to the last intact frame before handing back an appender. Floats are
//! stored as IEEE-754 bit patterns so restored accumulators are
//! bit-exact.

use crate::error::StoreError;
use crate::hash::{sha256, Key};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes of a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"MCSC";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Header length in bytes.
const HEADER_LEN: usize = 44;
/// Frame prefix length (payload length + checksum).
const FRAME_PREFIX: usize = 40;

/// Raw accumulator state for one source index: per-x `(count, mean, m2)`
/// triples, exactly what `RunningStats::to_parts` yields.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexStats {
    /// Source index within the measurement plan.
    pub index: u64,
    /// Per-x accumulator parts, one per x-axis point.
    pub stats: Vec<(u64, f64, f64)>,
}

/// One fully-measured dedup group: the per-index statistics of every
/// plan index that shares the group's source node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GroupRecord {
    /// Statistics for each index in the group.
    pub entries: Vec<IndexStats>,
}

/// Path of the checkpoint for `key` under checkpoint directory `dir`.
pub fn checkpoint_path(dir: &Path, key: &Key) -> PathBuf {
    dir.join(format!("{}.ckpt", key.hex()))
}

fn encode_record(record: &GroupRecord, xs_len: u32) -> Vec<u8> {
    let per_entry = 8 + xs_len as usize * 24;
    let mut payload = Vec::with_capacity(4 + record.entries.len() * per_entry);
    payload.extend_from_slice(&(record.entries.len() as u32).to_le_bytes());
    for entry in &record.entries {
        assert_eq!(
            entry.stats.len(),
            xs_len as usize,
            "group entry has wrong x-axis length"
        );
        payload.extend_from_slice(&entry.index.to_le_bytes());
        for &(count, mean, m2) in &entry.stats {
            payload.extend_from_slice(&count.to_le_bytes());
            payload.extend_from_slice(&mean.to_bits().to_le_bytes());
            payload.extend_from_slice(&m2.to_bits().to_le_bytes());
        }
    }
    payload
}

fn decode_record(payload: &[u8], xs_len: u32) -> Option<GroupRecord> {
    let n = u32::from_le_bytes(payload.get(..4)?.try_into().ok()?) as usize;
    let per_entry = 8 + xs_len as usize * 24;
    if payload.len() != 4 + n * per_entry {
        return None;
    }
    let mut entries = Vec::with_capacity(n);
    let mut at = 4;
    for _ in 0..n {
        let index = u64::from_le_bytes(payload[at..at + 8].try_into().ok()?);
        at += 8;
        let mut stats = Vec::with_capacity(xs_len as usize);
        for _ in 0..xs_len {
            let count = u64::from_le_bytes(payload[at..at + 8].try_into().ok()?);
            let mean = f64::from_bits(u64::from_le_bytes(payload[at + 8..at + 16].try_into().ok()?));
            let m2 = f64::from_bits(u64::from_le_bytes(payload[at + 16..at + 24].try_into().ok()?));
            at += 24;
            stats.push((count, mean, m2));
        }
        entries.push(IndexStats { index, stats });
    }
    Some(GroupRecord { entries })
}

fn encode_header(key: &Key, xs_len: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&CHECKPOINT_MAGIC);
    h[4..8].copy_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    h[8..40].copy_from_slice(&key.0 .0);
    h[40..44].copy_from_slice(&xs_len.to_le_bytes());
    h
}

/// Parse an existing checkpoint body. Returns the records of every
/// intact frame plus the byte length of the valid prefix; `None` when the
/// header does not match `(key, xs_len)` at the current version.
fn parse(data: &[u8], key: &Key, xs_len: u32) -> Option<(Vec<GroupRecord>, usize)> {
    if data.len() < HEADER_LEN || data[..HEADER_LEN] != encode_header(key, xs_len) {
        return None;
    }
    let mut records = Vec::new();
    let mut at = HEADER_LEN;
    while data.len() - at >= FRAME_PREFIX {
        let len = u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes")) as usize;
        let Some(end) = at.checked_add(FRAME_PREFIX).and_then(|s| s.checked_add(len)) else {
            break;
        };
        if end > data.len() {
            break; // torn tail
        }
        let payload = &data[at + FRAME_PREFIX..end];
        if sha256(payload).0 != data[at + 8..at + FRAME_PREFIX] {
            break; // torn or corrupt tail — everything after is suspect
        }
        let Some(record) = decode_record(payload, xs_len) else {
            break;
        };
        records.push(record);
        at = end;
    }
    Some((records, at))
}

/// An open checkpoint the measurement loop appends groups to.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: fs::File,
    path: PathBuf,
    xs_len: u32,
}

impl CheckpointWriter {
    /// Append one fully-measured group and flush it to the OS, so a
    /// subsequent process kill cannot lose it.
    pub fn append(&mut self, record: &GroupRecord) -> Result<(), StoreError> {
        let payload = encode_record(record, self.xs_len);
        let mut frame = Vec::with_capacity(FRAME_PREFIX + payload.len());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&sha256(&payload).0);
        frame.extend_from_slice(&payload);
        self.file
            .write_all(&frame)
            .and_then(|()| self.file.flush())
            .map_err(|e| StoreError::io(&self.path, e))?;
        mcast_obs::counter("store.checkpoint.group").add(1);
        Ok(())
    }
}

/// Open the checkpoint for `key`, recovering any prior progress.
///
/// * No file (or an incompatible/foreign one) → a fresh checkpoint is
///   created and no records are returned.
/// * A compatible file → every intact frame is returned; a torn tail
///   (from a mid-append kill) is truncated away before the appender is
///   handed back, so new frames always follow a valid one.
pub fn open(
    dir: &Path,
    key: &Key,
    xs_len: u32,
) -> Result<(CheckpointWriter, Vec<GroupRecord>), StoreError> {
    fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
    let path = checkpoint_path(dir, key);
    let parsed = fs::read(&path)
        .ok()
        .and_then(|data| parse(&data, key, xs_len).map(|(r, valid)| (r, valid, data)));
    let records = match parsed {
        Some((records, valid_len, data)) => {
            if valid_len < data.len() {
                // Torn tail: rewrite the valid prefix atomically so the
                // append handle starts at a frame boundary.
                crate::atomic::write_atomic(&path, &data[..valid_len])?;
            }
            mcast_obs::counter("store.checkpoint.resumed_group").add(records.len() as u64);
            records
        }
        None => {
            crate::atomic::write_atomic(&path, &encode_header(key, xs_len))?;
            Vec::new()
        }
    };
    let file = fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| StoreError::io(&path, e))?;
    Ok((
        CheckpointWriter {
            file,
            path,
            xs_len,
        },
        records,
    ))
}

/// Delete the checkpoint for `key` (after its final artifact landed).
pub fn remove(dir: &Path, key: &Key) {
    let _ = fs::remove_file(checkpoint_path(dir, key));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mcast-store-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn key() -> Key {
        KeyBuilder::new("ckpt-test").u64("n", 1).finish()
    }

    fn group(base: u64, xs: u32) -> GroupRecord {
        GroupRecord {
            entries: (0..2)
                .map(|i| IndexStats {
                    index: base + i,
                    stats: (0..xs)
                        .map(|x| (x as u64 + 1, 0.5 * (base + x as u64) as f64, 0.25))
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = temp_dir("roundtrip");
        let k = key();
        let (mut w, existing) = open(&dir, &k, 3).unwrap();
        assert!(existing.is_empty());
        w.append(&group(0, 3)).unwrap();
        w.append(&group(10, 3)).unwrap();
        drop(w);
        let (_w, records) = open(&dir, &k, 3).unwrap();
        assert_eq!(records, vec![group(0, 3), group(10, 3)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let dir = temp_dir("torn");
        let k = key();
        let (mut w, _) = open(&dir, &k, 2).unwrap();
        w.append(&group(0, 2)).unwrap();
        w.append(&group(5, 2)).unwrap();
        drop(w);
        let path = checkpoint_path(&dir, &k);
        // Simulate a kill mid-append: chop the final frame in half.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 17]).unwrap();
        let (mut w, records) = open(&dir, &k, 2).unwrap();
        assert_eq!(records, vec![group(0, 2)], "torn frame dropped");
        // The appender continues from the valid boundary.
        w.append(&group(7, 2)).unwrap();
        drop(w);
        let (_w, records) = open(&dir, &k, 2).unwrap();
        assert_eq!(records, vec![group(0, 2), group(7, 2)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incompatible_header_starts_fresh() {
        let dir = temp_dir("incompat");
        let k = key();
        let (mut w, _) = open(&dir, &k, 2).unwrap();
        w.append(&group(0, 2)).unwrap();
        drop(w);
        // Same key, different x-axis length → prior progress discarded.
        let (_w, records) = open(&dir, &k, 5).unwrap();
        assert!(records.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn float_bits_survive_exactly() {
        let dir = temp_dir("bits");
        let k = key();
        let tricky = GroupRecord {
            entries: vec![IndexStats {
                index: 3,
                stats: vec![(7, f64::from_bits(0x3ff0_0000_0000_0001), -0.0)],
            }],
        };
        let (mut w, _) = open(&dir, &k, 1).unwrap();
        w.append(&tricky).unwrap();
        drop(w);
        let (_w, records) = open(&dir, &k, 1).unwrap();
        let (count, mean, m2) = records[0].entries[0].stats[0];
        assert_eq!(count, 7);
        assert_eq!(mean.to_bits(), 0x3ff0_0000_0000_0001);
        assert_eq!(m2.to_bits(), (-0.0f64).to_bits());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_deletes_file() {
        let dir = temp_dir("remove");
        let k = key();
        let (_w, _) = open(&dir, &k, 1).unwrap();
        assert!(checkpoint_path(&dir, &k).exists());
        remove(&dir, &k);
        assert!(!checkpoint_path(&dir, &k).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
