//! Content-addressed result cache.
//!
//! Objects live under `<root>/objects/<hh>/<hex>.mco`, where `hex` is the
//! full cache-key digest and `hh` its first byte — the usual two-level
//! fan-out so a directory never accumulates tens of thousands of entries.
//! Each object file is self-verifying:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MCSO"
//! 4       4     format version (u32 LE, currently 1)
//! 8       4     object kind (u32 LE, caller-defined namespace)
//! 12      8     payload length (u64 LE)
//! 20      32    SHA-256 of the payload
//! 52      …     payload
//! ```
//!
//! A corrupt object is indistinguishable from a miss to callers: `get`
//! verifies the checksum, and on failure counts `store.cache.corrupt`,
//! deletes the file, and reports `None` so the value is recomputed and
//! rewritten. The cache therefore never *returns* damaged bytes, which is
//! what lets the experiment pipeline trust cached curves bit-for-bit.
//!
//! A process-global handle ([`configure`] / [`active`] / [`deactivate`])
//! mirrors the `mcast-obs` registry pattern: the experiment `RunConfig`
//! stays `Copy` and the measurement layer opts into caching only when the
//! CLI passed `--cache-dir`.

use crate::atomic::write_atomic;
use crate::error::StoreError;
use crate::hash::{sha256, Key};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, RwLock};

/// Magic bytes of a cache object file.
pub const OBJECT_MAGIC: [u8; 4] = *b"MCSO";
/// Current cache object format version. Part of every cache key via
/// [`crate::hash::KeyBuilder`] users, and checked on read.
pub const OBJECT_VERSION: u32 = 1;
/// Object header length in bytes.
pub const OBJECT_HEADER_LEN: usize = 52;

/// Caller-defined object namespaces (stored in the header, so a key
/// collision across kinds can never alias payloads silently).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectKind {
    /// A measured curve: per-x `RunningStats` triples.
    Curve,
    /// A rendered figure report (JSON `Report`).
    Report,
}

impl ObjectKind {
    /// Stable on-disk tag.
    pub fn tag(self) -> u32 {
        match self {
            ObjectKind::Curve => 1,
            ObjectKind::Report => 2,
        }
    }

    /// Human-readable name for `mcs cache ls`.
    pub fn name(self) -> &'static str {
        match self {
            ObjectKind::Curve => "curve",
            ObjectKind::Report => "report",
        }
    }

    fn from_tag(tag: u32) -> Option<Self> {
        match tag {
            1 => Some(ObjectKind::Curve),
            2 => Some(ObjectKind::Report),
            _ => None,
        }
    }
}

/// One entry from [`DiskCache::ls`].
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Hex cache key (file stem).
    pub key: String,
    /// Object kind name (`"curve"`, `"report"`, or `"?"` for foreign tags).
    pub kind: &'static str,
    /// Payload size in bytes.
    pub payload_len: u64,
}

/// Outcome of [`DiskCache::verify_all`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Objects whose checksums matched.
    pub ok: usize,
    /// Objects that failed verification (and were left in place).
    pub corrupt: usize,
}

/// A content-addressed object store rooted at one directory.
#[derive(Debug)]
pub struct DiskCache {
    root: PathBuf,
}

impl DiskCache {
    /// Open (creating if needed) a cache rooted at `root`.
    pub fn open(root: &Path) -> Result<Self, StoreError> {
        fs::create_dir_all(root.join("objects")).map_err(|e| StoreError::io(root, e))?;
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Directory holding measurement checkpoints (managed by
    /// [`crate::checkpoint`]).
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.root.join("checkpoints")
    }

    fn object_path(&self, key: &Key) -> PathBuf {
        let hex = key.hex();
        self.root
            .join("objects")
            .join(&hex[..2])
            .join(format!("{hex}.mco"))
    }

    /// Fetch an object. Returns `None` on miss, wrong kind, or corruption
    /// (corrupt files are deleted so the slot is rewritten cleanly).
    pub fn get(&self, key: &Key, kind: ObjectKind) -> Option<Vec<u8>> {
        let path = self.object_path(key);
        let data = match fs::read(&path) {
            Ok(d) => d,
            Err(_) => {
                mcast_obs::counter("store.cache.miss").add(1);
                return None;
            }
        };
        match decode_object(&data, Some(kind)) {
            Ok(payload) => {
                mcast_obs::counter("store.cache.hit").add(1);
                Some(payload)
            }
            Err(_) => {
                mcast_obs::counter("store.cache.corrupt").add(1);
                mcast_obs::counter("store.cache.miss").add(1);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Store an object (atomically).
    pub fn put(&self, key: &Key, kind: ObjectKind, payload: &[u8]) -> Result<(), StoreError> {
        let bytes = encode_object(kind, payload);
        write_atomic(&self.object_path(key), &bytes)?;
        mcast_obs::counter("store.cache.write").add(1);
        Ok(())
    }

    /// Whether an object file exists (no verification).
    pub fn contains(&self, key: &Key) -> bool {
        self.object_path(key).exists()
    }

    fn object_files(&self) -> Vec<PathBuf> {
        let mut out = Vec::new();
        let objects = self.root.join("objects");
        let shards = match fs::read_dir(&objects) {
            Ok(s) => s,
            Err(_) => return out,
        };
        for shard in shards.flatten() {
            if let Ok(files) = fs::read_dir(shard.path()) {
                for f in files.flatten() {
                    let p = f.path();
                    if p.extension().is_some_and(|e| e == "mco") {
                        out.push(p);
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// List every object in the cache (sorted by key).
    pub fn ls(&self) -> Vec<CacheEntry> {
        self.object_files()
            .into_iter()
            .filter_map(|p| {
                let key = p.file_stem()?.to_str()?.to_string();
                let data = fs::read(&p).ok()?;
                if data.len() < OBJECT_HEADER_LEN {
                    return None;
                }
                let tag = u32::from_le_bytes(data[8..12].try_into().ok()?);
                let payload_len = u64::from_le_bytes(data[12..20].try_into().ok()?);
                Some(CacheEntry {
                    key,
                    kind: ObjectKind::from_tag(tag).map_or("?", ObjectKind::name),
                    payload_len,
                })
            })
            .collect()
    }

    /// Re-verify every object's checksum.
    pub fn verify_all(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for p in self.object_files() {
            let ok = fs::read(&p)
                .ok()
                .is_some_and(|d| decode_object(&d, None).is_ok());
            if ok {
                report.ok += 1;
            } else {
                report.corrupt += 1;
            }
        }
        report
    }

    /// Compute what [`DiskCache::gc`] would delete, without deleting
    /// anything: corrupt objects, stale temp files, and checkpoints
    /// whose final object already landed. This is the audit surface for
    /// `mcs cache gc --dry-run` — an operator inspecting a cache shared
    /// by a running `mcs serve` daemon can see exactly which files a gc
    /// would touch (with sizes and ages) before committing to it.
    pub fn gc_plan(&self) -> Vec<GcCandidate> {
        let mut plan = Vec::new();
        for p in self.object_files() {
            let corrupt = fs::read(&p)
                .map(|d| decode_object(&d, None).is_err())
                .unwrap_or(true);
            if corrupt {
                plan.push(GcCandidate::new(p, GcReason::CorruptObject));
            }
        }
        // Temp litter from killed writers, anywhere under the root.
        for p in collect_matching(&self.root, &|name| name.ends_with(".tmp")) {
            plan.push(GcCandidate::new(p, GcReason::TempLitter));
        }
        // Checkpoints are only useful until their final object lands; a
        // checkpoint whose curve/report was completed is unreachable.
        if let Ok(ckpts) = fs::read_dir(self.checkpoint_dir()) {
            for f in ckpts.flatten() {
                let p = f.path();
                let stale = p
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(Key::from_hex)
                    .is_some_and(|key| self.contains(&key));
                if stale {
                    plan.push(GcCandidate::new(p, GcReason::StaleCheckpoint));
                }
            }
        }
        plan.sort_by(|a, b| a.path.cmp(&b.path));
        plan
    }

    /// Remove corrupt objects, stale temp files, and stale checkpoints
    /// (exactly the [`DiskCache::gc_plan`] set). Returns the number of
    /// files deleted.
    pub fn gc(&self) -> usize {
        self.gc_plan()
            .iter()
            .filter(|c| fs::remove_file(&c.path).is_ok())
            .count()
    }
}

/// Why [`DiskCache::gc`] would remove a file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcReason {
    /// An object file whose frame or checksum no longer verifies.
    CorruptObject,
    /// A `.tmp` file left behind by a killed atomic writer.
    TempLitter,
    /// A checkpoint whose final object already landed in the cache.
    StaleCheckpoint,
}

impl GcReason {
    /// Short name for listings.
    pub fn name(self) -> &'static str {
        match self {
            GcReason::CorruptObject => "corrupt-object",
            GcReason::TempLitter => "temp-litter",
            GcReason::StaleCheckpoint => "stale-checkpoint",
        }
    }
}

/// One file a gc would delete; see [`DiskCache::gc_plan`].
#[derive(Clone, Debug)]
pub struct GcCandidate {
    /// Absolute path of the doomed file.
    pub path: PathBuf,
    /// Hex key stem, when the file name carries one.
    pub key: Option<String>,
    /// Why it would be removed.
    pub reason: GcReason,
    /// File size in bytes (0 if unreadable).
    pub bytes: u64,
    /// Seconds since last modification, when the filesystem says.
    pub age_secs: Option<u64>,
}

impl GcCandidate {
    fn new(path: PathBuf, reason: GcReason) -> Self {
        let meta = fs::metadata(&path).ok();
        let bytes = meta.as_ref().map_or(0, |m| m.len());
        let age_secs = meta
            .and_then(|m| m.modified().ok())
            .and_then(|t| t.elapsed().ok())
            .map(|d| d.as_secs());
        let key = path
            .file_stem()
            .and_then(|s| s.to_str())
            .filter(|hex| Key::from_hex(hex).is_some())
            .map(str::to_string);
        Self {
            path,
            key,
            reason,
            bytes,
            age_secs,
        }
    }
}

fn collect_matching(dir: &Path, pred: &dyn Fn(&str) -> bool) -> Vec<PathBuf> {
    let mut found = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                found.extend(collect_matching(&p, pred));
            } else if p.file_name().and_then(|n| n.to_str()).is_some_and(pred) {
                found.push(p);
            }
        }
    }
    found
}

/// Frame a payload as a self-verifying object file.
pub fn encode_object(kind: ObjectKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(OBJECT_HEADER_LEN + payload.len());
    out.extend_from_slice(&OBJECT_MAGIC);
    out.extend_from_slice(&OBJECT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.tag().to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&sha256(payload).0);
    out.extend_from_slice(payload);
    out
}

/// Unframe and verify an object file; `expected_kind` of `None` accepts
/// any known kind (used by `verify`/`gc`).
pub fn decode_object(data: &[u8], expected_kind: Option<ObjectKind>) -> Result<Vec<u8>, StoreError> {
    if data.len() < OBJECT_HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: OBJECT_HEADER_LEN,
            found: data.len(),
        });
    }
    let mut found = [0u8; 4];
    found.copy_from_slice(&data[0..4]);
    if found != OBJECT_MAGIC {
        return Err(StoreError::BadMagic {
            found,
            expected: OBJECT_MAGIC,
        });
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != OBJECT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: OBJECT_VERSION,
        });
    }
    let tag = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    match (ObjectKind::from_tag(tag), expected_kind) {
        (None, _) => return Err(StoreError::HeaderCorrupt),
        (Some(k), Some(want)) if k != want => return Err(StoreError::HeaderCorrupt),
        _ => {}
    }
    let payload_len = u64::from_le_bytes(data[12..20].try_into().expect("8 bytes")) as usize;
    let expected_total = OBJECT_HEADER_LEN + payload_len;
    if data.len() != expected_total {
        return Err(StoreError::Truncated {
            expected: expected_total,
            found: data.len(),
        });
    }
    let payload = &data[OBJECT_HEADER_LEN..];
    if sha256(payload).0 != data[20..52] {
        return Err(StoreError::PayloadCorrupt);
    }
    Ok(payload.to_vec())
}

/// The process-global cache binding produced by [`configure`].
#[derive(Debug)]
pub struct CacheHandle {
    /// The open cache.
    pub cache: DiskCache,
    /// Whether `--resume` was passed: measurement loops may load partial
    /// checkpoints and continue from them.
    pub resume: bool,
}

fn global() -> &'static RwLock<Option<Arc<CacheHandle>>> {
    static GLOBAL: OnceLock<RwLock<Option<Arc<CacheHandle>>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(None))
}

/// Bind the process-global cache to `root`. `resume` enables checkpoint
/// loading in measurement loops.
pub fn configure(root: &Path, resume: bool) -> Result<(), StoreError> {
    let handle = Arc::new(CacheHandle {
        cache: DiskCache::open(root)?,
        resume,
    });
    *global().write().expect("store cache lock") = Some(handle);
    Ok(())
}

/// Unbind the process-global cache (tests; end of a CLI run).
pub fn deactivate() {
    *global().write().expect("store cache lock") = None;
}

/// The currently configured cache, if any.
pub fn active() -> Option<Arc<CacheHandle>> {
    global().read().expect("store cache lock").clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;

    fn temp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mcast-store-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn key(n: u64) -> Key {
        KeyBuilder::new("test").u64("n", n).finish()
    }

    #[test]
    fn put_get_round_trip() {
        let root = temp_root("roundtrip");
        let cache = DiskCache::open(&root).unwrap();
        let k = key(1);
        assert!(cache.get(&k, ObjectKind::Curve).is_none());
        cache.put(&k, ObjectKind::Curve, b"payload bytes").unwrap();
        assert_eq!(
            cache.get(&k, ObjectKind::Curve).unwrap(),
            b"payload bytes".to_vec()
        );
        // Kind mismatch is a miss, not a panic.
        assert!(cache.get(&k, ObjectKind::Report).is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_object_reads_as_miss_and_is_removed() {
        let root = temp_root("corrupt");
        let cache = DiskCache::open(&root).unwrap();
        let k = key(2);
        cache.put(&k, ObjectKind::Report, b"hello").unwrap();
        let path = cache.object_path(&k);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.get(&k, ObjectKind::Report).is_none());
        assert!(!path.exists(), "corrupt object should be deleted");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn ls_verify_gc() {
        let root = temp_root("lsgc");
        let cache = DiskCache::open(&root).unwrap();
        cache.put(&key(10), ObjectKind::Curve, b"aaaa").unwrap();
        cache.put(&key(11), ObjectKind::Report, b"bb").unwrap();
        let ls = cache.ls();
        assert_eq!(ls.len(), 2);
        assert!(ls.iter().any(|e| e.kind == "curve" && e.payload_len == 4));
        assert_eq!(cache.verify_all(), VerifyReport { ok: 2, corrupt: 0 });

        // Corrupt one object in place; verify flags it, gc removes it.
        let p = cache.object_path(&key(10));
        let mut bytes = fs::read(&p).unwrap();
        bytes[OBJECT_HEADER_LEN] ^= 0x01;
        fs::write(&p, &bytes).unwrap();
        assert_eq!(cache.verify_all(), VerifyReport { ok: 1, corrupt: 1 });
        // Plant temp litter and a stale checkpoint for the surviving key.
        fs::write(root.join("objects").join("x.tmp"), b"junk").unwrap();
        let ckpt_dir = cache.checkpoint_dir();
        fs::create_dir_all(&ckpt_dir).unwrap();
        fs::write(ckpt_dir.join(format!("{}.ckpt", key(11).hex())), b"old").unwrap();
        // The dry-run plan names all three candidates (with reasons and
        // sizes) without touching anything.
        let plan = cache.gc_plan();
        assert_eq!(plan.len(), 3);
        let reasons: Vec<GcReason> = plan.iter().map(|c| c.reason).collect();
        assert!(reasons.contains(&GcReason::CorruptObject));
        assert!(reasons.contains(&GcReason::TempLitter));
        assert!(reasons.contains(&GcReason::StaleCheckpoint));
        for c in &plan {
            assert!(c.bytes > 0, "{:?} should report its size", c.path);
            assert!(c.path.exists(), "gc_plan must not delete");
        }
        let stale = plan
            .iter()
            .find(|c| c.reason == GcReason::StaleCheckpoint)
            .unwrap();
        assert_eq!(stale.key.as_deref(), Some(key(11).hex().as_str()));
        assert_eq!(cache.verify_all(), VerifyReport { ok: 1, corrupt: 1 });

        let removed = cache.gc();
        assert_eq!(removed, 3, "corrupt object + temp file + stale checkpoint");
        assert_eq!(cache.verify_all(), VerifyReport { ok: 1, corrupt: 0 });
        assert!(cache.gc_plan().is_empty(), "clean cache has an empty plan");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn object_frame_rejects_tampering() {
        let framed = encode_object(ObjectKind::Curve, b"data");
        assert_eq!(decode_object(&framed, Some(ObjectKind::Curve)).unwrap(), b"data");
        assert!(matches!(
            decode_object(&framed[..10], None),
            Err(StoreError::Truncated { .. })
        ));
        let mut bad_magic = framed.clone();
        bad_magic[0] = b'Z';
        assert!(matches!(
            decode_object(&bad_magic, None),
            Err(StoreError::BadMagic { .. })
        ));
        let mut bad_version = framed.clone();
        bad_version[4] = 9;
        assert!(matches!(
            decode_object(&bad_version, None),
            Err(StoreError::UnsupportedVersion { .. })
        ));
        let mut bad_kind = framed.clone();
        bad_kind[8] = 77;
        assert!(matches!(
            decode_object(&bad_kind, None),
            Err(StoreError::HeaderCorrupt)
        ));
        let mut bad_payload = framed.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 0x20;
        assert!(matches!(
            decode_object(&bad_payload, None),
            Err(StoreError::PayloadCorrupt)
        ));
    }

    #[test]
    fn global_handle_configure_and_deactivate() {
        // Serialised against other global-state tests by using a unique
        // root and restoring the empty state afterwards.
        let root = temp_root("global");
        configure(&root, true).unwrap();
        let h = active().expect("configured");
        assert!(h.resume);
        assert_eq!(h.cache.root(), root.as_path());
        deactivate();
        assert!(active().is_none());
        fs::remove_dir_all(&root).unwrap();
    }
}
