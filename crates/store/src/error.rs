//! Error type for store operations.

use std::fmt;
use std::path::PathBuf;

/// Errors produced by the artifact store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// What the file claimed to be.
        found: [u8; 4],
        /// What this reader expected.
        expected: [u8; 4],
    },
    /// The format version is newer (or older) than this reader supports.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The header checksum does not match its contents.
    HeaderCorrupt,
    /// The payload checksum does not match, or its size disagrees with
    /// the header.
    PayloadCorrupt,
    /// The file ends before the header or payload does.
    Truncated {
        /// Bytes expected (at least).
        expected: usize,
        /// Bytes present.
        found: usize,
    },
    /// The payload decoded cleanly but violates a topology invariant
    /// (unsorted adjacency, asymmetric edge, id out of range, …).
    InvalidTopology(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "io error on `{}`: {source}", path.display()),
            Self::BadMagic { found, expected } => write!(
                f,
                "bad magic {:02x?} (expected {:02x?} — not a store file?)",
                found, expected
            ),
            Self::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported format version {found} (reader supports {supported})")
            }
            Self::HeaderCorrupt => write!(f, "header checksum mismatch"),
            Self::PayloadCorrupt => write!(f, "payload checksum or size mismatch"),
            Self::Truncated { expected, found } => {
                write!(f, "file truncated: need at least {expected} bytes, have {found}")
            }
            Self::InvalidTopology(reason) => write!(f, "invalid topology payload: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Wrap an I/O error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        Self::Io {
            path: path.into(),
            source,
        }
    }

    /// Whether this error means "the bytes are damaged" (as opposed to
    /// an I/O failure or a version/feature mismatch).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            Self::HeaderCorrupt
                | Self::PayloadCorrupt
                | Self::Truncated { .. }
                | Self::BadMagic { .. }
                | Self::InvalidTopology(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StoreError::BadMagic {
            found: *b"XXXX",
            expected: *b"MCTB",
        };
        assert!(e.to_string().contains("bad magic"));
        assert!(StoreError::HeaderCorrupt.to_string().contains("header"));
        assert!(StoreError::Truncated {
            expected: 96,
            found: 3
        }
        .to_string()
        .contains("96"));
        let io = StoreError::io("/nope", std::io::Error::new(std::io::ErrorKind::Other, "x"));
        assert!(io.to_string().contains("/nope"));
        assert!(std::error::Error::source(&io).is_some());
    }

    #[test]
    fn corruption_classification() {
        assert!(StoreError::HeaderCorrupt.is_corruption());
        assert!(StoreError::PayloadCorrupt.is_corruption());
        assert!(StoreError::InvalidTopology("x".into()).is_corruption());
        assert!(!StoreError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .is_corruption());
        assert!(!StoreError::io("/", std::io::Error::new(std::io::ErrorKind::Other, "x"))
            .is_corruption());
    }
}
