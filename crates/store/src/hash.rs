//! Content hashing for the artifact store.
//!
//! Everything in the store is addressed by a SHA-256 digest, implemented
//! here in plain `std` (the crate carries no external dependencies, and
//! `std`'s `DefaultHasher` makes no cross-version stability promise —
//! cache keys must outlive compiler upgrades). Throughput is irrelevant:
//! the store hashes topology encodings and result payloads, kilobytes to
//! a few megabytes per run, against Monte-Carlo measurements that take
//! seconds to minutes.
//!
//! [`KeyBuilder`] derives *cache keys* from named fields. Two properties
//! make keys safe to persist:
//!
//! * **byte-order stability** — every integer is serialised explicitly
//!   little-endian, so the same logical inputs hash identically on any
//!   host;
//! * **field-order stability** — fields are sorted by tag before hashing,
//!   so reordering the builder calls (or the struct fields they mirror)
//!   cannot silently change the key. Changing a tag name, a value, or the
//!   domain *does* change the key, which is exactly the invalidation we
//!   want.

use std::fmt;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Lower-case hex encoding (64 characters).
    pub fn to_hex(&self) -> String {
        const HEX: &[u8; 16] = b"0123456789abcdef";
        let mut s = String::with_capacity(64);
        for &b in &self.0 {
            s.push(HEX[(b >> 4) as usize] as char);
            s.push(HEX[(b & 0xf) as usize] as char);
        }
        s
    }

    /// Parse a 64-character lower/upper-case hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Self(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// FIPS 180-4 round constants (fractional parts of cube roots of the
/// first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Streaming SHA-256.
///
/// ```
/// use mcast_store::hash::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                // The input fit inside the partial block; the remainder
                // logic below must not clobber the buffered prefix.
                debug_assert!(rest.is_empty());
                return;
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        let mut chunks = rest.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Absorb a `u64` in little-endian byte order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Finish and return the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append: update() would double-count total_len.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        let add = [a, b, c, d, e, f, g, h];
        for (s, v) in self.state.iter_mut().zip(add) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot SHA-256 of a byte slice.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// A cache key: the digest of a domain-separated, sorted field set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Key(pub Digest);

impl Key {
    /// Hex form of the key (used as the on-disk object name).
    pub fn hex(&self) -> String {
        self.0.to_hex()
    }

    /// Parse an on-disk object name back into a key.
    pub fn from_hex(s: &str) -> Option<Self> {
        Digest::from_hex(s).map(Self)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Derives a [`Key`] from named fields (see module docs for the
/// stability guarantees).
///
/// ```
/// use mcast_store::hash::KeyBuilder;
/// let a = KeyBuilder::new("demo").u64("seed", 7).str("kind", "x").finish();
/// let b = KeyBuilder::new("demo").str("kind", "x").u64("seed", 7).finish();
/// assert_eq!(a, b, "field order never matters");
/// let c = KeyBuilder::new("demo").u64("seed", 8).str("kind", "x").finish();
/// assert_ne!(a, c, "values always matter");
/// ```
pub struct KeyBuilder {
    domain: String,
    fields: Vec<(String, Vec<u8>)>,
}

impl KeyBuilder {
    /// Builder for keys in `domain` (e.g. `"curve"`, `"figure"`).
    pub fn new(domain: &str) -> Self {
        Self {
            domain: domain.to_string(),
            fields: Vec::new(),
        }
    }

    /// Add a raw byte field.
    ///
    /// # Panics
    /// Panics if `tag` was already added — a duplicated tag means two
    /// callers disagree about what the field holds.
    pub fn bytes(mut self, tag: &str, data: &[u8]) -> Self {
        assert!(
            self.fields.iter().all(|(t, _)| t != tag),
            "duplicate key field tag `{tag}`"
        );
        self.fields.push((tag.to_string(), data.to_vec()));
        self
    }

    /// Add a `u64` field (serialised little-endian).
    pub fn u64(self, tag: &str, v: u64) -> Self {
        self.bytes(tag, &v.to_le_bytes())
    }

    /// Add a UTF-8 string field.
    pub fn str(self, tag: &str, s: &str) -> Self {
        self.bytes(tag, s.as_bytes())
    }

    /// Add a `u64` sequence field (length-prefixed, little-endian).
    pub fn u64s(self, tag: &str, vals: &[u64]) -> Self {
        let mut buf = Vec::with_capacity(8 + vals.len() * 8);
        buf.extend_from_slice(&(vals.len() as u64).to_le_bytes());
        for v in vals {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.bytes(tag, &buf)
    }

    /// Hash the domain and the tag-sorted fields into a [`Key`].
    pub fn finish(mut self) -> Key {
        self.fields.sort_by(|a, b| a.0.cmp(&b.0));
        let mut h = Sha256::new();
        h.update(b"mcast-store-key-v1");
        h.update_u64(self.domain.len() as u64);
        h.update(self.domain.as_bytes());
        for (tag, payload) in &self.fields {
            h.update_u64(tag.len() as u64);
            h.update(tag.as_bytes());
            h.update_u64(payload.len() as u64);
            h.update(payload);
        }
        Key(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vectors() {
        // FIPS 180-4 / NIST examples.
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 % 251) as u8).collect();
        let whole = sha256(&data);
        for split in [0, 1, 63, 64, 65, 128, 200, data.len()] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn key_field_order_is_irrelevant_but_everything_else_matters() {
        let base = KeyBuilder::new("d")
            .u64("seed", 1)
            .str("kind", "ratio")
            .u64s("xs", &[1, 2, 3])
            .finish();
        let reordered = KeyBuilder::new("d")
            .u64s("xs", &[1, 2, 3])
            .str("kind", "ratio")
            .u64("seed", 1)
            .finish();
        assert_eq!(base, reordered);
        // Domain, tag names, and values all perturb the key.
        assert_ne!(KeyBuilder::new("e").u64("seed", 1).finish(), base);
        assert_ne!(
            KeyBuilder::new("d")
                .u64("sd", 1)
                .str("kind", "ratio")
                .u64s("xs", &[1, 2, 3])
                .finish(),
            base
        );
        assert_ne!(
            KeyBuilder::new("d")
                .u64("seed", 2)
                .str("kind", "ratio")
                .u64s("xs", &[1, 2, 3])
                .finish(),
            base
        );
        assert_ne!(
            KeyBuilder::new("d")
                .u64("seed", 1)
                .str("kind", "ratio")
                .u64s("xs", &[1, 2])
                .finish(),
            base
        );
    }

    #[test]
    fn key_golden_value_is_pinned() {
        // Golden digest: if the key derivation scheme changes in ANY way
        // (encoding, ordering, separators), this test fails and the
        // format version must be bumped so stale caches are not read.
        let k = KeyBuilder::new("golden")
            .u64("a", 0x0123_4567_89ab_cdef)
            .str("b", "value")
            .u64s("c", &[42])
            .finish();
        assert_eq!(
            k.hex(),
            "1f34fa88b96c7103299488f2ea960d8b28f09911167bd5f20869892327ab47ac"
        );
        assert_eq!(
            k.hex(),
            KeyBuilder::new("golden")
                .u64s("c", &[42])
                .u64("a", 0x0123_4567_89ab_cdef)
                .str("b", "value")
                .finish()
                .hex()
        );
        // Length-prefixing prevents field-boundary ambiguity.
        let ab = KeyBuilder::new("g").str("t", "ab").str("u", "c").finish();
        let a_bc = KeyBuilder::new("g").str("t", "a").str("u", "bc").finish();
        assert_ne!(ab, a_bc);
    }

    #[test]
    #[should_panic(expected = "duplicate key field tag")]
    fn duplicate_tags_panic() {
        let _ = KeyBuilder::new("d").u64("x", 1).u64("x", 2);
    }
}
