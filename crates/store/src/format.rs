//! The versioned binary topology format (`.mct`).
//!
//! Layout (all integers little-endian, regardless of host byte order):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MCTB"
//! 4       4     format version (u32, currently 1)
//! 8       8     node count (u64)
//! 16      8     undirected edge count (u64)
//! 24      8     payload length in bytes (u64)
//! 32      32    SHA-256 of the payload
//! 64      32    SHA-256 of header bytes 0..64
//! 96      …     payload:
//!                 (node count + 1) × u64   CSR offsets
//!                 2 × edge count   × u32   CSR neighbour ids
//! ```
//!
//! The header is checksummed separately from the payload so a reader can
//! cheaply distinguish "not a topology file / damaged header" from
//! "valid header, damaged payload", and `verify` can report which. The
//! CSR arrays are persisted verbatim — loading performs **no** rebuild,
//! but every graph invariant (sorted adjacency, symmetry, no self-loops)
//! is re-validated through [`mcast_topology::graph::try_from_csr`], so a
//! forged payload cannot smuggle in a graph the builder could not have
//! produced (which would silently change BFS tie-breaks).

use crate::atomic::write_atomic;
use crate::error::StoreError;
use crate::hash::{sha256, Digest};
use mcast_topology::graph::{try_from_csr, NodeId};
use mcast_topology::Graph;
use std::path::Path;

/// Magic bytes of a packed topology file.
pub const MAGIC: [u8; 4] = *b"MCTB";
/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;
/// Total header length in bytes.
pub const HEADER_LEN: usize = 96;

/// Encode a graph into the binary topology format.
pub fn encode_graph(graph: &Graph) -> Vec<u8> {
    let offsets = graph.csr_offsets();
    let neighbors = graph.csr_neighbors();
    let payload_len = offsets.len() * 8 + neighbors.len() * 4;
    let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(graph.node_count() as u64).to_le_bytes());
    out.extend_from_slice(&(graph.edge_count() as u64).to_le_bytes());
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());

    let mut payload = Vec::with_capacity(payload_len);
    for &o in offsets {
        payload.extend_from_slice(&(o as u64).to_le_bytes());
    }
    for &v in neighbors {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    debug_assert_eq!(payload.len(), payload_len);

    out.extend_from_slice(&sha256(&payload).0);
    let header_hash = sha256(&out[..64]);
    out.extend_from_slice(&header_hash.0);
    out.extend_from_slice(&payload);
    out
}

/// Parsed header of a packed topology (exposed for `mcs topo verify`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyHeader {
    /// Format version.
    pub version: u32,
    /// Node count.
    pub nodes: u64,
    /// Undirected edge count.
    pub edges: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Payload checksum.
    pub payload_sha: Digest,
}

/// Decode and validate the 96-byte header.
pub fn decode_header(data: &[u8]) -> Result<TopologyHeader, StoreError> {
    if data.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN,
            found: data.len(),
        });
    }
    let mut found = [0u8; 4];
    found.copy_from_slice(&data[0..4]);
    if found != MAGIC {
        return Err(StoreError::BadMagic {
            found,
            expected: MAGIC,
        });
    }
    let stored = &data[64..96];
    if sha256(&data[..64]).0 != *stored {
        return Err(StoreError::HeaderCorrupt);
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut sha = [0u8; 32];
    sha.copy_from_slice(&data[32..64]);
    Ok(TopologyHeader {
        version,
        nodes: u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")),
        edges: u64::from_le_bytes(data[16..24].try_into().expect("8 bytes")),
        payload_len: u64::from_le_bytes(data[24..32].try_into().expect("8 bytes")),
        payload_sha: Digest(sha),
    })
}

/// Decode a packed topology, validating header checksum, payload
/// checksum, and every graph invariant.
pub fn decode_graph(data: &[u8]) -> Result<Graph, StoreError> {
    let header = decode_header(data)?;
    let expected_payload = (header.nodes as usize + 1)
        .checked_mul(8)
        .and_then(|o| o.checked_add(header.edges as usize * 2 * 4))
        .ok_or(StoreError::PayloadCorrupt)?;
    if header.payload_len as usize != expected_payload {
        return Err(StoreError::PayloadCorrupt);
    }
    let expected_total = HEADER_LEN + expected_payload;
    if data.len() < expected_total {
        return Err(StoreError::Truncated {
            expected: expected_total,
            found: data.len(),
        });
    }
    if data.len() > expected_total {
        return Err(StoreError::PayloadCorrupt);
    }
    let payload = &data[HEADER_LEN..];
    if sha256(payload) != header.payload_sha {
        return Err(StoreError::PayloadCorrupt);
    }
    let n = header.nodes as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for chunk in payload[..(n + 1) * 8].chunks_exact(8) {
        let v = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        let v: usize = v
            .try_into()
            .map_err(|_| StoreError::InvalidTopology("offset exceeds usize".into()))?;
        offsets.push(v);
    }
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(header.edges as usize * 2);
    for chunk in payload[(n + 1) * 8..].chunks_exact(4) {
        neighbors.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
    }
    let graph = try_from_csr(offsets, neighbors)
        .map_err(|e| StoreError::InvalidTopology(e.to_string()))?;
    if graph.edge_count() as u64 != header.edges {
        return Err(StoreError::InvalidTopology(
            "header edge count disagrees with payload".into(),
        ));
    }
    Ok(graph)
}

/// Save a graph to `path` (atomically).
pub fn save_graph(path: &Path, graph: &Graph) -> Result<(), StoreError> {
    write_atomic(path, &encode_graph(graph))
}

/// Load a graph from `path`.
pub fn load_graph(path: &Path) -> Result<Graph, StoreError> {
    let data = std::fs::read(path).map_err(|e| StoreError::io(path, e))?;
    decode_graph(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    fn demo_graph() -> Graph {
        from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (4, 5)])
    }

    #[test]
    fn round_trip_preserves_graph_exactly() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(g, back);
        // Isolated node 6 survives.
        assert_eq!(back.node_count(), 7);
        assert_eq!(back.degree(6), 0);
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = demo_graph();
        assert_eq!(encode_graph(&g), encode_graph(&g));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = from_edges(0, &[]);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn header_reports_counts() {
        let g = demo_graph();
        let h = decode_header(&encode_graph(&g)).unwrap();
        assert_eq!(h.version, FORMAT_VERSION);
        assert_eq!(h.nodes, 7);
        assert_eq!(h.edges, 6);
        assert_eq!(h.payload_len, 8 * 8 + 12 * 4);
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        assert!(matches!(
            decode_graph(&bytes[..10]),
            Err(StoreError::Truncated { .. })
        ));
        let mut forged = bytes.clone();
        forged[0] = b'X';
        assert!(matches!(
            decode_graph(&forged),
            Err(StoreError::BadMagic { .. })
        ));
        // Truncated payload (header intact).
        assert!(matches!(
            decode_graph(&bytes[..bytes.len() - 1]),
            Err(StoreError::Truncated { .. })
        ));
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_graph(&extended),
            Err(StoreError::PayloadCorrupt)
        ));
    }

    #[test]
    fn corrupted_header_fields_are_detected() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        // Any header byte flip (after magic) → HeaderCorrupt, because the
        // header hash no longer matches. A version flip is also caught by
        // the checksum before the version check runs.
        for idx in [5usize, 9, 17, 25, 40] {
            let mut forged = bytes.clone();
            forged[idx] ^= 0xff;
            assert!(
                matches!(decode_graph(&forged), Err(StoreError::HeaderCorrupt)),
                "byte {idx}"
            );
        }
        // A *consistently re-checksummed* wrong version is typed.
        let mut forged = bytes.clone();
        forged[4..8].copy_from_slice(&99u32.to_le_bytes());
        let rehash = sha256(&forged[..64]);
        forged[64..96].copy_from_slice(&rehash.0);
        assert!(matches!(
            decode_graph(&forged),
            Err(StoreError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        for idx in [HEADER_LEN, HEADER_LEN + 9, bytes.len() - 1] {
            let mut forged = bytes.clone();
            forged[idx] ^= 0x01;
            assert!(
                matches!(decode_graph(&forged), Err(StoreError::PayloadCorrupt)),
                "byte {idx}"
            );
        }
    }

    #[test]
    fn forged_but_rechecksummed_payload_fails_invariants() {
        // Rewrite a neighbour id and fix up both checksums: the CSR
        // validator must still reject it (asymmetric edge).
        let g = demo_graph();
        let mut bytes = encode_graph(&g);
        let ndir = g.csr_neighbors().len();
        let last = HEADER_LEN + (g.node_count() + 1) * 8 + (ndir - 1) * 4;
        bytes[last..last + 4].copy_from_slice(&0u32.to_le_bytes());
        let payload_sha = sha256(&bytes[HEADER_LEN..]);
        bytes[32..64].copy_from_slice(&payload_sha.0);
        let header_sha = sha256(&bytes[..64]);
        bytes[64..96].copy_from_slice(&header_sha.0);
        assert!(matches!(
            decode_graph(&bytes),
            Err(StoreError::InvalidTopology(_))
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("mcast-store-fmt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("demo.mct");
        let g = demo_graph();
        save_graph(&path, &g).unwrap();
        assert_eq!(load_graph(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
