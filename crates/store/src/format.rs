//! The versioned binary topology format (`.mct`).
//!
//! Layout (all integers little-endian, regardless of host byte order):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"MCTB"
//! 4       4     format version (u32, currently 1)
//! 8       8     node count (u64)
//! 16      8     undirected edge count (u64)
//! 24      8     payload length in bytes (u64)
//! 32      32    SHA-256 of the payload
//! 64      32    SHA-256 of header bytes 0..64
//! 96      …     payload:
//!                 (node count + 1) × u64   CSR offsets
//!                 2 × edge count   × u32   CSR neighbour ids
//! ```
//!
//! The header is checksummed separately from the payload so a reader can
//! cheaply distinguish "not a topology file / damaged header" from
//! "valid header, damaged payload", and `verify` can report which. The
//! CSR arrays are persisted verbatim — loading performs **no** rebuild,
//! but every graph invariant (sorted adjacency, symmetry, no self-loops)
//! is re-validated through [`mcast_topology::graph::try_from_csr`], so a
//! forged payload cannot smuggle in a graph the builder could not have
//! produced (which would silently change BFS tie-breaks).

use crate::atomic::write_atomic_with;
use crate::error::StoreError;
use crate::hash::{sha256, Digest, Sha256};
use mcast_topology::graph::{try_from_csr, NodeId};
use mcast_topology::Graph;
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Magic bytes of a packed topology file.
pub const MAGIC: [u8; 4] = *b"MCTB";
/// Current (and only) format version.
pub const FORMAT_VERSION: u32 = 1;
/// Total header length in bytes.
pub const HEADER_LEN: usize = 96;

/// Chunk granularity of the streaming save/load paths (a multiple of 8,
/// so serialised offsets and neighbour ids never straddle a chunk).
const STREAM_CHUNK: usize = 1 << 20;

/// Serialise the payload bytes of `graph` — `(n+1)×u64` offsets then
/// `2E×u32` neighbours, little-endian — in chunks of at most
/// [`STREAM_CHUNK`] bytes. Both the in-RAM encoder and the out-of-core
/// save stream through this one serialiser, so their bytes cannot drift.
fn for_each_payload_chunk<F>(graph: &Graph, mut f: F) -> Result<(), StoreError>
where
    F: FnMut(&[u8]) -> Result<(), StoreError>,
{
    let mut buf = Vec::with_capacity(STREAM_CHUNK.min(payload_len_of(graph) + 8));
    for o in graph.csr_offsets().iter() {
        buf.extend_from_slice(&(o as u64).to_le_bytes());
        if buf.len() + 8 > STREAM_CHUNK {
            f(&buf)?;
            buf.clear();
        }
    }
    for &v in graph.csr_neighbors() {
        buf.extend_from_slice(&v.to_le_bytes());
        if buf.len() + 4 > STREAM_CHUNK {
            f(&buf)?;
            buf.clear();
        }
    }
    if !buf.is_empty() {
        f(&buf)?;
    }
    Ok(())
}

/// Payload length in bytes for `graph`.
fn payload_len_of(graph: &Graph) -> usize {
    graph.csr_offsets().len() * 8 + graph.csr_neighbors().len() * 4
}

/// Compose the 96-byte header for a payload hashing to `payload_sha`.
fn header_bytes(nodes: u64, edges: u64, payload_len: u64, payload_sha: &Digest) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&nodes.to_le_bytes());
    h[16..24].copy_from_slice(&edges.to_le_bytes());
    h[24..32].copy_from_slice(&payload_len.to_le_bytes());
    h[32..64].copy_from_slice(&payload_sha.0);
    let header_sha = sha256(&h[..64]);
    h[64..96].copy_from_slice(&header_sha.0);
    h
}

/// Hash the payload of `graph` without materialising it.
fn payload_sha_of(graph: &Graph) -> Digest {
    let mut hasher = Sha256::new();
    for_each_payload_chunk(graph, |chunk| {
        hasher.update(chunk);
        Ok(())
    })
    .expect("hashing cannot fail");
    hasher.finalize()
}

/// Encode a graph into the binary topology format, in RAM.
///
/// This materialises header + payload as one byte vector — fine for the
/// fast/paper tiers and for cache-key hashing; the `huge` tier persists
/// through [`save_graph`], which streams the identical bytes to disk
/// without the intermediate vector.
pub fn encode_graph(graph: &Graph) -> Vec<u8> {
    let payload_len = payload_len_of(graph);
    let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
    out.extend_from_slice(&header_bytes(
        graph.node_count() as u64,
        graph.edge_count() as u64,
        payload_len as u64,
        &payload_sha_of(graph),
    ));
    for_each_payload_chunk(graph, |chunk| {
        out.extend_from_slice(chunk);
        Ok(())
    })
    .expect("vector append cannot fail");
    debug_assert_eq!(out.len(), HEADER_LEN + payload_len);
    out
}

/// Parsed header of a packed topology (exposed for `mcs topo verify`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyHeader {
    /// Format version.
    pub version: u32,
    /// Node count.
    pub nodes: u64,
    /// Undirected edge count.
    pub edges: u64,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Payload checksum.
    pub payload_sha: Digest,
}

/// Decode and validate the 96-byte header.
pub fn decode_header(data: &[u8]) -> Result<TopologyHeader, StoreError> {
    if data.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN,
            found: data.len(),
        });
    }
    let mut found = [0u8; 4];
    found.copy_from_slice(&data[0..4]);
    if found != MAGIC {
        return Err(StoreError::BadMagic {
            found,
            expected: MAGIC,
        });
    }
    let stored = &data[64..96];
    if sha256(&data[..64]).0 != *stored {
        return Err(StoreError::HeaderCorrupt);
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let mut sha = [0u8; 32];
    sha.copy_from_slice(&data[32..64]);
    Ok(TopologyHeader {
        version,
        nodes: u64::from_le_bytes(data[8..16].try_into().expect("8 bytes")),
        edges: u64::from_le_bytes(data[16..24].try_into().expect("8 bytes")),
        payload_len: u64::from_le_bytes(data[24..32].try_into().expect("8 bytes")),
        payload_sha: Digest(sha),
    })
}

/// Payload length a valid header implies, with fully checked arithmetic.
///
/// A forged header can claim node/edge counts near `u64::MAX`; naive
/// `edges * 8` arithmetic would wrap on 64-bit hosts (and `as usize`
/// truncates on 32-bit ones), making a corrupt file look internally
/// consistent. Every step here is checked, so such headers are rejected
/// as [`StoreError::PayloadCorrupt`] instead.
fn expected_payload_len(header: &TopologyHeader) -> Result<usize, StoreError> {
    let nodes: usize = header
        .nodes
        .try_into()
        .map_err(|_| StoreError::PayloadCorrupt)?;
    let edges: usize = header
        .edges
        .try_into()
        .map_err(|_| StoreError::PayloadCorrupt)?;
    nodes
        .checked_add(1)
        .and_then(|n1| n1.checked_mul(8))
        .and_then(|o| edges.checked_mul(8)?.checked_add(o))
        .ok_or(StoreError::PayloadCorrupt)
}

/// Decode a packed topology, validating header checksum, payload
/// checksum, and every graph invariant.
pub fn decode_graph(data: &[u8]) -> Result<Graph, StoreError> {
    let header = decode_header(data)?;
    let expected_payload = expected_payload_len(&header)?;
    if header.payload_len as usize != expected_payload {
        return Err(StoreError::PayloadCorrupt);
    }
    let expected_total = HEADER_LEN + expected_payload;
    if data.len() < expected_total {
        return Err(StoreError::Truncated {
            expected: expected_total,
            found: data.len(),
        });
    }
    if data.len() > expected_total {
        return Err(StoreError::PayloadCorrupt);
    }
    let payload = &data[HEADER_LEN..];
    if sha256(payload) != header.payload_sha {
        return Err(StoreError::PayloadCorrupt);
    }
    let n = header.nodes as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for chunk in payload[..(n + 1) * 8].chunks_exact(8) {
        let v = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        let v: usize = v
            .try_into()
            .map_err(|_| StoreError::InvalidTopology("offset exceeds usize".into()))?;
        offsets.push(v);
    }
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(header.edges as usize * 2);
    for chunk in payload[(n + 1) * 8..].chunks_exact(4) {
        neighbors.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
    }
    let graph = try_from_csr(offsets, neighbors)
        .map_err(|e| StoreError::InvalidTopology(e.to_string()))?;
    if graph.edge_count() as u64 != header.edges {
        return Err(StoreError::InvalidTopology(
            "header edge count disagrees with payload".into(),
        ));
    }
    Ok(graph)
}

/// Save a graph to `path` (atomically), streaming the payload.
///
/// Byte-identical to `write_atomic(path, &encode_graph(graph))` but the
/// encoded file never exists as one vector in RAM: pass one hashes the
/// payload chunkwise, pass two re-serialises the same chunks straight
/// into the buffered temp-file writer. At the `huge` tier this keeps the
/// save-side footprint at one [`STREAM_CHUNK`] instead of ~1.5× the
/// graph's own size.
pub fn save_graph(path: &Path, graph: &Graph) -> Result<(), StoreError> {
    let header = header_bytes(
        graph.node_count() as u64,
        graph.edge_count() as u64,
        payload_len_of(graph) as u64,
        &payload_sha_of(graph),
    );
    write_atomic_with(path, |w| {
        w.write_all(&header).map_err(|e| StoreError::io(path, e))?;
        for_each_payload_chunk(graph, |chunk| {
            w.write_all(chunk).map_err(|e| StoreError::io(path, e))
        })
    })
}

/// Load a graph from `path`, streaming the payload.
///
/// Same validation and error typing as [`decode_graph`] on the whole
/// file, but the payload is read in [`STREAM_CHUNK`]-sized pieces and
/// parsed directly into the CSR vectors, so the raw bytes and the graph
/// never coexist in RAM.
pub fn load_graph(path: &Path) -> Result<Graph, StoreError> {
    let file = std::fs::File::open(path).map_err(|e| StoreError::io(path, e))?;
    let file_len: usize = file
        .metadata()
        .map_err(|e| StoreError::io(path, e))?
        .len()
        .try_into()
        .map_err(|_| StoreError::PayloadCorrupt)?;
    let mut reader = std::io::BufReader::new(file);

    let mut header_buf = [0u8; HEADER_LEN];
    if file_len < HEADER_LEN {
        // Match decode_graph on short files: report how much was found.
        return Err(StoreError::Truncated {
            expected: HEADER_LEN,
            found: file_len,
        });
    }
    reader
        .read_exact(&mut header_buf)
        .map_err(|e| StoreError::io(path, e))?;
    let header = decode_header(&header_buf)?;
    let expected_payload = expected_payload_len(&header)?;
    if header.payload_len as usize != expected_payload {
        return Err(StoreError::PayloadCorrupt);
    }
    let expected_total = HEADER_LEN + expected_payload;
    if file_len < expected_total {
        return Err(StoreError::Truncated {
            expected: expected_total,
            found: file_len,
        });
    }
    if file_len > expected_total {
        return Err(StoreError::PayloadCorrupt);
    }

    let n = header.nodes as usize;
    let mut offsets: Vec<usize> = Vec::with_capacity(n + 1);
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(header.edges as usize * 2);
    let mut hasher = Sha256::new();
    let mut remaining = expected_payload;
    let mut chunk = vec![0u8; STREAM_CHUNK.min(expected_payload.max(1))];
    // Offsets serialise before neighbours and STREAM_CHUNK is a multiple
    // of 8, so within each chunk the split point is byte-aligned.
    let mut offsets_bytes_left = (n + 1) * 8;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        let buf = &mut chunk[..take];
        reader.read_exact(buf).map_err(|e| StoreError::io(path, e))?;
        hasher.update(buf);
        let off_take = take.min(offsets_bytes_left);
        for b in buf[..off_take].chunks_exact(8) {
            let v = u64::from_le_bytes(b.try_into().expect("8 bytes"));
            let v: usize = v
                .try_into()
                .map_err(|_| StoreError::InvalidTopology("offset exceeds usize".into()))?;
            offsets.push(v);
        }
        offsets_bytes_left -= off_take;
        for b in buf[off_take..].chunks_exact(4) {
            neighbors.push(u32::from_le_bytes(b.try_into().expect("4 bytes")));
        }
        remaining -= take;
    }
    if hasher.finalize() != header.payload_sha {
        return Err(StoreError::PayloadCorrupt);
    }
    let graph = try_from_csr(offsets, neighbors)
        .map_err(|e| StoreError::InvalidTopology(e.to_string()))?;
    if graph.edge_count() as u64 != header.edges {
        return Err(StoreError::InvalidTopology(
            "header edge count disagrees with payload".into(),
        ));
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcast_topology::graph::from_edges;

    fn demo_graph() -> Graph {
        from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (4, 5)])
    }

    #[test]
    fn round_trip_preserves_graph_exactly() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(g, back);
        // Isolated node 6 survives.
        assert_eq!(back.node_count(), 7);
        assert_eq!(back.degree(6), 0);
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = demo_graph();
        assert_eq!(encode_graph(&g), encode_graph(&g));
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = from_edges(0, &[]);
        let back = decode_graph(&encode_graph(&g)).unwrap();
        assert_eq!(back.node_count(), 0);
        assert_eq!(back.edge_count(), 0);
    }

    #[test]
    fn header_reports_counts() {
        let g = demo_graph();
        let h = decode_header(&encode_graph(&g)).unwrap();
        assert_eq!(h.version, FORMAT_VERSION);
        assert_eq!(h.nodes, 7);
        assert_eq!(h.edges, 6);
        assert_eq!(h.payload_len, 8 * 8 + 12 * 4);
    }

    #[test]
    fn bad_magic_and_truncation_are_typed() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        assert!(matches!(
            decode_graph(&bytes[..10]),
            Err(StoreError::Truncated { .. })
        ));
        let mut forged = bytes.clone();
        forged[0] = b'X';
        assert!(matches!(
            decode_graph(&forged),
            Err(StoreError::BadMagic { .. })
        ));
        // Truncated payload (header intact).
        assert!(matches!(
            decode_graph(&bytes[..bytes.len() - 1]),
            Err(StoreError::Truncated { .. })
        ));
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(matches!(
            decode_graph(&extended),
            Err(StoreError::PayloadCorrupt)
        ));
    }

    #[test]
    fn corrupted_header_fields_are_detected() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        // Any header byte flip (after magic) → HeaderCorrupt, because the
        // header hash no longer matches. A version flip is also caught by
        // the checksum before the version check runs.
        for idx in [5usize, 9, 17, 25, 40] {
            let mut forged = bytes.clone();
            forged[idx] ^= 0xff;
            assert!(
                matches!(decode_graph(&forged), Err(StoreError::HeaderCorrupt)),
                "byte {idx}"
            );
        }
        // A *consistently re-checksummed* wrong version is typed.
        let mut forged = bytes.clone();
        forged[4..8].copy_from_slice(&99u32.to_le_bytes());
        let rehash = sha256(&forged[..64]);
        forged[64..96].copy_from_slice(&rehash.0);
        assert!(matches!(
            decode_graph(&forged),
            Err(StoreError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let g = demo_graph();
        let bytes = encode_graph(&g);
        for idx in [HEADER_LEN, HEADER_LEN + 9, bytes.len() - 1] {
            let mut forged = bytes.clone();
            forged[idx] ^= 0x01;
            assert!(
                matches!(decode_graph(&forged), Err(StoreError::PayloadCorrupt)),
                "byte {idx}"
            );
        }
    }

    #[test]
    fn forged_but_rechecksummed_payload_fails_invariants() {
        // Rewrite a neighbour id and fix up both checksums: the CSR
        // validator must still reject it (asymmetric edge).
        let g = demo_graph();
        let mut bytes = encode_graph(&g);
        let ndir = g.csr_neighbors().len();
        let last = HEADER_LEN + (g.node_count() + 1) * 8 + (ndir - 1) * 4;
        bytes[last..last + 4].copy_from_slice(&0u32.to_le_bytes());
        let payload_sha = sha256(&bytes[HEADER_LEN..]);
        bytes[32..64].copy_from_slice(&payload_sha.0);
        let header_sha = sha256(&bytes[..64]);
        bytes[64..96].copy_from_slice(&header_sha.0);
        assert!(matches!(
            decode_graph(&bytes),
            Err(StoreError::InvalidTopology(_))
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("mcast-store-fmt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("demo.mct");
        let g = demo_graph();
        save_graph(&path, &g).unwrap();
        assert_eq!(load_graph(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_save_matches_in_ram_encoder_byte_for_byte() {
        // The cache keys hash encode_graph's bytes, so the streaming
        // writer must never diverge from the in-RAM encoder.
        let dir = std::env::temp_dir().join(format!("mcast-store-strm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("demo.mct");
        let g = demo_graph();
        save_graph(&path, &g).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), encode_graph(&g));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn forged_astronomical_edge_count_is_rejected_not_wrapped() {
        // edges ≈ 2^61 would wrap `edges * 8` on a 64-bit host if the
        // length arithmetic were unchecked; with a re-checksummed header
        // the only defence is expected_payload_len's checked math.
        let g = demo_graph();
        let mut forged = encode_graph(&g);
        forged[16..24].copy_from_slice(&(1u64 << 61).to_le_bytes());
        let rehash = sha256(&forged[..64]);
        forged[64..96].copy_from_slice(&rehash.0);
        assert!(matches!(
            decode_graph(&forged),
            Err(StoreError::PayloadCorrupt)
        ));
        // Same rejection through the streaming loader.
        let dir = std::env::temp_dir().join(format!("mcast-store-forge-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("forged.mct");
        write_atomic_with(&path, |w| {
            w.write_all(&forged).map_err(|e| StoreError::io(&path, e))
        })
        .unwrap();
        assert!(matches!(load_graph(&path), Err(StoreError::PayloadCorrupt)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_loader_types_errors_like_the_in_ram_decoder() {
        let dir = std::env::temp_dir().join(format!("mcast-store-lderr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = demo_graph();
        let bytes = encode_graph(&g);
        let write = |name: &str, data: &[u8]| {
            let p = dir.join(name);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&p, data).unwrap();
            p
        };
        // Short file → Truncated with the found length, like decode_graph.
        let p = write("short.mct", &bytes[..10]);
        assert!(matches!(
            load_graph(&p),
            Err(StoreError::Truncated {
                expected: HEADER_LEN,
                found: 10
            })
        ));
        // Truncated payload (header intact).
        let p = write("cut.mct", &bytes[..bytes.len() - 1]);
        assert!(matches!(load_graph(&p), Err(StoreError::Truncated { .. })));
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        let p = write("long.mct", &extended);
        assert!(matches!(load_graph(&p), Err(StoreError::PayloadCorrupt)));
        // Flipped payload byte → checksum mismatch.
        let mut flipped = bytes.clone();
        flipped[HEADER_LEN + 9] ^= 0x01;
        let p = write("flip.mct", &flipped);
        assert!(matches!(load_graph(&p), Err(StoreError::PayloadCorrupt)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
