//! Atomic file writes: temp file + rename.
//!
//! Every artifact the workspace persists — result CSV/JSON/SVG files,
//! cache objects, packed topologies — goes through [`write_atomic`], so a
//! run killed mid-write never leaves a truncated file at the destination
//! path. The temp file lives in the destination's directory (rename is
//! only atomic within a filesystem) and carries a pid + sequence suffix
//! so concurrent writers never collide.

use crate::error::StoreError;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide temp-name sequence (two threads writing the same
/// destination must not share a temp file).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `bytes` to `path` atomically: the destination either keeps its
/// old contents or holds the complete new contents, never a prefix.
///
/// Creates parent directories as needed. On any error the temp file is
/// removed (best effort) and the destination is untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    write_atomic_with(path, |w| {
        w.write_all(bytes)
            .map_err(|e| StoreError::io(path, e))
    })
}

/// [`write_atomic`] for producers that *stream* their contents instead of
/// materialising them: `emit` writes the complete new contents to the
/// buffered temp-file writer, and the rename happens only after `emit`
/// succeeds and the buffer is flushed. This is how multi-hundred-MiB
/// packed topologies reach disk without ever existing as one byte vector
/// in RAM. Same atomicity contract as [`write_atomic`]: on any error
/// (including one returned by `emit`) the temp file is removed (best
/// effort) and the destination is untouched.
pub fn write_atomic_with<F>(path: &Path, emit: F) -> Result<(), StoreError>
where
    F: FnOnce(&mut dyn std::io::Write) -> Result<(), StoreError>,
{
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| {
            StoreError::io(
                path,
                std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name"),
            )
        })?
        .to_owned();
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = std::ffi::OsString::from(format!(".{}-", std::process::id()));
    tmp_name.push(&file_name);
    tmp_name.push(format!(".{seq}.tmp"));
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let result = (|| {
        let f = fs::File::create(&tmp).map_err(|e| StoreError::io(&tmp, e))?;
        let mut w = std::io::BufWriter::new(f);
        emit(&mut w)?;
        let mut f = w
            .into_inner()
            .map_err(|e| StoreError::io(&tmp, e.into_error()))?;
        f.flush().map_err(|e| StoreError::io(&tmp, e))?;
        fs::rename(&tmp, path).map_err(|e| StoreError::io(path, e))
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`write_atomic`] for text content.
pub fn write_atomic_str(path: &Path, text: &str) -> Result<(), StoreError> {
    write_atomic(path, text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mcast-store-atomic-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_overwrites() {
        let d = temp_dir("basic");
        let p = d.join("a/b/out.txt");
        write_atomic_str(&p, "first").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "first");
        write_atomic_str(&p, "second").unwrap();
        assert_eq!(fs::read_to_string(&p).unwrap(), "second");
        // No temp litter left behind.
        let entries: Vec<_> = fs::read_dir(p.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries.len(), 1, "{entries:?}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn failure_leaves_destination_untouched() {
        let d = temp_dir("fail");
        let p = d.join("out.txt");
        write_atomic_str(&p, "good").unwrap();
        // Writing "through" a file as if it were a directory must fail …
        let bad = p.join("child.txt");
        assert!(write_atomic_str(&bad, "x").is_err());
        // … and the original survives.
        assert_eq!(fs::read_to_string(&p).unwrap(), "good");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn streamed_writer_cleans_up_on_emit_error() {
        let d = temp_dir("stream");
        let p = d.join("out.bin");
        write_atomic_str(&p, "keep").unwrap();
        // An emit failure after partial output must leave the original
        // contents and no temp litter.
        let err = write_atomic_with(&p, |w| {
            w.write_all(b"partial").map_err(|e| StoreError::io(Path::new("x"), e))?;
            Err(StoreError::HeaderCorrupt)
        });
        assert!(matches!(err, Err(StoreError::HeaderCorrupt)));
        assert_eq!(fs::read_to_string(&p).unwrap(), "keep");
        let entries: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries.len(), 1, "{entries:?}");
        fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn rootless_relative_path_errors_cleanly() {
        // A path with no file name is an input error, not a panic.
        let err = write_atomic_str(Path::new("/"), "x").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
    }
}
