//! `mcast-store`: the durability substrate for the multicast-scaling
//! workspace.
//!
//! The Monte-Carlo pipeline behind the Chuang–Sirbu study re-runs the
//! same expensive measurements constantly — tweak one figure, re-render
//! the suite, re-measure everything. This crate makes those runs
//! *incremental* and *interruptible* without compromising the
//! workspace's reproducibility contract (bit-identical curves at any
//! thread count):
//!
//! * [`format`] — a versioned, checksummed binary topology format
//!   (`.mct`): CSR arrays persisted verbatim, endian-stable, with every
//!   graph invariant re-validated on load. `mcs topo pack/unpack/verify`
//!   front it on the CLI.
//! * [`cache`] — a content-addressed result cache. Curves and figure
//!   reports are stored under a SHA-256 key derived from *all* of their
//!   inputs (topology bytes, measure config, seed, format version), so a
//!   second run of an unchanged suite is nearly pure cache hits and its
//!   artifacts are byte-identical to the first.
//! * [`checkpoint`] — append-only, torn-tail-tolerant checkpoints of
//!   partial measurement state. A killed measure resumed with `--resume`
//!   produces curves bit-identical to an uninterrupted run, because
//!   checkpoints hold only *fully measured* dedup groups and the merge
//!   discipline is index-ordered either way.
//! * [`hash`] — plain-`std` SHA-256 and the [`hash::KeyBuilder`] cache-key
//!   derivation (byte-order- and field-order-stable).
//! * [`atomic`] — temp-file + rename writes used for every artifact the
//!   workspace persists.
//!
//! Like `mcast-obs`, the crate is `std`-only and sits below the
//! experiment layer: it depends only on `mcast-topology` (to encode
//! graphs) and `mcast-obs` (to count hits/misses and checkpoint events).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomic;
pub mod cache;
pub mod checkpoint;
pub mod error;
pub mod format;
pub mod hash;

pub use atomic::{write_atomic, write_atomic_str};
pub use cache::{
    active, configure, deactivate, CacheHandle, DiskCache, GcCandidate, GcReason, ObjectKind,
};
pub use error::StoreError;
pub use format::{decode_graph, encode_graph, load_graph, save_graph, FORMAT_VERSION};
pub use hash::{sha256, Digest, Key, KeyBuilder};
