//! Property-based tests for the store's persistence formats.
//!
//! Three invariants the whole caching story rests on:
//!
//! 1. the binary topology format round-trips **any** graph the generators
//!    can produce, bit-exactly, at every scale the paper uses;
//! 2. damaged bytes never decode into a graph — every corruption is
//!    rejected with a typed [`StoreError`];
//! 3. cache keys depend only on field *values*, never on insertion
//!    order, and distinguish every distinct input.
//!
//! Strategies are seed-driven (`any::<u64>()` fans out into generator
//! choice, size, and corruption site) so the same tests run under both
//! real proptest and the offline harness's sampled-loop stub.

use mcast_gen::kary::KaryTree;
use mcast_gen::random::{gnp_connected, random_with_degree};
use mcast_gen::transit_stub::{transit_stub, TransitStubParams};
use mcast_store::checkpoint::{open, GroupRecord, IndexStats};
use mcast_store::{decode_graph, encode_graph, Key, KeyBuilder, StoreError};
use mcast_topology::graph::from_edges;
use mcast_topology::Graph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An arbitrary topology: the seed picks a generator family and its size,
/// covering trees, sparse random graphs, and degenerate shapes (empty,
/// isolated nodes, single edges).
fn arbitrary_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match seed % 5 {
        0 => {
            let n = 2 + (seed >> 8) as usize % 60;
            gnp_connected(n, 0.15, &mut rng).expect("gnp")
        }
        1 => {
            let k = 2 + (seed >> 8) as u32 % 3;
            let depth = 1 + (seed >> 16) as u32 % 4;
            KaryTree::new(k, depth).expect("kary").into_graph()
        }
        2 => {
            let n = 4 + (seed >> 8) as usize % 40;
            random_with_degree(n, 3.0, &mut rng).expect("degree")
        }
        3 => {
            // Degenerate shapes: empty, isolated nodes, one edge.
            match (seed >> 8) % 3 {
                0 => from_edges(0, &[]),
                1 => from_edges(5, &[]),
                _ => from_edges(3, &[(0, 1)]),
            }
        }
        _ => {
            // Raw edge soup with duplicates and self-loops; the builder
            // cleans it, the codec must preserve what the builder made.
            let n = 3 + (seed >> 8) as usize % 20;
            let mut edges = Vec::new();
            let mut s = seed;
            for _ in 0..(2 * n) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let u = (s >> 33) as u32 % n as u32;
                let v = (s >> 13) as u32 % n as u32;
                edges.push((u, v));
            }
            from_edges(n, &edges)
        }
    }
}

proptest! {
    #[test]
    fn format_round_trips_arbitrary_topologies(seed in any::<u64>()) {
        let g = arbitrary_graph(seed);
        let bytes = encode_graph(&g);
        let back = decode_graph(&bytes).expect("round trip");
        prop_assert_eq!(&g, &back);
        // Encoding is a pure function of the graph.
        prop_assert_eq!(bytes, encode_graph(&back));
    }

    #[test]
    fn any_single_byte_flip_is_rejected(seed in any::<u64>()) {
        let g = arbitrary_graph(seed);
        let mut bytes = encode_graph(&g);
        let idx = (seed >> 7) as usize % bytes.len();
        bytes[idx] ^= 1 + (seed >> 3) as u8 % 255;
        match decode_graph(&bytes) {
            Ok(_) => prop_assert!(false, "flip at byte {} decoded", idx),
            Err(e) => prop_assert!(
                e.is_corruption(),
                "flip at byte {} gave non-corruption error {}", idx, e
            ),
        }
    }

    #[test]
    fn any_strict_prefix_is_rejected(seed in any::<u64>()) {
        let g = arbitrary_graph(seed);
        let bytes = encode_graph(&g);
        let cut = (seed >> 9) as usize % bytes.len();
        match decode_graph(&bytes[..cut]) {
            Ok(_) => prop_assert!(false, "prefix of {} bytes decoded", cut),
            Err(e) => prop_assert!(e.is_corruption()),
        }
    }

    #[test]
    fn keys_ignore_field_order_but_not_values(a in any::<u64>(), b in any::<u64>()) {
        let fwd = KeyBuilder::new("prop")
            .u64("alpha", a)
            .u64("beta", b)
            .u64s("xs", &[a, b])
            .finish();
        let rev = KeyBuilder::new("prop")
            .u64s("xs", &[a, b])
            .u64("beta", b)
            .u64("alpha", a)
            .finish();
        prop_assert_eq!(fwd, rev);
        if a != b {
            // Swapping values across fields must change the key.
            let swapped = KeyBuilder::new("prop")
                .u64("alpha", b)
                .u64("beta", a)
                .u64s("xs", &[a, b])
                .finish();
            prop_assert!(fwd != swapped);
            // So must reordering a sequence-valued field.
            let resequenced = KeyBuilder::new("prop")
                .u64("alpha", a)
                .u64("beta", b)
                .u64s("xs", &[b, a])
                .finish();
            prop_assert!(fwd != resequenced);
        }
        // Keys survive a hex round trip.
        prop_assert_eq!(Key::from_hex(&fwd.hex()), Some(fwd));
    }

    #[test]
    fn checkpoint_records_round_trip_bit_exactly(seed in any::<u64>()) {
        // Stats carry raw IEEE-754 bit patterns; the checkpoint file must
        // not perturb a single bit, including NaN payloads and -0.0.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s
        };
        let xs_len = 1 + (next() % 6) as u32;
        let records: Vec<GroupRecord> = (0..1 + next() % 3)
            .map(|_| GroupRecord {
                entries: (0..1 + next() % 4)
                    .map(|_| IndexStats {
                        index: next(),
                        stats: (0..xs_len)
                            .map(|_| (next(), f64::from_bits(next()), f64::from_bits(next())))
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        let dir = std::env::temp_dir().join(format!(
            "mcast-store-prop-ckpt-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let k = KeyBuilder::new("prop-ckpt").u64("seed", seed).finish();
        let (mut w, existing) = open(&dir, &k, xs_len).expect("open");
        prop_assert!(existing.is_empty());
        for r in &records {
            w.append(r).expect("append");
        }
        drop(w);
        let (_w, back) = open(&dir, &k, xs_len).expect("reopen");
        prop_assert_eq!(records.len(), back.len());
        for (rec, got) in records.iter().zip(&back) {
            prop_assert_eq!(rec.entries.len(), got.entries.len());
            for (a, b) in rec.entries.iter().zip(&got.entries) {
                prop_assert_eq!(a.index, b.index);
                for ((ca, ma, va), (cb, mb, vb)) in a.stats.iter().zip(&b.stats) {
                    prop_assert_eq!(ca, cb);
                    prop_assert_eq!(ma.to_bits(), mb.to_bits());
                    prop_assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Paper-scale graphs are too slow for a sampled loop but must round-trip
/// too: ts1000 (the paper's transit-stub internet model) and an r100-like
/// 100-node random graph.
#[test]
fn paper_scale_topologies_round_trip() {
    let mut rng = StdRng::seed_from_u64(42);
    let ts = transit_stub(TransitStubParams::ts1000(), &mut rng).expect("ts1000");
    let back = decode_graph(&encode_graph(&ts)).expect("ts1000 round trip");
    assert_eq!(ts, back);

    let r100 = random_with_degree(100, 3.0, &mut StdRng::seed_from_u64(7)).expect("r100");
    let back = decode_graph(&encode_graph(&r100)).expect("r100 round trip");
    assert_eq!(r100, back);
}

/// A version bump alone (consistently re-checksummed) is a typed
/// non-corruption error — callers can tell "damaged" from "too new".
#[test]
fn future_version_is_unsupported_not_corrupt() {
    use mcast_store::sha256;
    let g = arbitrary_graph(3);
    let mut bytes = encode_graph(&g);
    bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
    let rehash = sha256(&bytes[..64]);
    bytes[64..96].copy_from_slice(&rehash.0);
    match decode_graph(&bytes) {
        Err(e @ StoreError::UnsupportedVersion { found: 2, .. }) => {
            assert!(!e.is_corruption());
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}
