//! Trace exporters and the diff engine behind `mcs obs`.
//!
//! Everything here consumes the `trace.jsonl` sidecar written by
//! [`crate::trace`] (parsed with the crate's own [`crate::json`] parser,
//! so no external dependencies) and produces:
//!
//! * [`chrome_trace`] — Chrome trace-event JSON (`about:tracing`,
//!   Perfetto) with one complete (`"X"`) event per span occurrence and
//!   counter (`"C"`) events for instants;
//! * [`folded_stacks`] — collapsed-stack lines (`a;b;c <self µs>`) for
//!   any flamegraph renderer;
//! * [`TraceSummary`] — per-path aggregates (count, inclusive wall,
//!   self wall, allocation totals) plus per-lane busy time and
//!   utilisation — the unit `mcs obs report` prints and `mcs obs diff`
//!   compares;
//! * [`diff`] — budget-checked comparison of two summaries, the CI
//!   perf-regression gate.
//!
//! Self time is inclusive wall minus the inclusive wall of **direct**
//! children (by path), clamped at zero per path — clock jitter between
//! a parent's own timestamps and its children's must not produce
//! negative self time.

use crate::json::{self, Value};
use crate::trace::AllocDelta;
use std::collections::BTreeMap;

/// One span occurrence parsed back from `trace.jsonl`.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// Full `/`-separated span path.
    pub path: String,
    /// Recording lane (thread) id.
    pub tid: u32,
    /// Start, ns since trace epoch.
    pub t0_ns: u64,
    /// End, ns since trace epoch.
    pub t1_ns: u64,
    /// Counter deltas attributed to this occurrence.
    pub counters: Vec<(String, u64)>,
    /// Allocation deltas when the counting allocator was engaged.
    pub alloc: Option<AllocDelta>,
}

/// One instant event parsed back from `trace.jsonl`.
#[derive(Clone, Debug)]
pub struct InstantRec {
    /// Signal name.
    pub name: String,
    /// Recording lane id.
    pub tid: u32,
    /// Timestamp, ns since trace epoch.
    pub t_ns: u64,
    /// Signal value.
    pub value: i64,
}

/// A fully parsed trace sidecar.
#[derive(Clone, Debug, Default)]
pub struct ParsedTrace {
    /// Key/value pairs from the leading `meta` line (minus `ev`).
    pub meta: Vec<(String, Value)>,
    /// Span occurrences in file order.
    pub spans: Vec<SpanRec>,
    /// Instant events in file order.
    pub instants: Vec<InstantRec>,
}

fn need_u64(v: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("trace line {line_no}: missing/invalid \"{key}\""))
}

fn need_str<'v>(v: &'v Value, key: &str, line_no: usize) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("trace line {line_no}: missing/invalid \"{key}\""))
}

/// Parse the contents of a `trace.jsonl` file. Unknown event kinds are
/// skipped (forward compatibility); malformed lines are errors.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let mut out = ParsedTrace::default();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("trace line {line_no}: {e}"))?;
        let ev = need_str(&v, "ev", line_no)?;
        match ev {
            "meta" => {
                if let Some(obj) = v.as_obj() {
                    out.meta = obj
                        .iter()
                        .filter(|(k, _)| k != "ev")
                        .map(|(k, val)| (k.clone(), val.clone()))
                        .collect();
                }
            }
            "span" => {
                let counters = match v.get("counters").and_then(Value::as_obj) {
                    Some(obj) => obj
                        .iter()
                        .map(|(k, c)| {
                            c.as_u64()
                                .map(|c| (k.clone(), c))
                                .ok_or_else(|| format!("trace line {line_no}: bad counter"))
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    None => Vec::new(),
                };
                let alloc = match v.get("alloc") {
                    Some(a) => Some(AllocDelta {
                        count: need_u64(a, "count", line_no)?,
                        bytes: need_u64(a, "bytes", line_no)?,
                        peak: need_u64(a, "peak", line_no)?,
                    }),
                    None => None,
                };
                out.spans.push(SpanRec {
                    path: need_str(&v, "path", line_no)?.to_string(),
                    tid: need_u64(&v, "tid", line_no)? as u32,
                    t0_ns: need_u64(&v, "t0", line_no)?,
                    t1_ns: need_u64(&v, "t1", line_no)?,
                    counters,
                    alloc,
                });
            }
            "instant" => {
                out.instants.push(InstantRec {
                    name: need_str(&v, "name", line_no)?.to_string(),
                    tid: need_u64(&v, "tid", line_no)? as u32,
                    t_ns: need_u64(&v, "t", line_no)?,
                    value: v
                        .get("v")
                        .and_then(Value::as_i64)
                        .ok_or_else(|| format!("trace line {line_no}: missing/invalid \"v\""))?,
                });
            }
            _ => {} // unknown event kinds from future writers: skip
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Render as Chrome trace-event JSON (load in `about:tracing` or
/// Perfetto). Spans become complete (`"X"`) events with microsecond
/// timestamps; instants become counter (`"C"`) events so queue depth
/// and friends plot as time series.
pub fn chrome_trace(trace: &ParsedTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(128 + trace.spans.len() * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for s in &trace.spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"ph\":\"X\",\"name\":");
        json::write_str(&mut out, &s.path);
        let _ = write!(
            out,
            ",\"cat\":\"span\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
            s.tid,
            micros(s.t0_ns),
            micros(s.t1_ns.saturating_sub(s.t0_ns))
        );
        if !s.counters.is_empty() || s.alloc.is_some() {
            out.push_str(",\"args\":{");
            let mut first_arg = true;
            for (name, delta) in &s.counters {
                if !first_arg {
                    out.push(',');
                }
                first_arg = false;
                json::write_str(&mut out, name);
                let _ = write!(out, ":{delta}");
            }
            if let Some(a) = s.alloc {
                if !first_arg {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"alloc_count\":{},\"alloc_bytes\":{},\"alloc_peak\":{}",
                    a.count, a.bytes, a.peak
                );
            }
            out.push('}');
        }
        out.push('}');
    }
    for i in &trace.instants {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n{\"ph\":\"C\",\"name\":");
        json::write_str(&mut out, &i.name);
        let _ = write!(
            out,
            ",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
            i.tid,
            micros(i.t_ns),
            i.value
        );
    }
    out.push_str("\n]}\n");
    out
}

/// Nanoseconds → microseconds with three decimals (Chrome's unit),
/// rendered without float formatting surprises.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

// ---------------------------------------------------------------------------
// Folded stacks (flamegraph) export
// ---------------------------------------------------------------------------

/// Render collapsed-stack lines (`seg;seg;seg <self µs>`) suitable for
/// any flamegraph renderer. One line per span path with non-zero self
/// time; self = inclusive − Σ temporally nested children, clamped at
/// zero.
pub fn folded_stacks(trace: &ParsedTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (path, stat) in aggregate_paths(trace, &per_span_self(trace)) {
        let self_us = stat.self_ns / 1_000;
        if self_us == 0 {
            continue;
        }
        let _ = writeln!(out, "{} {}", path.replace('/', ";"), self_us);
    }
    out
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

/// Per-path aggregate over all occurrences in a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathStat {
    /// Number of occurrences.
    pub count: u64,
    /// Inclusive wall time, ns (sum over occurrences).
    pub wall_ns: u64,
    /// Self wall time, ns: inclusive minus spans temporally nested
    /// inside each occurrence on the same lane, clamped ≥ 0.
    pub self_ns: u64,
    /// Total allocations attributed to this path.
    pub alloc_count: u64,
    /// Total bytes allocated, attributed to this path.
    pub alloc_bytes: u64,
    /// Largest single-occurrence peak of net live growth, bytes.
    pub alloc_peak: u64,
}

/// Per-lane (thread) aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStat {
    /// Lane id.
    pub tid: u32,
    /// Σ self time of spans recorded on this lane, ns.
    pub busy_ns: u64,
}

/// The comparable digest of one trace: what `mcs obs report` prints,
/// what the CI baseline commits, and what [`diff`] consumes.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Meta fields carried over from the trace.
    pub meta: Vec<(String, Value)>,
    /// Wall-clock extent of the trace (max t1 − min t0), ns.
    pub duration_ns: u64,
    /// Per-path aggregates, sorted by path.
    pub spans: BTreeMap<String, PathStat>,
    /// Per-lane busy time, sorted by lane id.
    pub lanes: Vec<LaneStat>,
}

/// Per-occurrence self time, ns, computed by *temporal* nesting within
/// each lane: spans on one thread open and close LIFO, so their
/// intervals nest strictly, and a span's self time is its duration
/// minus the durations of the spans directly inside it. Path prefixes
/// are deliberately not consulted — the scheduler's wrapper span
/// (`sched/<task>`) and the task's own root span share an interval but
/// not a path lineage, and path-based subtraction would double-count
/// that wall time (lane utilisation above 100%).
fn per_span_self(trace: &ParsedTrace) -> Vec<u64> {
    let mut by_lane: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        by_lane.entry(s.tid).or_default().push(i);
    }
    let mut self_ns = vec![0u64; trace.spans.len()];
    for mut idxs in by_lane.into_values() {
        // Containment order: earlier start first, outer (later end) first
        // among equal starts.
        idxs.sort_by(|&a, &b| {
            let (sa, sb) = (&trace.spans[a], &trace.spans[b]);
            sa.t0_ns.cmp(&sb.t0_ns).then(sb.t1_ns.cmp(&sa.t1_ns))
        });
        // Stack of (span index, Σ durations of its direct children).
        let mut stack: Vec<(usize, u64)> = Vec::new();
        let finish = |stack: &mut Vec<(usize, u64)>, self_ns: &mut Vec<u64>| {
            let (top, children) = stack.pop().expect("finish on empty stack");
            let s = &trace.spans[top];
            let dur = s.t1_ns.saturating_sub(s.t0_ns);
            // Clamp: a malformed trace can overlap without nesting.
            self_ns[top] = dur.saturating_sub(children);
            if let Some(parent) = stack.last_mut() {
                parent.1 += dur;
            }
        };
        for &i in &idxs {
            let t0 = trace.spans[i].t0_ns;
            while let Some(&(top, _)) = stack.last() {
                if trace.spans[top].t1_ns <= t0 {
                    finish(&mut stack, &mut self_ns);
                } else {
                    break;
                }
            }
            stack.push((i, 0));
        }
        while !stack.is_empty() {
            finish(&mut stack, &mut self_ns);
        }
    }
    self_ns
}

/// Aggregate inclusive/self wall and alloc totals per path.
/// `self_ns` is the per-occurrence vector from [`per_span_self`],
/// index-aligned with `trace.spans`.
fn aggregate_paths(trace: &ParsedTrace, self_ns: &[u64]) -> BTreeMap<String, PathStat> {
    let mut stats: BTreeMap<String, PathStat> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        let e = stats.entry(s.path.clone()).or_default();
        e.count += 1;
        e.wall_ns += s.t1_ns.saturating_sub(s.t0_ns);
        e.self_ns += self_ns[i];
        if let Some(a) = s.alloc {
            e.alloc_count += a.count;
            e.alloc_bytes += a.bytes;
            e.alloc_peak = e.alloc_peak.max(a.peak);
        }
    }
    stats
}

/// Build the summary digest of a parsed trace.
pub fn summarize(trace: &ParsedTrace) -> TraceSummary {
    let self_ns = per_span_self(trace);
    let spans = aggregate_paths(trace, &self_ns);
    let duration_ns = match (
        trace.spans.iter().map(|s| s.t0_ns).min(),
        trace.spans.iter().map(|s| s.t1_ns).max(),
    ) {
        (Some(t0), Some(t1)) => t1.saturating_sub(t0),
        _ => 0,
    };
    // Per-lane busy: Σ self time on the lane — equal, by construction,
    // to the length of the union of the lane's span intervals, so
    // utilisation never exceeds 100%.
    let mut lanes: BTreeMap<u32, u64> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        *lanes.entry(s.tid).or_default() += self_ns[i];
    }
    TraceSummary {
        meta: trace.meta.clone(),
        duration_ns,
        spans,
        lanes: lanes
            .into_iter()
            .map(|(tid, busy_ns)| LaneStat { tid, busy_ns })
            .collect(),
    }
}

impl TraceSummary {
    /// Σ self time across all paths, ns.
    pub fn total_self_ns(&self) -> u64 {
        self.spans.values().map(|s| s.self_ns).sum()
    }

    /// Render as the committable summary JSON (`mcs obs report --json`):
    /// one span per line so baselines diff cleanly in git.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str("{\n  \"version\": 1,\n  \"meta\": {");
        for (i, (k, v)) in self.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push(' ');
            json::write_str(&mut out, k);
            out.push_str(": ");
            v.write(&mut out);
        }
        let _ = write!(out, " }},\n  \"duration_ns\": {},\n  \"lanes\": [", self.duration_ns);
        for (i, l) in self.lanes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {{\"tid\": {}, \"busy_ns\": {}}}", l.tid, l.busy_ns);
        }
        out.push_str("\n  ],\n  \"spans\": {");
        for (i, (path, s)) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_str(&mut out, path);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"wall_ns\": {}, \"self_ns\": {}, \
                 \"alloc_count\": {}, \"alloc_bytes\": {}, \"alloc_peak\": {}}}",
                s.count, s.wall_ns, s.self_ns, s.alloc_count, s.alloc_bytes, s.alloc_peak
            );
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parse a summary previously written by [`TraceSummary::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("summary: {e}"))?;
        let mut out = TraceSummary {
            duration_ns: v.get("duration_ns").and_then(Value::as_u64).unwrap_or(0),
            ..TraceSummary::default()
        };
        if let Some(meta) = v.get("meta").and_then(Value::as_obj) {
            out.meta = meta.to_vec();
        }
        if let Some(lanes) = v.get("lanes").and_then(Value::as_arr) {
            for l in lanes {
                out.lanes.push(LaneStat {
                    tid: l.get("tid").and_then(Value::as_u64).unwrap_or(0) as u32,
                    busy_ns: l.get("busy_ns").and_then(Value::as_u64).unwrap_or(0),
                });
            }
        }
        let spans = v
            .get("spans")
            .and_then(Value::as_obj)
            .ok_or("summary: missing \"spans\" object")?;
        for (path, s) in spans {
            let grab = |key: &str| s.get(key).and_then(Value::as_u64).unwrap_or(0);
            out.spans.insert(
                path.clone(),
                PathStat {
                    count: grab("count"),
                    wall_ns: grab("wall_ns"),
                    self_ns: grab("self_ns"),
                    alloc_count: grab("alloc_count"),
                    alloc_bytes: grab("alloc_bytes"),
                    alloc_peak: grab("alloc_peak"),
                },
            );
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Diff + budgets
// ---------------------------------------------------------------------------

/// Thresholds for [`diff`], loadable from a JSON budget file:
///
/// ```json
/// { "default_wall_pct": 25.0, "normalise": true, "min_wall_ms": 5.0,
///   "spans": { "suite": 10.0 } }
/// ```
#[derive(Clone, Debug)]
pub struct Budget {
    /// Allowed wall-time change, percent, for spans without an override.
    pub default_wall_pct: f64,
    /// Compare share-of-total-self-time instead of raw nanoseconds —
    /// hardware-independent, the right setting for CI.
    pub normalise: bool,
    /// Noise floor, ms: spans below this in both runs are skipped, and
    /// no span breaches unless its wall time moved by at least this much.
    pub min_wall_ms: f64,
    /// Per-path threshold overrides, percent.
    pub spans: BTreeMap<String, f64>,
}

impl Default for Budget {
    fn default() -> Self {
        Self {
            default_wall_pct: 25.0,
            normalise: true,
            min_wall_ms: 5.0,
            spans: BTreeMap::new(),
        }
    }
}

impl Budget {
    /// Parse a budget file; absent keys keep their defaults.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| format!("budget: {e}"))?;
        let mut b = Budget::default();
        if let Some(p) = v.get("default_wall_pct").and_then(Value::as_f64) {
            b.default_wall_pct = p;
        }
        if let Some(n) = v.get("normalise").and_then(Value::as_bool) {
            b.normalise = n;
        }
        if let Some(m) = v.get("min_wall_ms").and_then(Value::as_f64) {
            b.min_wall_ms = m;
        }
        if let Some(spans) = v.get("spans").and_then(Value::as_obj) {
            for (path, pct) in spans {
                b.spans.insert(
                    path.clone(),
                    pct.as_f64()
                        .ok_or_else(|| format!("budget: span \"{path}\" threshold not a number"))?,
                );
            }
        }
        Ok(b)
    }
}

/// One compared span path.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Span path.
    pub path: String,
    /// Baseline wall, ns (`None`: path new in the candidate).
    pub wall_a: Option<u64>,
    /// Candidate wall, ns (`None`: path vanished).
    pub wall_b: Option<u64>,
    /// Measured change, percent, in the budget's metric (normalised
    /// share or raw wall). `None` when not comparable.
    pub delta_pct: Option<f64>,
    /// Threshold applied, percent.
    pub budget_pct: f64,
    /// Whether this row breaches its threshold.
    pub breach: bool,
}

/// Result of comparing a candidate summary against a baseline.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// One row per compared path (baseline ∪ candidate, above floor).
    pub rows: Vec<DiffRow>,
    /// Number of breaching rows.
    pub breaches: usize,
}

/// Compare candidate `b` against baseline `a` under `budget`. Paths
/// below the budget's wall floor in **both** summaries are skipped;
/// paths present on only one side are reported but never breach (suite
/// composition changes are reviewed in the PR, not gated here). The
/// floor also acts as an absolute guard on breaches: a span whose wall
/// time moved by less than `min_wall_ms` never breaches, however large
/// the relative swing — short spans jitter by large percentages under
/// scheduler noise, and a sub-floor absolute change is not actionable.
pub fn diff(a: &TraceSummary, b: &TraceSummary, budget: &Budget) -> DiffReport {
    let floor_ns = (budget.min_wall_ms * 1e6) as u64;
    let total_a = a.total_self_ns().max(1) as f64;
    let total_b = b.total_self_ns().max(1) as f64;
    let mut paths: Vec<&String> = a.spans.keys().chain(b.spans.keys()).collect();
    paths.sort();
    paths.dedup();
    let mut report = DiffReport::default();
    for path in paths {
        let sa = a.spans.get(path);
        let sb = b.spans.get(path);
        let wall_a = sa.map(|s| s.wall_ns);
        let wall_b = sb.map(|s| s.wall_ns);
        if wall_a.unwrap_or(0) < floor_ns && wall_b.unwrap_or(0) < floor_ns {
            continue;
        }
        let budget_pct = budget
            .spans
            .get(path)
            .copied()
            .unwrap_or(budget.default_wall_pct);
        let (delta_pct, breach) = match (sa, sb) {
            (Some(sa), Some(sb)) => {
                let (ma, mb) = if budget.normalise {
                    (sa.wall_ns as f64 / total_a, sb.wall_ns as f64 / total_b)
                } else {
                    (sa.wall_ns as f64, sb.wall_ns as f64)
                };
                let delta = if ma > 0.0 {
                    (mb - ma) / ma * 100.0
                } else if mb > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                let moved_ns = sa.wall_ns.abs_diff(sb.wall_ns);
                (Some(delta), delta.abs() > budget_pct && moved_ns >= floor_ns)
            }
            _ => (None, false),
        };
        if breach {
            report.breaches += 1;
        }
        report.rows.push(DiffRow {
            path: path.clone(),
            wall_a,
            wall_b,
            delta_pct,
            budget_pct,
            breach,
        });
    }
    report
}

// ---------------------------------------------------------------------------
// Text renderers
// ---------------------------------------------------------------------------

fn fmt_ns(ns: u64) -> String {
    let ms = ns as f64 / 1e6;
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else if ms >= 1.0 {
        format!("{ms:.1}ms")
    } else {
        format!("{:.0}µs", ns as f64 / 1e3)
    }
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Render the human-readable report (`mcs obs report`): top spans by
/// self wall time, allocation attribution, per-lane utilisation.
pub fn report_text(summary: &TraceSummary, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} span path(s), {} lane(s), duration {}",
        summary.spans.len(),
        summary.lanes.len(),
        fmt_ns(summary.duration_ns)
    );
    for (k, v) in &summary.meta {
        let mut rendered = String::new();
        v.write(&mut rendered);
        let _ = writeln!(out, "  meta {k} = {rendered}");
    }
    let mut by_self: Vec<(&String, &PathStat)> = summary.spans.iter().collect();
    by_self.sort_by(|x, y| y.1.self_ns.cmp(&x.1.self_ns).then(x.0.cmp(y.0)));
    let _ = writeln!(
        out,
        "\n{:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "span (top by self time)", "count", "wall", "self", "allocs", "peak"
    );
    for (path, s) in by_self.iter().take(top) {
        let _ = writeln!(
            out,
            "{:<44} {:>7} {:>10} {:>10} {:>10} {:>10}",
            path,
            s.count,
            fmt_ns(s.wall_ns),
            fmt_ns(s.self_ns),
            s.alloc_count,
            fmt_bytes(s.alloc_peak)
        );
    }
    if !summary.lanes.is_empty() && summary.duration_ns > 0 {
        let _ = writeln!(out, "\nlanes (busy = Σ self time on lane):");
        for l in &summary.lanes {
            let util = l.busy_ns as f64 / summary.duration_ns as f64 * 100.0;
            let _ = writeln!(
                out,
                "  lane {:>3}: busy {:>10}  utilisation {:>5.1}%",
                l.tid,
                fmt_ns(l.busy_ns),
                util
            );
        }
    }
    out
}

/// Render the diff table (`mcs obs diff`). Breaching rows are marked
/// `BREACH`; rows present on one side only are marked `only`.
pub fn diff_text(report: &DiffReport, budget: &Budget) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let metric = if budget.normalise {
        "share of total self time"
    } else {
        "raw wall time"
    };
    let _ = writeln!(out, "diff metric: {metric} (floor {} ms)", budget.min_wall_ms);
    let _ = writeln!(
        out,
        "{:<44} {:>10} {:>10} {:>9} {:>8}  {}",
        "span", "base", "cand", "delta", "budget", "verdict"
    );
    for r in &report.rows {
        let base = r.wall_a.map(fmt_ns).unwrap_or_else(|| "-".into());
        let cand = r.wall_b.map(fmt_ns).unwrap_or_else(|| "-".into());
        let delta = r
            .delta_pct
            .map(|d| format!("{d:+.1}%"))
            .unwrap_or_else(|| "-".into());
        let verdict = if r.breach {
            "BREACH"
        } else if r.delta_pct.is_none() {
            "only"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>10} {:>9} {:>7.1}%  {}",
            r.path, base, cand, delta, r.budget_pct, verdict
        );
    }
    let _ = writeln!(
        out,
        "\n{} breach(es) across {} compared span(s)",
        report.breaches,
        report.rows.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> ParsedTrace {
        // suite [0..100ms] with children a [0..60ms] and b [70..90ms] on
        // lane 0; worker span on lane 1 [10..50ms].
        let ms = |m: u64| m * 1_000_000;
        ParsedTrace {
            meta: vec![("cmd".into(), Value::Str("unit".into()))],
            spans: vec![
                SpanRec {
                    path: "suite/a".into(),
                    tid: 0,
                    t0_ns: ms(0),
                    t1_ns: ms(60),
                    counters: vec![("items".into(), 4)],
                    alloc: Some(AllocDelta {
                        count: 10,
                        bytes: 4096,
                        peak: 2048,
                    }),
                },
                SpanRec {
                    path: "suite/b".into(),
                    tid: 0,
                    t0_ns: ms(70),
                    t1_ns: ms(90),
                    counters: vec![],
                    alloc: None,
                },
                SpanRec {
                    path: "suite".into(),
                    tid: 0,
                    t0_ns: ms(0),
                    t1_ns: ms(100),
                    counters: vec![],
                    alloc: None,
                },
                SpanRec {
                    path: "sched/w".into(),
                    tid: 1,
                    t0_ns: ms(10),
                    t1_ns: ms(50),
                    counters: vec![],
                    alloc: None,
                },
            ],
            instants: vec![InstantRec {
                name: "sched.queue_depth".into(),
                tid: 1,
                t_ns: ms(10),
                value: 3,
            }],
        }
    }

    #[test]
    fn roundtrips_through_jsonl() {
        let trace = sample_trace();
        let data = crate::trace::TraceData {
            events: trace
                .spans
                .iter()
                .map(|s| {
                    crate::trace::TraceEvent::Span(crate::trace::SpanEvent {
                        path: s.path.clone(),
                        tid: s.tid,
                        t0_ns: s.t0_ns,
                        t1_ns: s.t1_ns,
                        counters: s.counters.clone(),
                        alloc: s.alloc,
                    })
                })
                .chain(trace.instants.iter().map(|i| {
                    crate::trace::TraceEvent::Instant(crate::trace::InstantEvent {
                        name: i.name.clone(),
                        tid: i.tid,
                        t_ns: i.t_ns,
                        value: i.value,
                    })
                }))
                .collect(),
        };
        let jsonl = data.write_jsonl(&[("cmd", Value::Str("unit".into()))]);
        let parsed = parse_trace(&jsonl).unwrap();
        assert_eq!(parsed.spans.len(), 4);
        assert_eq!(parsed.instants.len(), 1);
        assert_eq!(parsed.spans[0].counters, vec![("items".to_string(), 4)]);
        assert_eq!(
            parsed.spans[0].alloc,
            Some(AllocDelta {
                count: 10,
                bytes: 4096,
                peak: 2048
            })
        );
        // meta keeps the writer's "version" stamp plus caller fields.
        assert!(parsed.meta.iter().any(|(k, _)| k == "version"));
        assert!(parsed.meta.iter().any(|(k, _)| k == "cmd"));
    }

    #[test]
    fn summary_self_time_and_lanes() {
        let s = summarize(&sample_trace());
        assert_eq!(s.duration_ns, 100_000_000);
        let suite = &s.spans["suite"];
        assert_eq!(suite.wall_ns, 100_000_000);
        // self = 100ms − (60ms + 20ms children)
        assert_eq!(suite.self_ns, 20_000_000);
        assert_eq!(s.spans["suite/a"].self_ns, 60_000_000);
        assert_eq!(s.spans["suite/a"].alloc_peak, 2048);
        // lane 0 busy: 20 + 60 + 20; lane 1: 40 (sched has no parent span)
        assert_eq!(s.lanes.len(), 2);
        assert_eq!(s.lanes[0].busy_ns, 100_000_000);
        assert_eq!(s.lanes[1].busy_ns, 40_000_000);
    }

    #[test]
    fn cross_lane_path_children_do_not_erode_parent_self() {
        let mut t = sample_trace();
        // A path-child on another lane, longer than the parent. Nesting
        // is temporal and lane-local, so the parent keeps its own self
        // time and the other lane's busy is the union of its intervals.
        t.spans.push(SpanRec {
            path: "suite/big".into(),
            tid: 1,
            t0_ns: 0,
            t1_ns: 500_000_000,
            counters: vec![],
            alloc: None,
        });
        let s = summarize(&t);
        assert_eq!(s.spans["suite"].self_ns, 20_000_000);
        // sched/w [10..50ms] nests temporally inside big [0..500ms].
        assert_eq!(s.spans["suite/big"].self_ns, 460_000_000);
        assert_eq!(s.lanes[1].busy_ns, 500_000_000);
    }

    #[test]
    fn temporally_nested_spans_on_one_lane_split_self_time() {
        // The scheduler-wrapper case: `sched/t` and the path-unrelated
        // task root `t` cover the same interval on one lane. Path-based
        // subtraction would double-count and push lane utilisation past
        // 100%; temporal nesting splits the wall time exactly once.
        let ms = |m: u64| m * 1_000_000;
        let span = |path: &str, a: u64, b: u64| SpanRec {
            path: path.into(),
            tid: 0,
            t0_ns: ms(a),
            t1_ns: ms(b),
            counters: vec![],
            alloc: None,
        };
        let t = ParsedTrace {
            meta: vec![],
            spans: vec![span("sched/t", 0, 100), span("t", 5, 95), span("t/inner", 10, 40)],
            instants: vec![],
        };
        let s = summarize(&t);
        assert_eq!(s.spans["sched/t"].self_ns, ms(10));
        assert_eq!(s.spans["t"].self_ns, ms(60));
        assert_eq!(s.spans["t/inner"].self_ns, ms(30));
        assert_eq!(s.lanes.len(), 1);
        assert_eq!(s.lanes[0].busy_ns, ms(100), "busy = interval union, ≤ duration");
        assert_eq!(s.total_self_ns(), ms(100));
    }

    #[test]
    fn folded_stacks_use_semicolons_and_self_time() {
        let out = folded_stacks(&sample_trace());
        assert!(out.contains("suite;a 60000"), "{out}");
        assert!(out.contains("suite 20000"), "{out}");
        assert!(out.contains("sched;w 40000"), "{out}");
    }

    #[test]
    fn chrome_trace_is_parseable_with_events() {
        let out = chrome_trace(&sample_trace());
        let v = json::parse(&out).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5);
        let x = &events[0];
        assert_eq!(x.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(x.get("name").unwrap().as_str(), Some("suite/a"));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(60_000.0));
        let c = &events[4];
        assert_eq!(c.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(
            c.get("args").unwrap().get("value").unwrap().as_i64(),
            Some(3)
        );
    }

    #[test]
    fn summary_json_roundtrip() {
        let s = summarize(&sample_trace());
        let text = s.to_json();
        let back = TraceSummary::from_json(&text).unwrap();
        assert_eq!(back.duration_ns, s.duration_ns);
        assert_eq!(back.spans, s.spans);
        assert_eq!(back.lanes, s.lanes);
    }

    #[test]
    fn diff_identical_summaries_is_clean() {
        let s = summarize(&sample_trace());
        let report = diff(&s, &s, &Budget::default());
        assert_eq!(report.breaches, 0);
        assert!(report.rows.iter().all(|r| !r.breach));
        assert_eq!(report.rows.iter().filter(|r| r.delta_pct == Some(0.0)).count(), report.rows.len());
    }

    #[test]
    fn diff_flags_regression_beyond_budget() {
        let a = summarize(&sample_trace());
        let mut b = a.clone();
        // Triple suite/a's share.
        b.spans.get_mut("suite/a").unwrap().wall_ns *= 3;
        b.spans.get_mut("suite/a").unwrap().self_ns *= 3;
        let report = diff(&a, &b, &Budget::default());
        assert!(report.breaches >= 1);
        let row = report.rows.iter().find(|r| r.path == "suite/a").unwrap();
        assert!(row.breach, "{row:?}");
    }

    #[test]
    fn diff_sub_floor_absolute_moves_never_breach() {
        // A short span can halve or triple under scheduler noise; as long
        // as the absolute move stays under the floor it must not breach.
        let raw = Budget {
            normalise: false,
            ..Budget::default()
        };
        let mut a = TraceSummary::default();
        let mut b = TraceSummary::default();
        for (sum, wall) in [(&mut a, 6_000_000u64), (&mut b, 2_000_000)] {
            sum.spans.insert(
                "suite/tiny".into(),
                PathStat {
                    count: 1,
                    wall_ns: wall,
                    self_ns: wall,
                    ..PathStat::default()
                },
            );
        }
        let report = diff(&a, &b, &raw);
        let row = &report.rows[0];
        assert_eq!(row.delta_pct.map(f64::round), Some(-67.0));
        assert!(!row.breach, "{row:?}");
        // The same relative swing above the floor still breaches.
        b.spans.get_mut("suite/tiny").unwrap().wall_ns = 20_000_000;
        assert_eq!(diff(&a, &b, &raw).breaches, 1);
    }

    #[test]
    fn diff_normalised_is_scale_invariant() {
        let a = summarize(&sample_trace());
        let mut b = a.clone();
        // Uniformly 2× slower hardware: all shares unchanged.
        for s in b.spans.values_mut() {
            s.wall_ns *= 2;
            s.self_ns *= 2;
        }
        b.duration_ns *= 2;
        let report = diff(&a, &b, &Budget::default());
        assert_eq!(report.breaches, 0, "{report:?}");
        // Raw mode must flag the same change.
        let raw = Budget {
            normalise: false,
            ..Budget::default()
        };
        assert!(diff(&a, &b, &raw).breaches > 0);
    }

    #[test]
    fn diff_new_and_vanished_paths_never_breach() {
        let a = summarize(&sample_trace());
        let mut b = a.clone();
        b.spans.remove("suite/b");
        b.spans.insert(
            "suite/new".into(),
            PathStat {
                count: 1,
                wall_ns: 50_000_000,
                self_ns: 50_000_000,
                ..PathStat::default()
            },
        );
        let report = diff(&a, &b, &Budget::default());
        let gone = report.rows.iter().find(|r| r.path == "suite/b").unwrap();
        let new = report.rows.iter().find(|r| r.path == "suite/new").unwrap();
        assert!(!gone.breach && gone.wall_b.is_none());
        assert!(!new.breach && new.wall_a.is_none());
    }

    #[test]
    fn budget_parses_overrides_and_floor() {
        let b = Budget::from_json(
            r#"{"default_wall_pct": 10.0, "normalise": false,
                "min_wall_ms": 1.5, "spans": {"suite": 40.0}}"#,
        )
        .unwrap();
        assert_eq!(b.default_wall_pct, 10.0);
        assert!(!b.normalise);
        assert_eq!(b.min_wall_ms, 1.5);
        assert_eq!(b.spans["suite"], 40.0);
        // Floor: a 0.1 ms span is skipped entirely.
        let mut a = TraceSummary::default();
        a.spans.insert(
            "tiny".into(),
            PathStat {
                count: 1,
                wall_ns: 100_000,
                self_ns: 100_000,
                ..PathStat::default()
            },
        );
        let report = diff(&a, &a, &b);
        assert!(report.rows.is_empty());
    }

    #[test]
    fn report_and_diff_texts_render() {
        let s = summarize(&sample_trace());
        let text = report_text(&s, 10);
        assert!(text.contains("suite/a"));
        assert!(text.contains("utilisation"));
        assert!(text.contains("meta cmd = \"unit\""));
        let d = diff(&s, &s, &Budget::default());
        let dt = diff_text(&d, &Budget::default());
        assert!(dt.contains("0 breach(es)"), "{dt}");
    }

    #[test]
    fn parse_rejects_malformed_lines_but_skips_unknown_kinds() {
        assert!(parse_trace("{\"ev\":\"future-kind\",\"x\":1}\n").is_ok());
        assert!(parse_trace("{\"ev\":\"span\"}\n").is_err());
        assert!(parse_trace("not json\n").is_err());
    }
}
