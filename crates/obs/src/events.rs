//! Structured-event sink: one JSON object per line on stderr, filtered
//! by a global level in the `MCS_LOG` style (`off`, `error`, `warn`,
//! `info`, `debug`, `trace`).
//!
//! The sink is independent of the metrics [`crate::enabled`] flag so
//! `MCS_LOG=debug mcs fig1` gives a structured trace without turning on
//! metric collection. Events carry a millisecond timestamp relative to
//! the first event (wall-clock offsets never reach artefact files, so
//! determinism of reports is unaffected).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Event severity, ordered from quietest to chattiest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Log nothing.
    Off = 0,
    /// Unrecoverable problems.
    Error = 1,
    /// Suspicious but survivable conditions.
    Warn = 2,
    /// Run milestones (experiment start/finish, phase summaries).
    Info = 3,
    /// Per-driver detail (sample counts, thread balance).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parse an `MCS_LOG`-style level name (case-insensitive). Unknown
    /// names yield `None`.
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// The current global level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        5 => Level::Trace,
        _ => Level::Off,
    }
}

/// Set the global level.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Initialise the level from the `MCS_LOG` environment variable, if set
/// to a recognised name. Returns the resulting level.
pub fn init_from_env() -> Level {
    if let Ok(v) = std::env::var("MCS_LOG") {
        if let Some(l) = Level::parse(&v) {
            set_level(l);
        }
    }
    level()
}

/// Whether an event at `l` would currently be emitted. One relaxed
/// load — the macros check this before formatting anything.
#[inline]
pub fn log_enabled(l: Level) -> bool {
    l != Level::Off && (l as u8) <= LEVEL.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Emit one JSONL event to stderr (after the [`log_enabled`] check —
/// callers normally go through the [`crate::info!`]-style macros, which
/// skip formatting entirely when the level is filtered out).
pub fn log(l: Level, target: &str, msg: &str) {
    if !log_enabled(l) {
        return;
    }
    let mut line = String::with_capacity(64 + target.len() + msg.len());
    use std::fmt::Write as _;
    let _ = write!(
        line,
        "{{\"ts_ms\": {}, \"level\": \"{}\", \"target\": ",
        epoch().elapsed().as_millis(),
        l.name()
    );
    crate::json::write_str(&mut line, target);
    line.push_str(", \"msg\": ");
    crate::json::write_str(&mut line, msg);
    line.push('}');
    eprintln!("{line}");
}

/// Emit an `error`-level JSONL event.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::events::log_enabled($crate::Level::Error) {
            $crate::events::log($crate::Level::Error, $target, &format!($($arg)*));
        }
    };
}

/// Emit a `warn`-level JSONL event.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::events::log_enabled($crate::Level::Warn) {
            $crate::events::log($crate::Level::Warn, $target, &format!($($arg)*));
        }
    };
}

/// Emit an `info`-level JSONL event.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::events::log_enabled($crate::Level::Info) {
            $crate::events::log($crate::Level::Info, $target, &format!($($arg)*));
        }
    };
}

/// Emit a `debug`-level JSONL event.
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::events::log_enabled($crate::Level::Debug) {
            $crate::events::log($crate::Level::Debug, $target, &format!($($arg)*));
        }
    };
}

/// Emit a `trace`-level JSONL event.
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::events::log_enabled($crate::Level::Trace) {
            $crate::events::log($crate::Level::Trace, $target, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn ordering_matches_verbosity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    #[test]
    fn filtering_respects_level() {
        let _g = crate::test_lock();
        let before = level();
        set_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Off));
        set_level(Level::Off);
        assert!(!log_enabled(Level::Error));
        set_level(before);
    }
}
