//! Rate-limited progress reporting for long Monte-Carlo runs.
//!
//! A [`Progress`] tracks completed work items (sources) and raw sample
//! throughput, and repaints a single stderr status line at most every
//! 200 ms:
//!
//! ```text
//! fig1: 37/100 sources · 1.4M samples/s · ETA 12s
//! ```
//!
//! Display is gated on a global flag ([`set_progress`], wired to the
//! `mcs --verbose` flag) so library users and tests stay silent;
//! counting always works, which lets the drivers reuse the struct for
//! bookkeeping. All state is atomic — worker threads share a `&Progress`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static PROGRESS_ON: AtomicBool = AtomicBool::new(false);

/// Globally enable or disable the stderr progress display.
pub fn set_progress(on: bool) {
    PROGRESS_ON.store(on, Ordering::Relaxed);
}

/// Whether the stderr progress display is enabled.
pub fn progress_enabled() -> bool {
    PROGRESS_ON.load(Ordering::Relaxed)
}

/// Minimum milliseconds between repaints.
const REPAINT_MS: u64 = 200;

/// A hand-driven clock for deterministic rate-limit tests: the owner
/// advances time explicitly and a [`Progress`] built with
/// [`Progress::with_clock`] reads it instead of the wall clock.
#[derive(Clone, Default)]
pub struct ManualClock(Arc<AtomicU64>);

impl ManualClock {
    /// A clock frozen at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::Relaxed);
    }

    /// Current reading, ms.
    pub fn now_ms(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Where a [`Progress`] reads elapsed time from.
enum ClockSource {
    Real(Instant),
    Manual(ManualClock),
}

impl ClockSource {
    fn elapsed_ms(&self) -> u64 {
        match self {
            ClockSource::Real(start) => {
                u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
            }
            ClockSource::Manual(c) => c.now_ms(),
        }
    }
}

/// Shared progress state for one driver run.
pub struct Progress {
    label: String,
    total: u64,
    done: AtomicU64,
    samples: AtomicU64,
    clock: ClockSource,
    /// ms-since-start of the last repaint (for rate limiting).
    last_paint_ms: AtomicU64,
    /// Repaint-schedule firings (painted or not; see [`Progress::paints`]).
    paints: AtomicU64,
    painted: AtomicBool,
    active: bool,
}

impl Progress {
    /// New tracker expecting `total` work items, labelled for display.
    /// Captures the display flag at construction.
    pub fn new(label: impl Into<String>, total: u64) -> Self {
        Self::build(label, total, ClockSource::Real(Instant::now()))
    }

    /// New tracker reading time from `clock` instead of the wall clock.
    /// The repaint schedule then runs (and is observable via
    /// [`Progress::paints`]) even when the display is off, so tests can
    /// pin the emission schedule without touching stderr.
    pub fn with_clock(label: impl Into<String>, total: u64, clock: ManualClock) -> Self {
        Self::build(label, total, ClockSource::Manual(clock))
    }

    fn build(label: impl Into<String>, total: u64, clock: ClockSource) -> Self {
        Self {
            label: label.into(),
            total,
            done: AtomicU64::new(0),
            samples: AtomicU64::new(0),
            clock,
            last_paint_ms: AtomicU64::new(0),
            paints: AtomicU64::new(0),
            painted: AtomicBool::new(false),
            active: progress_enabled(),
        }
    }

    /// Record `n` raw samples (for the samples/s readout).
    #[inline]
    pub fn add_samples(&self, n: u64) {
        self.samples.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one completed work item, repainting if due.
    pub fn item_done(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        // The inactive wall-clock path stays a lone fetch_add — no
        // clock read per item. With a manual clock the schedule always
        // runs so tests can observe it displaylessly.
        if self.active || matches!(self.clock, ClockSource::Manual(_)) {
            self.maybe_paint(done);
        }
    }

    /// Completed work items so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Raw samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// How many times the repaint schedule has fired. With a manual
    /// clock this counts schedule decisions even while the display is
    /// off — the hook the emission-schedule tests pin against.
    pub fn paints(&self) -> u64 {
        self.paints.load(Ordering::Relaxed)
    }

    fn maybe_paint(&self, done: u64) {
        let now_ms = self.clock.elapsed_ms();
        let last = self.last_paint_ms.load(Ordering::Relaxed);
        let due = now_ms.saturating_sub(last) >= REPAINT_MS || done == self.total;
        if !due {
            return;
        }
        // One painter at a time: whoever wins the CAS repaints.
        if self
            .last_paint_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        self.paints.fetch_add(1, Ordering::Relaxed);
        if self.active {
            self.painted.store(true, Ordering::Relaxed);
            let line = self.status_line(done, now_ms);
            eprint!("\r\x1b[2K{line}");
        }
    }

    fn status_line(&self, done: u64, elapsed_ms: u64) -> String {
        let rate = if elapsed_ms == 0 {
            0.0
        } else {
            self.samples.load(Ordering::Relaxed) as f64 * 1000.0 / elapsed_ms as f64
        };
        format!(
            "{}: {}/{} sources · {} samples/s · ETA {}",
            self.label,
            done,
            self.total,
            fmt_rate(rate),
            fmt_eta(eta_secs(elapsed_ms, done, self.total)),
        )
    }

    /// Final repaint plus newline (only if anything was painted), so the
    /// shell prompt is never left mid-line.
    pub fn finish(&self) {
        if !self.active || !self.painted.load(Ordering::Relaxed) {
            return;
        }
        let elapsed_ms = self.clock.elapsed_ms();
        let done = self.done.load(Ordering::Relaxed);
        eprintln!(
            "\r\x1b[2K{} · done in {}",
            self.status_line(done, elapsed_ms),
            fmt_eta(elapsed_ms as f64 / 1000.0)
        );
    }
}

/// Estimated seconds remaining (`f64::INFINITY` when nothing is done yet).
fn eta_secs(elapsed_ms: u64, done: u64, total: u64) -> f64 {
    if done == 0 {
        return f64::INFINITY;
    }
    let remaining = total.saturating_sub(done) as f64;
    (elapsed_ms as f64 / 1000.0) * remaining / done as f64
}

/// Human rate: `931`, `12.4k`, `1.4M`.
fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.1}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.0}")
    }
}

/// Human duration: `0.4s`, `12s`, `3m05s`, `?` for unknown.
fn fmt_eta(secs: f64) -> String {
    if !secs.is_finite() {
        return "?".into();
    }
    if secs < 1.0 {
        format!("{secs:.1}s")
    } else if secs < 60.0 {
        format!("{secs:.0}s")
    } else {
        let m = (secs / 60.0).floor();
        format!("{m:.0}m{:02.0}s", secs - m * 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_works_without_display() {
        let p = Progress::new("test", 10);
        assert!(!p.active || progress_enabled());
        p.add_samples(100);
        p.item_done();
        p.item_done();
        assert_eq!(p.done(), 2);
        assert_eq!(p.samples(), 100);
        p.finish(); // silent: nothing was painted
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let p = Progress::new("test", 64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..8 {
                        p.add_samples(5);
                        p.item_done();
                    }
                });
            }
        });
        assert_eq!(p.done(), 64);
        assert_eq!(p.samples(), 8 * 8 * 5);
    }

    #[test]
    fn eta_math() {
        assert_eq!(eta_secs(1000, 0, 10), f64::INFINITY);
        // 2 of 10 done in 1s -> 4s remaining.
        assert!((eta_secs(1000, 2, 10) - 4.0).abs() < 1e-12);
        assert_eq!(eta_secs(1000, 10, 10), 0.0);
        // done > total is clamped, never negative.
        assert_eq!(eta_secs(1000, 12, 10), 0.0);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(0.0), "0");
        assert_eq!(fmt_rate(931.4), "931");
        assert_eq!(fmt_rate(12_400.0), "12.4k");
        assert_eq!(fmt_rate(1_400_000.0), "1.4M");
    }

    #[test]
    fn eta_formatting() {
        assert_eq!(fmt_eta(f64::INFINITY), "?");
        assert_eq!(fmt_eta(0.42), "0.4s");
        assert_eq!(fmt_eta(12.3), "12s");
        assert_eq!(fmt_eta(185.0), "3m05s");
    }

    #[test]
    fn status_line_shape() {
        let p = Progress::new("fig1", 100);
        p.add_samples(5000);
        let line = p.status_line(37, 1000);
        assert!(line.starts_with("fig1: 37/100 sources"), "{line}");
        assert!(line.contains("samples/s"), "{line}");
        assert!(line.contains("ETA"), "{line}");
    }

    #[test]
    fn burst_of_items_in_one_instant_paints_at_most_once() {
        let clock = ManualClock::new();
        let p = Progress::with_clock("burst", 1000, clock.clone());
        clock.advance_ms(REPAINT_MS); // make the first tick due
        for _ in 0..500 {
            p.item_done();
        }
        // Time never advanced past the first repaint: the whole burst
        // collapses into that single paint.
        assert_eq!(p.paints(), 1);
        assert_eq!(p.done(), 500);
    }

    #[test]
    fn steady_state_paints_once_per_repaint_window() {
        let clock = ManualClock::new();
        let p = Progress::with_clock("steady", 1000, clock.clone());
        // One item every 50 ms for 2 s: 10 windows of 200 ms, each
        // repainting exactly once (on its first due item).
        for _ in 0..40 {
            clock.advance_ms(50);
            p.item_done();
        }
        assert_eq!(p.paints(), 10);
    }

    #[test]
    fn final_item_always_paints_even_inside_window() {
        let clock = ManualClock::new();
        let p = Progress::with_clock("final", 3, clock.clone());
        clock.advance_ms(REPAINT_MS);
        p.item_done(); // paints (window due)
        clock.advance_ms(1);
        p.item_done(); // suppressed (inside window)
        clock.advance_ms(1);
        p.item_done(); // done == total: forced paint
        assert_eq!(p.paints(), 2);
    }

    #[test]
    fn sub_window_items_never_paint_until_window_elapses() {
        let clock = ManualClock::new();
        let p = Progress::with_clock("quiet", 1000, clock.clone());
        for _ in 0..10 {
            clock.advance_ms(REPAINT_MS / 10);
            p.item_done();
        }
        // Exactly one window (10 × 20 ms) elapsed in total.
        assert_eq!(p.paints(), 1);
    }
}
