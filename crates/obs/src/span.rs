//! RAII span timers with a thread-safe hierarchical collector.
//!
//! A span measures the wall time between its creation and drop. Spans
//! nest per thread: creating a span while another is live on the same
//! thread records it under the parent's path (`"fig1/measure"`), and the
//! collector aggregates by full path, so repeated spans at the same
//! position accumulate `count`/`total` statistics instead of producing
//! one record per occurrence.
//!
//! Worker threads start with an empty span stack: spans they open are
//! recorded at the root. The Monte-Carlo drivers therefore keep spans on
//! the coordinating thread and use counters/histograms from workers.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Aggregated statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed occurrences.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Shortest occurrence, nanoseconds.
    pub min_ns: u64,
    /// Longest occurrence, nanoseconds.
    pub max_ns: u64,
}

fn collector() -> &'static Mutex<BTreeMap<String, SpanStat>> {
    static SPANS: OnceLock<Mutex<BTreeMap<String, SpanStat>>> = OnceLock::new();
    SPANS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Live timer returned by [`span`] / [`span_at`]; records on drop.
/// Inert (no clock read, no allocation) while observability is disabled.
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    path: Option<String>,
    start: Option<Instant>,
    /// Trace start timestamp when a recorder was active at open; also
    /// marks that this guard owns an attribution frame to close.
    trace_t0: Option<u64>,
}

/// Open a span named `name` nested under the current thread's innermost
/// live span (or at the root if there is none).
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            path: None,
            start: None,
            trace_t0: None,
        };
    }
    // Lossy by design: if the TLS stack is gone (thread teardown) or
    // already borrowed (re-entrancy during unwinding), record at the root
    // rather than risk a double panic inside a Drop.
    let path = STACK
        .try_with(|s| {
            s.try_borrow()
                .ok()
                .and_then(|s| s.last().map(|parent| format!("{parent}/{name}")))
        })
        .ok()
        .flatten()
        .unwrap_or_else(|| name.to_string());
    open(path)
}

/// Open a span at an explicit absolute `path` (segments separated by
/// `/`), ignoring the current nesting. Spans opened while this guard is
/// live still nest under it.
pub fn span_at(path: impl Into<String>) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            path: None,
            start: None,
            trace_t0: None,
        };
    }
    open(path.into())
}

fn open(path: String) -> SpanGuard {
    // If the stack is unavailable the span still times and records; only
    // the nesting of children opened beneath it is lost.
    let _ = STACK.try_with(|s| {
        if let Ok(mut s) = s.try_borrow_mut() {
            s.push(path.clone());
        }
    });
    // A guard only owns a trace frame when a recorder was active at
    // open; frames push/pop strictly with these guards, so a recorder
    // started mid-span never unbalances the frame stack.
    let trace_t0 = crate::trace::active().then(crate::trace::open_frame);
    SpanGuard {
        path: Some(path),
        start: Some(Instant::now()),
        trace_t0,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let (Some(path), Some(start)) = (self.path.take(), self.start) else {
            return;
        };
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // Close the trace frame first so counter bumps from the
        // collector bookkeeping below can't be attributed to this span.
        // Runs during unwinding too — close_frame is fully `try_`-guarded
        // and the span always closes in the trace (see trace.rs).
        if let Some(t0) = self.trace_t0.take() {
            crate::trace::close_frame(&path, t0);
        }
        // This drop runs during unwinding whenever a spanned scope
        // panics; `try_with`/`try_borrow_mut` keep it from turning that
        // panic into an abort if the TLS stack is mid-teardown or
        // borrowed. Worst case the entry is left behind and removed by a
        // later guard's defensive scan — the timing below still records.
        let _ = STACK.try_with(|s| {
            if let Ok(mut s) = s.try_borrow_mut() {
                // Normally a plain LIFO pop; scan defensively in case
                // guards were dropped out of order.
                if let Some(pos) = s.iter().rposition(|p| *p == path) {
                    s.remove(pos);
                }
            }
        });
        let mut spans = collector().lock().unwrap_or_else(|e| e.into_inner());
        let stat = spans.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += elapsed_ns;
        stat.min_ns = if stat.count == 1 {
            elapsed_ns
        } else {
            stat.min_ns.min(elapsed_ns)
        };
        stat.max_ns = stat.max_ns.max(elapsed_ns);
    }
}

/// Sorted `(path, stats)` snapshot of every completed span.
pub fn snapshot() -> Vec<(String, SpanStat)> {
    collector()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Total recorded wall time for one exact path, in milliseconds.
pub fn total_ms(path: &str) -> f64 {
    collector()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(path)
        .map(|s| s.total_ns as f64 / 1e6)
        .unwrap_or(0.0)
}

/// Discard all recorded spans.
pub fn reset() {
    collector()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

#[derive(Default)]
struct Node {
    stat: Option<SpanStat>,
    children: BTreeMap<String, Node>,
}

/// Append the hierarchical span tree as a JSON object: each node carries
/// its timing stats (if the path itself was recorded) and a `"children"`
/// object keyed by segment.
pub fn write_tree_json(out: &mut String) {
    let mut root = Node::default();
    for (path, stat) in snapshot() {
        let mut cur = &mut root;
        for seg in path.split('/') {
            cur = cur.children.entry(seg.to_string()).or_default();
        }
        cur.stat = Some(stat);
    }
    write_children(out, &root);
}

fn write_children(out: &mut String, node: &Node) {
    use std::fmt::Write as _;
    out.push('{');
    for (i, (name, child)) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push(' ');
        crate::json::write_str(out, name);
        out.push_str(": {");
        if let Some(s) = child.stat {
            let _ = write!(out, "\"count\": {}, \"total_ms\": ", s.count);
            crate::json::write_f64(out, s.total_ns as f64 / 1e6);
            out.push_str(", \"min_ms\": ");
            crate::json::write_f64(out, s.min_ns as f64 / 1e6);
            out.push_str(", \"max_ms\": ");
            crate::json::write_f64(out, s.max_ns as f64 / 1e6);
            out.push_str(", ");
        }
        out.push_str("\"children\": ");
        write_children(out, child);
        out.push('}');
    }
    if !node.children.is_empty() {
        out.push(' ');
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_guard() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::test_lock();
        crate::set_enabled(true);
        g
    }

    fn stat(path: &str) -> Option<SpanStat> {
        snapshot()
            .into_iter()
            .find(|(p, _)| p == path)
            .map(|(_, s)| s)
    }

    #[test]
    fn nesting_builds_paths() {
        let _g = enabled_guard();
        {
            let _a = span_at("test-span-root");
            {
                let _b = span("inner");
                let _c = span("leaf");
            }
            let _d = span("inner");
        }
        crate::set_enabled(false);
        assert_eq!(stat("test-span-root").unwrap().count, 1);
        assert_eq!(stat("test-span-root/inner").unwrap().count, 2);
        // `leaf` opened while `inner` was the innermost live span.
        assert_eq!(stat("test-span-root/inner/leaf").unwrap().count, 1);
    }

    #[test]
    fn span_at_ignores_nesting_but_hosts_children() {
        let _g = enabled_guard();
        {
            let _a = span_at("test-span-outer");
            let _b = span_at("test-span-absolute");
            let _c = span("kid");
        }
        crate::set_enabled(false);
        assert!(stat("test-span-absolute").is_some());
        assert!(stat("test-span-absolute/kid").is_some());
        assert!(stat("test-span-outer/test-span-absolute").is_none());
    }

    #[test]
    fn stats_accumulate_and_time_is_sane() {
        let _g = enabled_guard();
        for _ in 0..3 {
            let _s = span_at("test-span-acc");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        crate::set_enabled(false);
        let s = stat("test-span-acc").unwrap();
        assert_eq!(s.count, 3);
        assert!(s.total_ns >= 3_000_000, "{}", s.total_ns);
        assert!(s.min_ns <= s.max_ns);
        assert!(total_ms("test-span-acc") >= 3.0);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_lock();
        crate::set_enabled(false);
        {
            let _s = span_at("test-span-disabled");
        }
        assert!(stat("test-span-disabled").is_none());
    }

    #[test]
    fn tree_json_nests_children() {
        let _g = enabled_guard();
        {
            let _a = span_at("test-tree");
            let _b = span("phase");
        }
        crate::set_enabled(false);
        let mut out = String::new();
        write_tree_json(&mut out);
        let tree_pos = out.find("\"test-tree\"").expect("root present");
        let child_pos = out.find("\"phase\"").expect("child present");
        assert!(child_pos > tree_pos, "child nested after parent:\n{out}");
        assert!(out.contains("\"total_ms\""));
    }

    #[test]
    fn spans_survive_unwinding_and_keep_recording() {
        let _g = enabled_guard();
        let panicked = std::panic::catch_unwind(|| {
            let _outer = span_at("test-span-unwind");
            let _inner = span("doomed");
            panic!("boom");
        });
        assert!(panicked.is_err());
        // The guards dropped during unwinding without a double panic and
        // still recorded; new spans on this thread keep working.
        {
            let _after = span_at("test-span-after-unwind");
        }
        crate::set_enabled(false);
        assert_eq!(stat("test-span-unwind").unwrap().count, 1);
        assert_eq!(stat("test-span-unwind/doomed").unwrap().count, 1);
        assert_eq!(stat("test-span-after-unwind").unwrap().count, 1);
        // Unwinding left no stale entries: the fresh span is a root, not
        // a child of the panicked one.
        assert!(stat("test-span-unwind/test-span-after-unwind").is_none());
    }

    #[test]
    fn cross_thread_spans_are_rooted_per_thread() {
        let _g = enabled_guard();
        {
            let _a = span_at("test-span-main");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = span("worker");
                })
                .join()
                .unwrap();
            });
        }
        crate::set_enabled(false);
        // The worker thread had an empty stack, so its span is a root.
        assert!(stat("worker").is_some());
        assert!(stat("test-span-main/worker").is_none());
    }
}
