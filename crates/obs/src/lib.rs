//! # mcast-obs
//!
//! Observability substrate for the multicast-scaling Monte-Carlo
//! pipeline: a global [`metrics`] registry (atomic counters, gauges and
//! log-scale histograms), RAII [`span`] timers feeding a thread-safe
//! hierarchical collector, a rate-limited [`progress`] reporter, and a
//! JSONL structured-[`events`] sink with `MCS_LOG`-style level filtering.
//!
//! The crate is deliberately **std-only** — no registry dependencies —
//! so every other crate in the workspace can depend on it without
//! widening the dependency tree, and the whole thing builds offline.
//!
//! ## Design rules
//!
//! * **Off by default, near-zero when off.** Every recording path first
//!   checks one relaxed atomic load ([`enabled`]); the disabled branch
//!   performs no allocation, no locking and no clock reads.
//! * **Never perturbs the experiment.** Instrumentation reads clocks and
//!   bumps atomics; it never touches RNG streams or sampled data, so
//!   reports are byte-identical with observability on or off.
//! * **Merge-exact counters.** Counters are plain `fetch_add` atomics:
//!   totals accumulated by N worker threads equal the sequential total.
//!
//! ## Quickstart
//!
//! ```
//! mcast_obs::set_enabled(true);
//! {
//!     let _span = mcast_obs::span_at("demo");
//!     mcast_obs::counter("demo.items").add(3);
//!     mcast_obs::histogram("demo.latency_us").record(250);
//! }
//! let dump = mcast_obs::dump_json(&[("seed", mcast_obs::json::Value::U64(1999))]);
//! assert!(dump.contains("\"demo.items\": 3"));
//! mcast_obs::set_enabled(false);
//! ```

// deny (not forbid): the counting allocator is the one audited unsafe
// island — see alloc.rs, which opts in with #[allow(unsafe_code)].
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod events;
pub mod export;
pub mod json;
pub mod metrics;
pub mod progress;
pub mod span;
pub mod trace;

pub use events::{set_level, Level};
pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram};
pub use progress::Progress;
pub use span::{span, span_at, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric and span recording is globally enabled.
///
/// One relaxed load; hot loops may gate entire instrumentation blocks on
/// it so the disabled path stays branch-predictable and allocation-free.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enable or disable metric and span recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clear all recorded values (counters/gauges to zero, histograms and
/// spans emptied). Registered metric handles stay valid.
pub fn reset() {
    metrics::reset();
    span::reset();
}

/// Serialise the full registry — metrics plus the hierarchical span tree
/// — as a JSON object, with caller-supplied run metadata under `"meta"`.
///
/// The output is deterministic for a given registry state: maps are
/// sorted by key.
pub fn dump_json(meta: &[(&str, json::Value)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        json::write_str(&mut out, k);
        out.push_str(": ");
        v.write(&mut out);
    }
    out.push_str("\n  },\n  \"counters\": {");
    for (i, (name, value)) in metrics::counters_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        json::write_str(&mut out, name);
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!(": {value}"));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in metrics::gauges_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        json::write_str(&mut out, name);
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!(": {value}"));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, snap)) in metrics::histograms_snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        json::write_str(&mut out, name);
        out.push_str(": ");
        snap.write_json(&mut out);
    }
    out.push_str("\n  },\n  \"spans\": ");
    span::write_tree_json(&mut out);
    out.push_str("\n}\n");
    out
}

/// Serialises tests that touch the global registry / enabled flag.
/// Crate-wide: the registry is shared across all test modules.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        crate::test_lock()
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        set_enabled(false);
        let c = counter("test.lib.disabled");
        let before = c.get();
        c.add(5);
        assert_eq!(c.get(), before);
        let h = histogram("test.lib.disabled_h");
        let n = h.snapshot().count;
        h.record(9);
        assert_eq!(h.snapshot().count, n);
    }

    #[test]
    fn dump_is_balanced_json_with_meta() {
        let _g = lock();
        set_enabled(true);
        counter("test.lib.dump").add(2);
        gauge("test.lib.g").set(-3);
        histogram("test.lib.h").record(100);
        {
            let _s = span_at("test-lib-span");
        }
        let dump = dump_json(&[
            ("seed", json::Value::U64(7)),
            ("scale", json::Value::Str("fast".into())),
            ("ratio", json::Value::F64(0.5)),
            ("none", json::Value::Null),
        ]);
        set_enabled(false);
        assert!(dump.contains("\"seed\": 7"));
        assert!(dump.contains("\"scale\": \"fast\""));
        assert!(dump.contains("\"test.lib.dump\": 2"));
        assert!(dump.contains("\"test.lib.g\": -3"));
        assert!(dump.contains("\"test-lib-span\""));
        // Structurally balanced (cheap well-formedness check; string
        // contents never contain braces in this dump).
        let opens = dump.matches('{').count();
        let closes = dump.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces:\n{dump}");
        let opens = dump.matches('[').count();
        let closes = dump.matches(']').count();
        assert_eq!(opens, closes, "unbalanced brackets:\n{dump}");
    }

    #[test]
    fn reset_clears_values_but_keeps_handles() {
        let _g = lock();
        set_enabled(true);
        let c = counter("test.lib.reset");
        c.add(4);
        assert!(c.get() >= 4);
        reset();
        assert_eq!(c.get(), 0);
        c.add(1);
        assert_eq!(counter("test.lib.reset").get(), 1);
        set_enabled(false);
    }
}
