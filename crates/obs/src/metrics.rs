//! The atomic metrics registry: counters, gauges, and log-scale
//! histograms.
//!
//! Handles are obtained by name ([`counter`], [`gauge`], [`histogram`])
//! and live for the whole process (`&'static`), so hot code can fetch a
//! handle once and then record with a single atomic RMW per event. When
//! observability is globally disabled every recording method returns
//! after one relaxed load — no locking, no allocation.
//!
//! All recording uses relaxed `fetch_add`s, so totals merged across
//! worker threads equal the sequential totals exactly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    total: AtomicU64,
    /// Registry name, stamped once at registration; lets the trace
    /// recorder attribute deltas without a reverse lookup. Counters
    /// constructed outside the registry stay anonymous (no attribution).
    name: OnceLock<&'static str>,
}

impl Counter {
    /// A zeroed counter (usable in `static`s).
    pub const fn new() -> Self {
        Self {
            total: AtomicU64::new(0),
            name: OnceLock::new(),
        }
    }

    /// Add `n` events (no-op while observability is disabled). While a
    /// trace recorder is active, the delta is also attributed to the
    /// calling thread's innermost open span.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.total.fetch_add(n, Ordering::Relaxed);
            if crate::trace::active() {
                if let Some(name) = self.name.get() {
                    crate::trace::on_counter_add(name, n);
                }
            }
        }
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        self.total.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    /// Registry name; see [`Counter::name`]. Named gauges additionally
    /// emit instant events into an active trace on every update.
    name: OnceLock<&'static str>,
}

impl Gauge {
    /// A zeroed gauge (usable in `static`s).
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
            name: OnceLock::new(),
        }
    }

    /// Set the gauge (no-op while observability is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
            self.trace_instant(v);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            let prev = self.value.fetch_add(delta, Ordering::Relaxed);
            self.trace_instant(prev.wrapping_add(delta));
        }
    }

    #[inline]
    fn trace_instant(&self, v: i64) {
        if crate::trace::active() {
            if let Some(name) = self.name.get() {
                crate::trace::instant(name, v);
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn clear(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two histogram buckets.
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples (latencies in µs, sizes,
/// …): bucket 0 holds values `{0, 1}`, bucket `b ≥ 1` holds
/// `[2^b, 2^{b+1})`. Recording is four relaxed atomic RMWs; reads are
/// racy-but-consistent-enough snapshots (exact once writers quiesce).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// An empty histogram (usable in `static`s).
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Bucket index for a value.
    #[inline]
    fn index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample (no-op while observability is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, c)| {
                let c = c.load(Ordering::Relaxed);
                if c == 0 {
                    return None;
                }
                Some((if b == 0 { 0 } else { 1u64 << b }, c))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn clear(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket lower bound, samples)` for every non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`0.0 ..= 1.0`) from the log buckets: the
    /// upper bound of the bucket holding the q-th sample, clamped to the
    /// observed max. Resolution is a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(lower, c) in &self.buckets {
            seen += c;
            if seen >= target {
                // Bucket 63's upper bound is u64::MAX itself:
                // saturating_mul(2) followed by a subtraction would land
                // one short (u64::MAX - 1) for lower = 2^63.
                let upper = if lower == 0 {
                    1
                } else {
                    lower.checked_mul(2).map(|x| x - 1).unwrap_or(u64::MAX)
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Append the snapshot as a JSON object.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": ",
            self.count, self.sum, self.min, self.max
        );
        crate::json::write_f64(out, self.mean());
        let _ = write!(
            out,
            ", \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99)
        );
        for (i, (lower, c)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{lower}, {c}]");
        }
        out.push_str("]}");
    }
}

/// The global name→handle registry. Handles are leaked so they can be
/// `&'static`; the set of metric names is small and bounded.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Get or create the counter registered under `name`.
pub fn counter(name: &str) -> &'static Counter {
    let mut map = lock(&registry().counters);
    if let Some(c) = map.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    let _ = c.name.set(Box::leak(name.to_string().into_boxed_str()));
    map.insert(name.to_string(), c);
    c
}

/// Get or create the gauge registered under `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut map = lock(&registry().gauges);
    if let Some(g) = map.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    let _ = g.name.set(Box::leak(name.to_string().into_boxed_str()));
    map.insert(name.to_string(), g);
    g
}

/// Get or create the histogram registered under `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = lock(&registry().histograms);
    if let Some(h) = map.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(name.to_string(), h);
    h
}

/// Sorted `(name, total)` snapshot of all counters.
pub fn counters_snapshot() -> Vec<(String, u64)> {
    lock(&registry().counters)
        .iter()
        .map(|(k, c)| (k.clone(), c.get()))
        .collect()
}

/// Sorted `(name, value)` snapshot of all gauges.
pub fn gauges_snapshot() -> Vec<(String, i64)> {
    lock(&registry().gauges)
        .iter()
        .map(|(k, g)| (k.clone(), g.get()))
        .collect()
}

/// Sorted `(name, snapshot)` of all histograms.
pub fn histograms_snapshot() -> Vec<(String, HistogramSnapshot)> {
    lock(&registry().histograms)
        .iter()
        .map(|(k, h)| (k.clone(), h.snapshot()))
        .collect()
}

/// Zero every registered metric (handles stay valid).
pub fn reset() {
    for c in lock(&registry().counters).values() {
        c.clear();
    }
    for g in lock(&registry().gauges).values() {
        g.clear();
    }
    for h in lock(&registry().histograms).values() {
        h.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_guard() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::test_lock();
        crate::set_enabled(true);
        g
    }

    #[test]
    fn counter_accumulates_and_handles_are_shared() {
        let _g = enabled_guard();
        let a = counter("test.metrics.c");
        let b = counter("test.metrics.c");
        assert!(std::ptr::eq(a, b));
        let before = a.get();
        a.add(2);
        b.add(3);
        assert_eq!(a.get() - before, 5);
        crate::set_enabled(false);
    }

    #[test]
    fn gauge_set_and_add() {
        let _g = enabled_guard();
        let g = gauge("test.metrics.g");
        g.set(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_bucket_indexing() {
        assert_eq!(Histogram::index(0), 0);
        assert_eq!(Histogram::index(1), 0);
        assert_eq!(Histogram::index(2), 1);
        assert_eq!(Histogram::index(3), 1);
        assert_eq!(Histogram::index(4), 2);
        assert_eq!(Histogram::index(1023), 9);
        assert_eq!(Histogram::index(1024), 10);
        assert_eq!(Histogram::index(u64::MAX), 63);
    }

    #[test]
    fn histogram_snapshot_stats() {
        let _g = enabled_guard();
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert!((s.mean() - 1106.0 / 6.0).abs() < 1e-12);
        // Buckets: [0,1] -> 2 samples, [2,3] -> 2, [64,127] -> 1, [512,1023] -> 1.
        assert_eq!(s.buckets, vec![(0, 2), (2, 2), (64, 1), (512, 1)]);
        // Quantiles are bucket upper bounds clamped to max.
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.quantile(0.5) <= 3);
        crate::set_enabled(false);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.9), 0);
        let mut out = String::new();
        s.write_json(&mut out);
        assert!(out.contains("\"count\": 0"));
        assert!(out.ends_with("\"buckets\": []}"));
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let _g = enabled_guard();
        counter("test.metrics.zz").add(1);
        counter("test.metrics.aa").add(1);
        let names: Vec<String> = counters_snapshot().into_iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        crate::set_enabled(false);
    }
}
