//! Opt-in counting global allocator with per-span attribution.
//!
//! Promoted from the test-only allocator in `mcast-tree`'s zero-alloc
//! suite: a [`CountingAlloc`] wraps [`System`] and, when counting is
//! switched on, maintains **thread-local** tallies — allocation count,
//! total bytes requested, net live bytes, and a high-watermark of live
//! bytes. The trace recorder snapshots these at span open/close to
//! attribute allocation deltas to the innermost span on each thread
//! (same exclusive model as counter attribution).
//!
//! Binaries opt in by installing the allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mcast_obs::alloc::CountingAlloc = mcast_obs::alloc::CountingAlloc;
//! ```
//!
//! and calling [`set_counting`]`(true)` when tracing with allocation
//! attribution is requested. While counting is off (the default) the
//! allocator is a single relaxed load away from plain [`System`], so
//! installing it is safe for hot paths.
//!
//! ## Per-span peak via watermark save/restore
//!
//! The watermark cell tracks the maximum of net live bytes since it was
//! last reset. When a traced span opens, the current watermark is saved
//! in the frame and the cell is re-armed to the current live level;
//! when the span closes, `watermark - live_at_open` is the span's peak
//! net growth, and the parent's view is restored with
//! `max(saved, child_watermark)` — so nested spans see only their own
//! growth while parents still observe the true maximum.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);

/// Whether allocation counting is currently engaged.
#[inline]
pub fn counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

/// Engage or disengage allocation counting. Only has an observable
/// effect in processes that installed [`CountingAlloc`] as the global
/// allocator; elsewhere the tallies simply stay at zero.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

thread_local! {
    static COUNT: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static LIVE: Cell<u64> = const { Cell::new(0) };
    static WATERMARK: Cell<u64> = const { Cell::new(0) };
}

/// Record an allocation of `size` bytes on this thread. Called by the
/// allocator; exposed `pub(crate)` so the trace tests can exercise the
/// watermark logic without installing a global allocator.
#[inline]
pub(crate) fn on_alloc(size: usize) {
    // try_with: the allocator runs during thread teardown, after TLS
    // destructors may have dropped these cells.
    let _ = COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = BYTES.try_with(|b| b.set(b.get().wrapping_add(size as u64)));
    let _ = LIVE.try_with(|l| {
        let live = l.get().wrapping_add(size as u64);
        l.set(live);
        let _ = WATERMARK.try_with(|w| {
            if live > w.get() {
                w.set(live);
            }
        });
    });
}

/// Record a deallocation of `size` bytes on this thread.
#[inline]
pub(crate) fn on_dealloc(size: usize) {
    let _ = LIVE.try_with(|l| l.set(l.get().saturating_sub(size as u64)));
}

/// Snapshot of the thread-local tallies at span open, plus the saved
/// parent watermark.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FrameBase {
    count: u64,
    bytes: u64,
    live: u64,
    saved_watermark: u64,
}

/// Open an attribution frame: snapshot the tallies and re-arm the
/// watermark to the current live level. Returns `None` when counting is
/// off (the common case) so the trace records no `alloc` object.
pub(crate) fn frame_base() -> Option<FrameBase> {
    if !counting() {
        return None;
    }
    let count = COUNT.try_with(Cell::get).ok()?;
    let bytes = BYTES.try_with(Cell::get).ok()?;
    let live = LIVE.try_with(Cell::get).ok()?;
    let saved_watermark = WATERMARK.try_with(Cell::get).ok()?;
    let _ = WATERMARK.try_with(|w| w.set(live));
    Some(FrameBase {
        count,
        bytes,
        live,
        saved_watermark,
    })
}

/// Close an attribution frame: compute the deltas and restore the
/// parent's watermark view.
pub(crate) fn frame_delta(base: FrameBase) -> crate::trace::AllocDelta {
    let count = COUNT
        .try_with(Cell::get)
        .map(|c| c.wrapping_sub(base.count))
        .unwrap_or(0);
    let bytes = BYTES
        .try_with(Cell::get)
        .map(|b| b.wrapping_sub(base.bytes))
        .unwrap_or(0);
    let peak = WATERMARK
        .try_with(|w| {
            let child_peak = w.get();
            w.set(base.saved_watermark.max(child_peak));
            child_peak.saturating_sub(base.live)
        })
        .unwrap_or(0);
    crate::trace::AllocDelta { count, bytes, peak }
}

/// A counting wrapper around the system allocator. Behaviour is
/// identical to [`System`]; when [`set_counting`] is on it additionally
/// maintains the thread-local tallies used for per-span attribution.
pub struct CountingAlloc;

// SAFETY: all allocation paths delegate directly to `System`; the
// bookkeeping touches only thread-local Cells (no allocation, no
// locking), so it cannot recurse into the allocator or deadlock.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() && counting() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if counting() {
            on_dealloc(layout.size());
        }
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() && counting() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() && counting() {
            on_alloc(layout.size());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests drive on_alloc/on_dealloc directly (no global
    // allocator is installed in the test binary), so the tallies are
    // fully deterministic.

    #[test]
    fn frame_delta_tracks_count_bytes_and_peak() {
        let _g = crate::test_lock();
        set_counting(true);
        let base = frame_base().expect("counting engaged");
        on_alloc(100);
        on_alloc(200);
        on_dealloc(200);
        on_alloc(50);
        let d = frame_delta(base);
        set_counting(false);
        assert_eq!(d.count, 3);
        assert_eq!(d.bytes, 350);
        assert_eq!(d.peak, 300, "peak live growth was 100+200");
    }

    #[test]
    fn nested_frames_isolate_child_peak_and_restore_parent_watermark() {
        let _g = crate::test_lock();
        set_counting(true);
        let outer = frame_base().unwrap();
        on_alloc(1000);
        on_dealloc(1000); // outer peak so far: 1000
        let inner = frame_base().unwrap();
        on_alloc(10);
        let di = frame_delta(inner);
        on_dealloc(10);
        let do_ = frame_delta(outer);
        set_counting(false);
        assert_eq!(di.peak, 10, "inner sees only its own growth");
        assert_eq!(do_.peak, 1000, "outer watermark restored across child");
    }

    #[test]
    fn counting_off_yields_no_frame() {
        let _g = crate::test_lock();
        set_counting(false);
        assert!(frame_base().is_none());
    }
}
