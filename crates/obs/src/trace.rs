//! The timed trace recorder: a sidecar event stream layered on the RAII
//! span tree.
//!
//! Where [`crate::span`] aggregates (per-path count/total/min/max), the
//! trace records **occurrences**: every traced span close emits one
//! event carrying monotonic start/end timestamps, the recording
//! thread's lane id, the counter deltas attributed to the span, and —
//! when the counting allocator is engaged — allocation deltas. Drivers
//! add [`instant`] events for point-in-time signals (scheduler queue
//! depth, retries).
//!
//! Recording is strictly sidecar: nothing here touches experiment state
//! or report artifacts, and the whole module is gated on one relaxed
//! atomic ([`active`]) that is off unless a recorder was started.
//!
//! ## Attribution model
//!
//! Each thread keeps a stack of open *frames*, one per live traced span
//! on that thread. A counter bumped while tracing attributes its delta
//! to the **innermost open frame on the bumping thread** (exclusive
//! attribution: parents do not aggregate their children's deltas, and a
//! bump on a thread with no open span is dropped from the trace — the
//! aggregate registry still sees it). Allocation deltas follow the same
//! model via the thread-local stats of [`crate::alloc`]; the per-span
//! peak uses a watermark save/restore so nested spans see only their
//! own net growth.
//!
//! ## Lossiness
//!
//! Like the span collector, the trace is lossy by design during thread
//! teardown or unwinding: if the thread-local frame stack is
//! unavailable, the span event is still emitted with whatever
//! attribution could be recovered (possibly none). A panicking scope's
//! spans therefore always *close* in the trace — pinned by tests here
//! and by the scheduler fault drill.

use crate::json;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Whether a trace recorder is currently collecting. One relaxed load;
/// instrumentation blocks that allocate or lock should gate on it.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Process-wide monotonic epoch: all trace timestamps are nanoseconds
/// since the first recorder start in this process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (saturating).
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Allocation deltas attributed to one span occurrence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations (allocs + reallocs) during the span, on its thread.
    pub count: u64,
    /// Total bytes requested during the span, on its thread.
    pub bytes: u64,
    /// Peak net growth of live bytes above the level at span entry.
    pub peak: u64,
}

/// One completed span occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Full `/`-separated span path.
    pub path: String,
    /// Recording thread's lane id (stable per thread, dense from 0).
    pub tid: u32,
    /// Start, nanoseconds since the trace epoch.
    pub t0_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub t1_ns: u64,
    /// Counter deltas attributed to this occurrence (sorted by name).
    pub counters: Vec<(String, u64)>,
    /// Allocation deltas, when the counting allocator was engaged.
    pub alloc: Option<AllocDelta>,
}

/// A point-in-time signal (queue depth, retry, …).
#[derive(Clone, Debug, PartialEq)]
pub struct InstantEvent {
    /// Signal name.
    pub name: String,
    /// Recording thread's lane id.
    pub tid: u32,
    /// Timestamp, nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Signal value.
    pub value: i64,
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A completed span occurrence.
    Span(SpanEvent),
    /// A point-in-time signal.
    Instant(InstantEvent),
}

/// Everything a stopped recorder collected.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// Events in completion order (spans appear when they close).
    pub events: Vec<TraceEvent>,
}

struct Recorder {
    events: Vec<TraceEvent>,
}

fn recorder() -> &'static Mutex<Option<Recorder>> {
    static RECORDER: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    RECORDER.get_or_init(|| Mutex::new(None))
}

thread_local! {
    /// Dense per-thread lane id, assigned on first trace activity.
    static LANE: Cell<u32> = const { Cell::new(u32::MAX) };
    /// Stack of open frames for counter/alloc attribution.
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's trace lane id (dense from 0, stable for the
/// thread's lifetime).
pub fn lane() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    LANE.with(|l| {
        let v = l.get();
        if v != u32::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        l.set(v);
        v
    })
}

struct Frame {
    counters: BTreeMap<&'static str, u64>,
    alloc: Option<crate::alloc::FrameBase>,
}

/// Start a new recorder. Subsequent span closes and [`instant`] calls
/// are collected until [`stop`]. Restarting an active recorder discards
/// the earlier events.
pub fn start() {
    epoch(); // pin the epoch before any timestamp is taken
    let mut rec = recorder().lock().unwrap_or_else(|e| e.into_inner());
    *rec = Some(Recorder { events: Vec::new() });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Stop recording and return everything collected, or `None` if no
/// recorder was active.
pub fn stop() -> Option<TraceData> {
    ACTIVE.store(false, Ordering::Relaxed);
    let mut rec = recorder().lock().unwrap_or_else(|e| e.into_inner());
    rec.take().map(|r| TraceData { events: r.events })
}

fn push_event(ev: TraceEvent) {
    let mut rec = recorder().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(r) = rec.as_mut() {
        r.events.push(ev);
    }
}

/// Open an attribution frame for a traced span; returns the start
/// timestamp. Called by [`crate::span::SpanGuard`] when tracing is
/// active.
pub(crate) fn open_frame() -> u64 {
    let alloc = crate::alloc::frame_base();
    // Lossy like the span stack: if TLS is unavailable the span still
    // times; only attribution for it (and its children) is lost.
    let _ = FRAMES.try_with(|f| {
        if let Ok(mut f) = f.try_borrow_mut() {
            f.push(Frame {
                counters: BTreeMap::new(),
                alloc,
            });
        }
    });
    now_ns()
}

/// Close the innermost frame and emit the span event. Runs during
/// unwinding when a spanned scope panics — every fallible step is
/// `try_`, so the span always closes (worst case without attribution).
pub(crate) fn close_frame(path: &str, t0_ns: u64) {
    let t1_ns = now_ns();
    let frame = FRAMES
        .try_with(|f| f.try_borrow_mut().ok().and_then(|mut f| f.pop()))
        .ok()
        .flatten();
    let (counters, alloc) = match frame {
        Some(frame) => {
            let alloc = frame.alloc.map(crate::alloc::frame_delta);
            (
                frame
                    .counters
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
                alloc,
            )
        }
        None => (Vec::new(), None),
    };
    push_event(TraceEvent::Span(SpanEvent {
        path: path.to_string(),
        tid: lane(),
        t0_ns,
        t1_ns,
        counters,
        alloc,
    }));
}

/// Attribute a counter delta to the innermost open frame on this
/// thread. Called by [`crate::metrics::Counter::add`] while tracing.
pub(crate) fn on_counter_add(name: &'static str, n: u64) {
    let _ = FRAMES.try_with(|f| {
        if let Ok(mut f) = f.try_borrow_mut() {
            if let Some(top) = f.last_mut() {
                *top.counters.entry(name).or_insert(0) += n;
            }
        }
    });
}

/// Record a point-in-time signal (no-op unless tracing is active).
pub fn instant(name: &str, value: i64) {
    if !active() {
        return;
    }
    push_event(TraceEvent::Instant(InstantEvent {
        name: name.to_string(),
        tid: lane(),
        t_ns: now_ns(),
        value,
    }));
}

impl TraceData {
    /// Render as `trace.jsonl`: one `meta` line, then one line per
    /// event in completion order. See DESIGN §10 for the schema.
    pub fn write_jsonl(&self, meta: &[(&str, json::Value)]) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        out.push_str("{\"ev\":\"meta\",\"version\":1");
        for (k, v) in meta {
            out.push(',');
            json::write_str(&mut out, k);
            out.push(':');
            v.write(&mut out);
        }
        out.push_str("}\n");
        for ev in &self.events {
            match ev {
                TraceEvent::Span(s) => {
                    out.push_str("{\"ev\":\"span\",\"path\":");
                    json::write_str(&mut out, &s.path);
                    let _ = write!(
                        out,
                        ",\"tid\":{},\"t0\":{},\"t1\":{}",
                        s.tid, s.t0_ns, s.t1_ns
                    );
                    if !s.counters.is_empty() {
                        out.push_str(",\"counters\":{");
                        for (i, (name, delta)) in s.counters.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            json::write_str(&mut out, name);
                            let _ = write!(out, ":{delta}");
                        }
                        out.push('}');
                    }
                    if let Some(a) = s.alloc {
                        let _ = write!(
                            out,
                            ",\"alloc\":{{\"count\":{},\"bytes\":{},\"peak\":{}}}",
                            a.count, a.bytes, a.peak
                        );
                    }
                    out.push_str("}\n");
                }
                TraceEvent::Instant(i) => {
                    out.push_str("{\"ev\":\"instant\",\"name\":");
                    json::write_str(&mut out, &i.name);
                    let _ = write!(out, ",\"tid\":{},\"t\":{},\"v\":{}}}\n", i.tid, i.t_ns, i.value);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, span, span_at};

    fn traced_guard() -> std::sync::MutexGuard<'static, ()> {
        let g = crate::test_lock();
        crate::set_enabled(true);
        start();
        g
    }

    fn spans(data: &TraceData) -> Vec<&SpanEvent> {
        data.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn records_span_occurrences_with_timestamps() {
        let _g = traced_guard();
        {
            let _a = span_at("test-trace-root");
            let _b = span("child");
        }
        {
            let _a = span_at("test-trace-root");
        }
        let data = stop().expect("recorder was active");
        crate::set_enabled(false);
        let spans = spans(&data);
        let roots: Vec<_> = spans.iter().filter(|s| s.path == "test-trace-root").collect();
        assert_eq!(roots.len(), 2, "one event per occurrence");
        let child = spans
            .iter()
            .find(|s| s.path == "test-trace-root/child")
            .expect("child span traced");
        assert!(child.t1_ns >= child.t0_ns);
        // The child closes before its parent.
        assert!(spans[0].path.contains("child"));
        assert_eq!(child.tid, lane());
    }

    #[test]
    fn counter_deltas_attribute_to_innermost_span() {
        let _g = traced_guard();
        let c = crate::metrics::counter("test.trace.attr");
        {
            let _outer = span_at("test-trace-outer");
            c.add(1);
            {
                let _inner = span("inner");
                c.add(10);
                c.add(20);
            }
            c.add(2);
        }
        let data = stop().unwrap();
        crate::set_enabled(false);
        let spans = spans(&data);
        let inner = spans.iter().find(|s| s.path.ends_with("/inner")).unwrap();
        let outer = spans.iter().find(|s| s.path == "test-trace-outer").unwrap();
        assert_eq!(inner.counters, vec![("test.trace.attr".to_string(), 30)]);
        assert_eq!(outer.counters, vec![("test.trace.attr".to_string(), 3)]);
    }

    #[test]
    fn spans_still_close_during_unwinding() {
        let _g = traced_guard();
        let caught = std::panic::catch_unwind(|| {
            let _outer = span_at("test-trace-unwind");
            let _inner = span("doomed");
            panic!("boom");
        });
        assert!(caught.is_err());
        let data = stop().unwrap();
        crate::set_enabled(false);
        let spans = spans(&data);
        assert!(spans.iter().any(|s| s.path == "test-trace-unwind"));
        assert!(spans.iter().any(|s| s.path == "test-trace-unwind/doomed"));
        for s in spans {
            assert!(s.t1_ns >= s.t0_ns, "{} closed with t1 < t0", s.path);
        }
    }

    #[test]
    fn instants_and_jsonl_shape() {
        let _g = traced_guard();
        {
            let _s = span_at("test-trace-jsonl");
            instant("test.queue_depth", 7);
        }
        let data = stop().unwrap();
        crate::set_enabled(false);
        let text = data.write_jsonl(&[("cmd", json::Value::Str("unit".into()))]);
        let mut lines = text.lines();
        let meta = json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(meta.get("ev").unwrap().as_str(), Some("meta"));
        assert_eq!(meta.get("cmd").unwrap().as_str(), Some("unit"));
        let mut saw_span = false;
        let mut saw_instant = false;
        for line in lines {
            let v = json::parse(line).expect("every line parses");
            match v.get("ev").unwrap().as_str().unwrap() {
                "span" => {
                    if v.get("path").unwrap().as_str() == Some("test-trace-jsonl") {
                        saw_span = true;
                        assert!(v.get("t1").unwrap().as_u64() >= v.get("t0").unwrap().as_u64());
                    }
                }
                "instant" => {
                    if v.get("name").unwrap().as_str() == Some("test.queue_depth") {
                        saw_instant = true;
                        assert_eq!(v.get("v").unwrap().as_i64(), Some(7));
                    }
                }
                other => panic!("unknown event kind {other}"),
            }
        }
        assert!(saw_span && saw_instant, "{text}");
    }

    #[test]
    fn inactive_trace_records_nothing() {
        let _g = crate::test_lock();
        crate::set_enabled(true);
        assert!(!active());
        {
            let _s = span_at("test-trace-inactive");
            instant("test.trace.noop", 1);
        }
        crate::set_enabled(false);
        assert!(stop().is_none());
    }

    #[test]
    fn restart_discards_previous_events() {
        let _g = traced_guard();
        {
            let _s = span_at("test-trace-first");
        }
        start();
        {
            let _s = span_at("test-trace-second");
        }
        let data = stop().unwrap();
        crate::set_enabled(false);
        let spans = spans(&data);
        assert!(spans.iter().all(|s| s.path != "test-trace-first"));
        assert!(spans.iter().any(|s| s.path == "test-trace-second"));
    }
}
