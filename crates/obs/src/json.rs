//! Minimal JSON emission helpers (the crate is std-only by design, so it
//! cannot use `serde_json`; everything it emits is built from these).

/// A JSON scalar for metadata values.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values emit `null`, which is what strict JSON
    /// requires).
    F64(f64),
    /// String (escaped on write).
    Str(String),
}

impl Value {
    /// Append this value's JSON form to `out`.
    pub fn write(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_f64(out, *v),
            Value::Str(s) => write_str(out, s),
        }
    }
}

/// Append `v` as JSON: finite floats in shortest-roundtrip form,
/// non-finite as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(v: Value) -> String {
        let mut s = String::new();
        v.write(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(render(Value::Null), "null");
        assert_eq!(render(Value::Bool(true)), "true");
        assert_eq!(
            render(Value::U64(18_446_744_073_709_551_615)),
            "18446744073709551615"
        );
        assert_eq!(render(Value::I64(-5)), "-5");
        assert_eq!(render(Value::F64(1.5)), "1.5");
        assert_eq!(render(Value::F64(f64::NAN)), "null");
        assert_eq!(render(Value::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(render(Value::Str("plain".into())), "\"plain\"");
        assert_eq!(render(Value::Str("a\"b\\c".into())), "\"a\\\"b\\\\c\"");
        assert_eq!(render(Value::Str("x\ny\t".into())), "\"x\\ny\\t\"");
        assert_eq!(render(Value::Str("\u{1}".into())), "\"\\u0001\"");
        assert_eq!(render(Value::Str("ünïcode".into())), "\"ünïcode\"");
    }
}
