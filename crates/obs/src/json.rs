//! Minimal JSON emission and parsing helpers (the crate is std-only by
//! design, so it cannot use `serde_json`; everything it emits — and the
//! trace/budget files it reads back — goes through these).

/// A JSON value. Scalars serve run metadata; the composite variants
/// carry parsed trace events and budget files.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values emit `null`, which is what strict JSON
    /// requires).
    F64(f64),
    /// String (escaped on write).
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion-ordered (writers emit sorted keys themselves
    /// when determinism matters).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Append this value's JSON form to `out`.
    pub fn write(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => write_f64(out, *v),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Member of an object by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(*v as i64),
            _ => None,
        }
    }

    /// Any numeric value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse one JSON document (trailing whitespace allowed).
///
/// Strict enough for round-tripping this crate's own output and for
/// user-supplied budget files: rejects trailing garbage, unterminated
/// strings/composites, and malformed numbers. Numbers parse as `U64` /
/// `I64` when integral and in range, `F64` otherwise.
pub fn parse(s: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Why a JSON document failed to parse: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the problem was noticed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by this
                            // crate; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Recover the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match c {
                        _ if c < 0x80 => 1,
                        _ if c >= 0xf0 => 4,
                        _ if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Append `v` as JSON: finite floats in shortest-roundtrip form,
/// non-finite as `null`.
pub fn write_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Append `s` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(v: Value) -> String {
        let mut s = String::new();
        v.write(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(render(Value::Null), "null");
        assert_eq!(render(Value::Bool(true)), "true");
        assert_eq!(
            render(Value::U64(18_446_744_073_709_551_615)),
            "18446744073709551615"
        );
        assert_eq!(render(Value::I64(-5)), "-5");
        assert_eq!(render(Value::F64(1.5)), "1.5");
        assert_eq!(render(Value::F64(f64::NAN)), "null");
        assert_eq!(render(Value::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(render(Value::Str("plain".into())), "\"plain\"");
        assert_eq!(render(Value::Str("a\"b\\c".into())), "\"a\\\"b\\\\c\"");
        assert_eq!(render(Value::Str("x\ny\t".into())), "\"x\\ny\\t\"");
        assert_eq!(render(Value::Str("\u{1}".into())), "\"\\u0001\"");
        assert_eq!(render(Value::Str("ünïcode".into())), "\"ünïcode\"");
    }

    #[test]
    fn composites_render_compact() {
        let v = Value::Obj(vec![
            ("a".into(), Value::Arr(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Bool(false)),
        ]);
        assert_eq!(render(v), "{\"a\":[1,null],\"b\":false}");
    }

    #[test]
    fn parse_scalars_and_number_typing() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("42").unwrap(), Value::U64(42));
        assert_eq!(
            parse("18446744073709551615").unwrap(),
            Value::U64(u64::MAX)
        );
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("1.5").unwrap(), Value::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(parse("\"hi\\n\\\"there\\\"\"").unwrap().as_str(), Some("hi\n\"there\""));
        assert_eq!(parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }

    #[test]
    fn parse_roundtrips_own_output() {
        let v = Value::Obj(vec![
            ("n".into(), Value::U64(3)),
            ("neg".into(), Value::I64(-9)),
            ("s".into(), Value::Str("a\"b\\c\nü".into())),
            (
                "arr".into(),
                Value::Arr(vec![Value::F64(0.25), Value::Null, Value::Bool(true)]),
            ),
            ("empty".into(), Value::Obj(vec![])),
        ]);
        assert_eq!(parse(&render(v.clone())).unwrap(), v);
    }

    #[test]
    fn accessors_navigate_nested_values() {
        let v = parse(r#"{"a": {"b": [10, -2, 0.5, "s", true]}}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(10));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(0.5));
        assert_eq!(arr[3].as_str(), Some("s"));
        assert_eq!(arr[4].as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        // Cross-type numeric coercions stay lossless-only.
        assert_eq!(Value::U64(u64::MAX).as_i64(), None);
        assert_eq!(Value::I64(-1).as_u64(), None);
        assert_eq!(Value::F64(1.5).as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "truex",
            "1 2",
            "{\"a\":1,}",
            "nul",
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(e.offset <= bad.len());
            assert!(!e.to_string().is_empty());
        }
    }
}
