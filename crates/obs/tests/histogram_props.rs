//! Property tests pinning the log₂-histogram's bucket assignment and
//! quantile extraction across the whole `u64` range, with the exact
//! power-of-two boundaries spelled out.
//!
//! The audit these tests grew out of found one genuine off-by-one: the
//! top bucket's (b = 63) upper bound was computed as
//! `saturating_mul(2) - 1`, which saturates *before* subtracting and so
//! reported `u64::MAX - 1` for a recorded `u64::MAX`. The
//! `max_value_quantile_is_exact` cases pin the fix.

use mcast_obs::Histogram;
use proptest::prelude::*;

fn enabled() {
    // Integration-test process: flip the global once; every test here
    // wants recording on and none turns it off.
    mcast_obs::set_enabled(true);
}

/// Inclusive bucket bounds implied by a snapshot's lower bound.
fn bucket_bounds(lower: u64) -> (u64, u64) {
    if lower == 0 {
        (0, 1)
    } else {
        (lower, lower.checked_mul(2).map(|x| x - 1).unwrap_or(u64::MAX))
    }
}

#[test]
fn powers_of_two_land_on_their_own_bucket_boundary() {
    enabled();
    for k in 1..64u32 {
        let v = 1u64 << k;
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        assert_eq!(
            s.buckets,
            vec![(v, 1)],
            "2^{k} must open bucket {k} at lower bound 2^{k}"
        );
        // One below the boundary belongs to the previous bucket.
        let h = Histogram::new();
        h.record(v - 1);
        let s = h.snapshot();
        let expected_lower = if k == 1 { 0 } else { 1u64 << (k - 1) };
        assert_eq!(
            s.buckets,
            vec![(expected_lower, 1)],
            "2^{k} - 1 must stay in bucket {}",
            k - 1
        );
    }
}

#[test]
fn zero_and_one_share_bucket_zero() {
    enabled();
    let h = Histogram::new();
    h.record(0);
    h.record(1);
    assert_eq!(h.snapshot().buckets, vec![(0, 2)]);
}

#[test]
fn max_value_quantile_is_exact() {
    enabled();
    let h = Histogram::new();
    h.record(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.buckets, vec![(1u64 << 63, 1)]);
    // The fixed off-by-one: the top bucket's upper bound is u64::MAX
    // itself, so a lone max sample is returned exactly at any q.
    assert_eq!(s.quantile(0.5), u64::MAX);
    assert_eq!(s.quantile(1.0), u64::MAX);
}

#[test]
fn top_bucket_boundary_neighbours() {
    enabled();
    for v in [(1u64 << 63) - 1, 1u64 << 63, u64::MAX - 1, u64::MAX] {
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        let (lower, count) = s.buckets[0];
        let (lo, hi) = bucket_bounds(lower);
        assert_eq!(count, 1);
        assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        // Single sample: every quantile collapses to it.
        assert_eq!(s.quantile(0.99), v);
    }
}

proptest! {
    #[test]
    fn every_sample_lands_in_a_containing_bucket(v in any::<u64>()) {
        enabled();
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        prop_assert_eq!(s.count, 1);
        prop_assert_eq!(s.buckets.len(), 1);
        let (lower, count) = s.buckets[0];
        let (lo, hi) = bucket_bounds(lower);
        prop_assert_eq!(count, 1);
        prop_assert!(lo <= v && v <= hi, "{} outside [{}, {}]", v, lo, hi);
    }

    #[test]
    fn single_sample_quantile_is_identity(v in any::<u64>(), q in 0.0f64..1.0) {
        enabled();
        let h = Histogram::new();
        h.record(v);
        let s = h.snapshot();
        // Bucket upper bound clamped to the observed max = the sample.
        prop_assert_eq!(s.quantile(q), v);
    }

    #[test]
    fn quantiles_are_monotone_and_anchored(
        mut vs in proptest::collection::vec(any::<u64>(), 1..40)
    ) {
        enabled();
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let s = h.snapshot();
        vs.sort_unstable();
        prop_assert_eq!(s.count, vs.len() as u64);
        prop_assert_eq!(s.max, *vs.last().unwrap());
        prop_assert_eq!(s.min, vs[0]);
        // Monotone in q, and q = 1 recovers the exact max.
        let mut prev = 0u64;
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            let cur = s.quantile(q);
            prop_assert!(cur >= prev, "quantile({}) = {} < {}", q, cur, prev);
            prop_assert!(cur <= s.max);
            prev = cur;
        }
        prop_assert_eq!(s.quantile(1.0), s.max);
        // Every probed quantile is at least the bucket floor of min.
        let (lo, _) = bucket_bounds(s.buckets[0].0);
        prop_assert!(s.quantile(0.0) >= lo);
    }

    #[test]
    fn bucket_counts_sum_to_sample_count(
        vs in proptest::collection::vec(any::<u64>(), 0..60)
    ) {
        enabled();
        let h = Histogram::new();
        for &v in &vs {
            h.record(v);
        }
        let s = h.snapshot();
        let bucket_total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(bucket_total, vs.len() as u64);
        // Lower bounds are strictly increasing powers of two (or 0).
        for w in s.buckets.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }
}
