//! Counting-allocator proof of `GraphBuilder::build`'s in-place CSR
//! construction: the build recycles the builder's own edge buffer into
//! the neighbour array and allocates only O(nodes) counter words on top —
//! never a second edge-sized array. The old edge-list-then-copy build
//! kept the full edge list alive while filling `neighbors`, an extra
//! ~8 bytes per directed edge at peak; this test would catch any
//! regression back to that shape.
//!
//! A counting global allocator tracks live bytes and the high-water mark.
//! (Keep this file at exactly one test: the counters are global, so a
//! concurrently running sibling test would make them noisy.)

use mcast_topology::{GraphBuilder, NodeId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

struct TrackingAlloc;

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

#[test]
fn build_peak_is_linear_in_nodes_not_edges() {
    const N: usize = 1_000;
    const EDGES: usize = 100_000; // 800 KiB of edge buffer, 28 KiB of counters

    let mut b = GraphBuilder::new(N);
    // Deterministic LCG edge soup, duplicates and reversals included.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % N as u64) as NodeId
    };
    for _ in 0..EDGES {
        let u = next();
        let v = next();
        b.add_edge(u, v);
    }

    // Window the high-water mark around the build alone. The edge buffer
    // is already live (inside `b`) and is reused in place, so the delta
    // is exactly the build's scratch: two u32 count arrays, two usize
    // prefix-sum arrays, one u32 cursor array, and the narrowed u32
    // offsets — ~28 bytes per node, independent of the edge count.
    let live_before = LIVE.load(Ordering::Relaxed);
    PEAK.store(live_before, Ordering::Relaxed);
    let g = b.build();
    let delta = PEAK.load(Ordering::Relaxed).saturating_sub(live_before);

    assert!(g.edge_count() > 50_000, "dedup kept {}", g.edge_count());
    // ~28·N ≈ 28 KiB of scratch; 200 KiB of headroom still sits far
    // below the ≥ 800 KiB an edge-list copy would have added.
    assert!(
        delta < 200_000,
        "build high-water mark grew by {delta} bytes — an edge-sized \
         allocation is back in the build path"
    );
}
