//! Property-based tests for the graph substrate.

use mcast_topology::bfs::Bfs;
use mcast_topology::components::{largest_component, Components};
use mcast_topology::graph::{from_edges, Graph, NodeId};
use mcast_topology::io::{parse_edge_list, write_edge_list};
use mcast_topology::metrics::{exact_path_stats, sampled_path_stats};
use mcast_topology::reachability::Reachability;
use proptest::prelude::*;

/// Strategy: a random graph as (node_count, raw edge list) with duplicates
/// and self-loops allowed (the builder must clean them).
fn raw_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..120))
    })
}

proptest! {
    #[test]
    fn builder_cleaning_invariants((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        // No self-loops, no duplicates, symmetric adjacency.
        for v in g.nodes() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            prop_assert!(!ns.contains(&v), "no self loop");
            for &u in ns {
                prop_assert!(g.neighbors(u).contains(&v), "symmetric");
            }
        }
        // Handshake lemma.
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert_eq!(g.edges().count(), g.edge_count());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_rule((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        let t = Bfs::new(&g).run(0);
        // Every edge's endpoints differ by at most 1 in distance (when both
        // are reached), the defining property of BFS layering.
        for (u, v) in g.edges() {
            match (t.distance(u), t.distance(v)) {
                (Some(du), Some(dv)) => {
                    prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
                }
                (None, None) => {}
                _ => prop_assert!(false, "edge with one endpoint reached"),
            }
        }
        // Parents are one hop closer.
        for v in g.nodes() {
            if let Some(p) = t.parent(v) {
                prop_assert_eq!(t.distance(p).unwrap() + 1, t.distance(v).unwrap());
                prop_assert!(g.has_edge(p, v));
            }
        }
    }

    #[test]
    fn bfs_path_length_equals_distance((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        let t = Bfs::new(&g).run(0);
        for v in g.nodes() {
            if let Some(path) = t.path_to(v) {
                prop_assert_eq!(path.len() as u32 - 1, t.distance(v).unwrap());
                prop_assert_eq!(path[0], 0);
                prop_assert_eq!(*path.last().unwrap(), v);
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn components_partition_the_nodes((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        let c = Components::find(&g);
        let mut sizes = vec![0usize; c.count()];
        for v in g.nodes() {
            sizes[c.label(v) as usize] += 1;
        }
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert_eq!(s, c.size(i as u32));
        }
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        // Edges never cross components.
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label(u), c.label(v));
        }
    }

    #[test]
    fn largest_component_is_connected_and_maximal((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        let ex = largest_component(&g);
        let c = Components::find(&ex.graph);
        prop_assert!(c.is_connected());
        let orig = Components::find(&g);
        let want = orig.largest().map(|l| orig.size(l)).unwrap_or(0);
        prop_assert_eq!(ex.graph.node_count(), want);
        prop_assert_eq!(ex.original.len(), ex.graph.node_count());
    }

    #[test]
    fn reachability_sums_to_reached_count((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        let t = Bfs::new(&g).run(0);
        let r = Reachability::from_source(&g, 0);
        prop_assert_eq!(r.total() as usize, t.reached_count());
        prop_assert_eq!(r.s(0), 1);
        // T is nondecreasing.
        let tv = r.t_vec();
        prop_assert!(tv.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*tv.last().unwrap(), r.total());
    }

    #[test]
    fn edge_list_round_trip((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        let g2 = parse_edge_list(&write_edge_list(&g)).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn sampled_path_stats_with_all_sources_is_exact((n, edges) in raw_graph()) {
        let g = from_edges(n, &edges);
        let all: Vec<NodeId> = g.nodes().collect();
        let (exact, diam) = exact_path_stats(&g);
        let (sampled, max_seen) = sampled_path_stats(&g, &all);
        prop_assert!((exact - sampled).abs() < 1e-9);
        prop_assert_eq!(diam, max_seen);
    }
}

// BFS against a reference Floyd–Warshall on small graphs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn bfs_matches_floyd_warshall((n, edges) in (2usize..12).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (Just(n), proptest::collection::vec(edge, 0..30))
    })) {
        let g = from_edges(n, &edges);
        let inf = u32::MAX / 4;
        let mut d = vec![vec![inf; n]; n];
        for v in 0..n {
            d[v][v] = 0;
        }
        for (u, v) in g.edges() {
            d[u as usize][v as usize] = 1;
            d[v as usize][u as usize] = 1;
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = d[i][k] + d[k][j];
                    if via < d[i][j] {
                        d[i][j] = via;
                    }
                }
            }
        }
        let mut bfs = Bfs::new(&g);
        for s in 0..n {
            let t = bfs.run(s as NodeId);
            for v in 0..n {
                let expect = if d[s][v] >= inf { None } else { Some(d[s][v]) };
                prop_assert_eq!(t.distance(v as NodeId), expect, "s={} v={}", s, v);
            }
        }
    }
}

proptest! {
    // Robustness: the edge-list parser must never panic, whatever the
    // input — it either parses or returns a structured error.
    #[test]
    fn parser_never_panics_on_arbitrary_input(text in ".{0,200}") {
        let _ = parse_edge_list(&text);
    }

    #[test]
    fn parser_never_panics_on_numeric_soup(
        tokens in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..30),
        headers in proptest::collection::vec(any::<u64>(), 0..3),
        small_header in proptest::option::of(0u64..100_000),
    ) {
        let mut text = String::new();
        for h in headers {
            // Out-of-range headers must be *rejected*, not allocated: a
            // single `nodes 18446744073709551615` line used to abort the
            // process with a failed 23 GB allocation. (In-range but huge
            // counts are a caller choice, not parser hostility, so the
            // fuzz domain is split into "must reject" and "small".)
            let h = h | (1 << 33);
            text.push_str(&format!("nodes {h}\n"));
        }
        if let Some(h) = small_header {
            text.push_str(&format!("nodes {h}\n"));
        }
        for (a, b) in tokens {
            // Same domain split for edge ids: either clearly out of range
            // (must be rejected) or small (must be accepted).
            let a = if a % 2 == 0 { a % 100_000 } else { a | (1 << 33) };
            let b = if b % 3 == 0 { b % 100_000 } else { b | (1 << 33) };
            text.push_str(&format!("{a} {b}\n"));
        }
        // May be Ok or Err (ids can exceed NodeId range or the header),
        // but must not panic, and Ok graphs must be well-formed.
        if let Ok(g) = parse_edge_list(&text) {
            let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
            prop_assert_eq!(degree_sum, 2 * g.edge_count());
        }
    }
}

#[test]
fn graph_equality_is_structural() {
    let a = from_edges(3, &[(0, 1), (1, 2)]);
    let b = from_edges(3, &[(1, 2), (1, 0), (0, 1)]);
    assert_eq!(a, b);
}

#[test]
fn large_path_graph_bfs_is_linear_time_smoke() {
    // 200k-node path: completes instantly if BFS is O(V+E).
    let n = 200_000usize;
    let edges: Vec<(NodeId, NodeId)> = (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
    let g: Graph = from_edges(n, &edges);
    let t = Bfs::new(&g).run(0);
    assert_eq!(t.distance((n - 1) as NodeId), Some((n - 1) as u32));
}
