//! Property tests for the bit-parallel multi-source BFS kernel.
//!
//! Written against the portable subset of the proptest API (integer
//! ranges and `any::<u64>()`); graphs and source batches are derived
//! from sampled seeds with an inline splitmix64, so the same file runs
//! under real proptest in CI and under the offline harness's stub.

use mcast_topology::batch::{BatchBfs, Direction, MAX_LANES};
use mcast_topology::bfs::{Bfs, UNREACHED};
use mcast_topology::graph::{from_edges, Graph, NodeId};
use mcast_topology::reachability::{AverageReachability, Reachability};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A random graph with duplicate edges and self-loops in the raw list
/// (the builder cleans them) and deliberately sparse edge counts, so
/// disconnected graphs and isolated nodes are routine.
fn random_graph(n: usize, edge_count: usize, seed: u64) -> Graph {
    let mut state = seed;
    let edges: Vec<(NodeId, NodeId)> = (0..edge_count)
        .map(|_| {
            let u = (splitmix(&mut state) % n as u64) as NodeId;
            let v = (splitmix(&mut state) % n as u64) as NodeId;
            (u, v)
        })
        .collect();
    from_edges(n, &edges)
}

/// Like [`random_graph`], but edges are drawn only among the first
/// `prefix` nodes — everything past the prefix is guaranteed isolated,
/// making unreachable sentinels the common case rather than the corner.
fn random_graph_on_prefix(n: usize, prefix: usize, edge_count: usize, seed: u64) -> Graph {
    let mut state = seed ^ 0x0dd0_0d15;
    let edges: Vec<(NodeId, NodeId)> = (0..edge_count)
        .map(|_| {
            let u = (splitmix(&mut state) % prefix as u64) as NodeId;
            let v = (splitmix(&mut state) % prefix as u64) as NodeId;
            (u, v)
        })
        .collect();
    from_edges(n, &edges)
}

/// Sources drawn with replacement, so duplicate lanes are exercised.
fn random_sources(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    let mut state = seed ^ 0x5bf0_3635;
    (0..count)
        .map(|_| (splitmix(&mut state) % n as u64) as NodeId)
        .collect()
}

/// One lane of the batch against a scalar BFS from the same source:
/// distances, level counts, reached total, eccentricity, and the
/// shortest-path-tree distance sum must all agree exactly.
fn assert_lane_matches_scalar(
    g: &Graph,
    batch: &BatchBfs<'_>,
    scalar: &mut Bfs<'_>,
    lane: usize,
    source: NodeId,
) -> Result<(), TestCaseError> {
    let t = scalar.run(source);
    prop_assert_eq!(batch.distances(lane), scalar.scratch_distances());
    let profile = Reachability::from_source(g, source);
    prop_assert_eq!(batch.level_counts(lane), profile.s_vec());
    prop_assert_eq!(batch.reached(lane) as usize, t.reached_count());
    prop_assert_eq!(batch.eccentricity(lane), profile.eccentricity());
    let total: u64 = batch
        .distances(lane)
        .iter()
        .filter(|&&d| d != UNREACHED)
        .map(|&d| u64::from(d))
        .sum();
    prop_assert_eq!(batch.total_distance(lane), total);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The bit-parallel kernel against the scalar BFS, across the batch
    // widths that exercise its mask boundaries: 1 (single lane), 63 (one
    // bit shy of a full word), 64 (exactly one word), 65 (spills into the
    // second mask word), 256 (full 4-word sweep), 512 (full 8-word sweep).
    #[test]
    fn batched_bfs_is_bit_identical_to_scalar(
        n in 2usize..40,
        edge_count in 0usize..120,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, edge_count, seed);
        let mut batch = BatchBfs::new(&g);
        let mut scalar = Bfs::new(&g);
        for width in [1usize, 63, 64, 65, 256, 512] {
            let sources = random_sources(n, width, seed ^ width as u64);
            for chunk in sources.chunks(MAX_LANES) {
                batch.run(chunk);
                prop_assert_eq!(batch.lanes(), chunk.len());
                for (lane, &s) in chunk.iter().enumerate() {
                    assert_lane_matches_scalar(&g, &batch, &mut scalar, lane, s)?;
                }
            }
        }
    }

    // The streaming integer accumulation in `over_sources` against a
    // replication of the pre-batch algorithm: per-source float T(r)
    // vectors, padded with their own saturated totals, merged in source
    // order. Every value is an exact integer below 2^53, so the two must
    // agree bit for bit.
    #[test]
    fn average_reachability_matches_float_replication(
        n in 2usize..40,
        edge_count in 0usize..120,
        source_count in 1usize..70,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, edge_count, seed);
        let sources = random_sources(n, source_count, seed);
        let avg = AverageReachability::over_sources(&g, &sources).unwrap();

        let mut sums: Vec<f64> = Vec::new();
        for &s in &sources {
            let t = Reachability::from_source(&g, s).t_vec();
            if t.len() > sums.len() {
                let pad = sums.last().copied().unwrap_or(0.0);
                sums.resize(t.len(), pad);
            }
            let own_total = *t.last().unwrap() as f64;
            for (r, slot) in sums.iter_mut().enumerate() {
                *slot += t.get(r).map(|&v| v as f64).unwrap_or(own_total);
            }
        }
        let count = sources.len() as f64;
        prop_assert_eq!(avg.t_vec().len(), sums.len());
        for (r, (&got, &want)) in avg.t_vec().iter().zip(&sums).enumerate() {
            let want = want / count;
            prop_assert_eq!(got.to_bits(), want.to_bits(), "r={}: {} vs {}", r, got, want);
        }
    }

    // The batch join entry point: a lane's derived parent tree is
    // bit-identical to deriving from a scalar sweep's distances, and
    // every parent is a genuine shortest-path predecessor — the minimum
    // such neighbour, independent of any traversal schedule.
    #[test]
    fn batch_parent_trees_match_scalar_derivation(
        n in 2usize..40,
        edge_count in 0usize..120,
        source_count in 1usize..65,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, edge_count, seed);
        let sources = random_sources(n, source_count.min(MAX_LANES), seed);
        let mut batch = BatchBfs::new(&g);
        batch.run(&sources);
        let mut scalar = Bfs::new(&g);
        let mut from_batch = Vec::new();
        let mut from_scalar = Vec::new();
        for (lane, &s) in sources.iter().enumerate() {
            batch.parent_tree(lane, &mut from_batch);
            scalar.run_scratch(s);
            mcast_topology::bfs::min_index_parents(
                &g, scalar.scratch_distances(), s, &mut from_scalar);
            prop_assert_eq!(&from_batch, &from_scalar, "lane {} source {}", lane, s);
            let dist = batch.distances(lane);
            for v in 0..n as NodeId {
                let (d, p) = (dist[v as usize], from_batch[v as usize]);
                if v == s {
                    prop_assert_eq!(p, s);
                } else if d == UNREACHED {
                    prop_assert_eq!(p, UNREACHED);
                } else {
                    prop_assert_eq!(dist[p as usize], d - 1, "node {}", v);
                    // Minimality: no lower-id neighbour one hop closer.
                    for &u in g.neighbors(v) {
                        if u >= p { break; }
                        prop_assert_ne!(dist[u as usize], d - 1, "node {}", v);
                    }
                }
            }
        }
    }

    // Direction independence: the kernel is level-synchronous, so a
    // level's discovery set — and therefore every distance and S(r)
    // histogram — cannot depend on whether it was computed top-down or
    // bottom-up. Sweep the same batch under the default heuristic,
    // forced push, forced pull, and random α/β switch points (α=0 never
    // pulls, large α with β=0 bounces back immediately) and demand bit
    // identity throughout.
    #[test]
    fn pull_and_push_sweeps_are_bit_identical(
        n in 2usize..40,
        edge_count in 0usize..140,
        source_count in 1usize..70,
        alpha in 0u64..40,
        beta in 0u64..60,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, edge_count, seed);
        let sources = random_sources(n, source_count, seed);
        let mut reference = BatchBfs::new(&g);
        reference.set_direction(Direction::AlwaysPush);
        reference.run(&sources);
        prop_assert_eq!(reference.pull_levels(), 0);
        let policies = [
            Direction::default(),
            Direction::AlwaysPull,
            Direction::Auto { alpha, beta },
            Direction::Auto { alpha: u64::MAX, beta: 0 },
        ];
        for policy in policies {
            let mut other = BatchBfs::new(&g);
            other.set_direction(policy);
            other.run(&sources);
            for lane in 0..sources.len() {
                prop_assert_eq!(
                    other.distances(lane), reference.distances(lane),
                    "{:?} lane {}", policy, lane);
                prop_assert_eq!(
                    other.level_counts(lane), reference.level_counts(lane),
                    "{:?} lane {}", policy, lane);
            }
            // The profiles path counts discoveries through the bit-sliced
            // counter rather than distance-array scans; histograms must
            // not care.
            other.run_profiles(&sources);
            for lane in 0..sources.len() {
                prop_assert_eq!(other.level_counts(lane), reference.level_counts(lane));
            }
        }
    }

    // Width genericity: forcing the mask width to any of the supported
    // word counts (sources permitting) changes only the sweep shape,
    // never the results.
    #[test]
    fn forced_widths_are_bit_identical(
        n in 2usize..40,
        edge_count in 0usize..120,
        source_count in 1usize..65,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, edge_count, seed);
        let sources = random_sources(n, source_count, seed);
        let mut reference = BatchBfs::new(&g);
        reference.run(&sources);
        prop_assert_eq!(reference.words(), 1);
        for w in [1usize, 4, 8] {
            let mut forced = BatchBfs::new(&g);
            forced.force_words(Some(w));
            forced.run(&sources);
            prop_assert_eq!(forced.words(), w);
            for lane in 0..sources.len() {
                prop_assert_eq!(
                    forced.distances(lane), reference.distances(lane), "W={} lane {}", w, lane);
                prop_assert_eq!(forced.level_counts(lane), reference.level_counts(lane));
                prop_assert_eq!(forced.total_distance(lane), reference.total_distance(lane));
            }
        }
    }

    // Sentinel agreement on disconnected graphs: edges are confined to
    // the low half of the id range, so sources in the high half are
    // isolated (or in tiny shards) and most distances stay UNREACHED.
    // Batch and scalar must agree on exactly which nodes are unreachable
    // — same u32::MAX sentinel, no width-dependent misreads — at every
    // mask boundary width.
    #[test]
    fn disconnected_sentinels_agree_with_scalar(
        n in 4usize..40,
        edge_count in 0usize..60,
        seed in any::<u64>(),
    ) {
        let half = n / 2;
        let g = random_graph_on_prefix(n, half.max(1), edge_count, seed);
        let mut batch = BatchBfs::new(&g);
        let mut scalar = Bfs::new(&g);
        for width in [1usize, 63, 64, 65, 256, 512] {
            let sources = random_sources(n, width, seed ^ (width as u64) << 8);
            batch.run(&sources);
            for (lane, &s) in sources.iter().enumerate() {
                scalar.run_scratch(s);
                let sd = scalar.scratch_distances();
                prop_assert_eq!(batch.distances(lane), sd, "width {} lane {}", width, lane);
                let unreached =
                    batch.distances(lane).iter().filter(|&&d| d == UNREACHED).count();
                prop_assert_eq!(
                    unreached, n - batch.reached(lane) as usize,
                    "width {} lane {}", width, lane);
            }
        }
    }

    // The leaf-folded totals sweep must reproduce the per-lane profile
    // fold exactly: `level_totals()[r] == Σ_lane S_lane(r)` (lanes past
    // their own eccentricity contribute zero). Sparse random graphs are
    // rich in the shapes the fold has to get right — leaf sources,
    // leaf–leaf two-node components, isolated sources, duplicate
    // sources sharing a promoted slot — and the width loop crosses every
    // mask-word boundary.
    #[test]
    fn leaf_folded_totals_match_per_lane_fold(
        n in 2usize..40,
        edge_count in 0usize..50,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, edge_count, seed);
        let mut batch = BatchBfs::new(&g);
        for width in [1usize, 63, 64, 65, 256, 512] {
            let mut sources = random_sources(n, width, seed ^ (width as u64) << 8);
            // Force at least one duplicate pair once the batch has room.
            if sources.len() >= 2 {
                sources[0] = sources[1];
            }
            batch.run_profiles(&sources);
            let mut expect: Vec<u64> = Vec::new();
            for lane in 0..sources.len() {
                let counts = batch.level_counts(lane);
                if counts.len() > expect.len() {
                    expect.resize(counts.len(), 0);
                }
                for (r, &c) in counts.iter().enumerate() {
                    expect[r] += c;
                }
            }
            // Reusing the same engine crosses the folded and unfolded
            // representations; neither may leak into the other.
            batch.run_totals(&sources);
            prop_assert_eq!(batch.level_totals(), &expect[..], "width {}", width);
        }
    }

    // A batch that reuses its scratch state across runs behaves like a
    // fresh kernel each time (no leakage between sweeps).
    #[test]
    fn reused_batch_state_is_clean(
        n in 2usize..30,
        edge_count in 0usize..80,
        seed in any::<u64>(),
    ) {
        let g = random_graph(n, edge_count, seed);
        let mut reused = BatchBfs::new(&g);
        let mut scalar = Bfs::new(&g);
        for round in 0..3u64 {
            let sources = random_sources(n, 5, seed ^ round);
            reused.run(&sources);
            let mut fresh = BatchBfs::new(&g);
            fresh.run(&sources);
            for (lane, &s) in sources.iter().enumerate() {
                prop_assert_eq!(reused.distances(lane), fresh.distances(lane));
                prop_assert_eq!(reused.level_counts(lane), fresh.level_counts(lane));
                assert_lane_matches_scalar(&g, &reused, &mut scalar, lane, s)?;
            }
            // Interleave a profiles-only sweep: histograms must match the
            // full sweep, and the next round's `run` must be unaffected.
            reused.run_profiles(&sources);
            for lane in 0..sources.len() {
                prop_assert_eq!(reused.level_counts(lane), fresh.level_counts(lane));
                prop_assert_eq!(reused.total_distance(lane), fresh.total_distance(lane));
            }
        }
    }
}
