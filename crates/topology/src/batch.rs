//! Bit-parallel multi-source BFS.
//!
//! Every §4 quantity the paper needs — reachability profiles `S(r)`/`T(r)`,
//! the unicast normaliser `ū`, sampled path statistics — is an aggregate
//! over *many* single-source BFS sweeps of the same graph. [`BatchBfs`]
//! advances up to [`MAX_LANES`] sources simultaneously in the MS-BFS
//! style: each node carries one `u64` whose bit `i` means "lane `i` has
//! seen this node", and one level-synchronous pass over the CSR adjacency
//! propagates all lanes at once with word-wide ORs. The per-lane distance
//! arrays are identical to what [`crate::bfs::Bfs`] produces for each
//! source (BFS distances are unique, so the traversal schedule cannot
//! change them), and the per-lane newly-reached counts recorded at each
//! level *are* the paper's `S(r)` histogram — consumers that only need
//! profiles call [`BatchBfs::run_profiles`], which skips the distance
//! arrays entirely (they are the kernel's only lanes×nodes-sized
//! scatter-write, so profile sweeps are markedly cheaper).
//!
//! What the kernel deliberately does **not** record is BFS parents: parent
//! choice depends on the scalar queue's FIFO discovery order, which a
//! word-parallel frontier does not reproduce, and the delivery-tree sizes
//! built from parents would silently change. Consumers that need the
//! scalar engine's FIFO tree (the delivery sizer) keep using it; see
//! `DESIGN.md` §9. Consumers that only need *some* deterministic
//! shortest-path tree — the multi-session churn engine grafting dozens
//! of new sessions in one tick — call [`BatchBfs::parent_tree`], which
//! derives parents from a lane's finished distances under the
//! schedule-independent lowest-id rule of
//! [`crate::bfs::min_index_parents`], so batched and scalar construction
//! of the same source tree are bit-identical by construction.

use crate::bfs::UNREACHED;
use crate::graph::{Graph, NodeId};

/// Maximum sources one sweep advances simultaneously: the lanes of a
/// machine word.
pub const MAX_LANES: usize = 64;

/// Reusable bit-parallel BFS engine over one graph.
///
/// ```
/// use mcast_topology::batch::BatchBfs;
/// use mcast_topology::bfs::Bfs;
/// use mcast_topology::graph::from_edges;
///
/// let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let mut batch = BatchBfs::new(&g);
/// batch.run(&[0, 2]);
/// let mut scalar = Bfs::new(&g);
/// scalar.run_scratch(0);
/// assert_eq!(batch.distances(0), scalar.scratch_distances());
/// assert_eq!(batch.level_counts(1), &[1, 2, 2]); // S(r) seen from node 2
/// ```
pub struct BatchBfs<'g> {
    graph: &'g Graph,
    /// Per-node lane mask: bit `i` set iff lane `i` has reached the node.
    seen: Vec<u64>,
    /// Per-node lane mask of the current frontier (nodes discovered at the
    /// previous level), non-zero only for nodes in `front`.
    frontier: Vec<u64>,
    /// Per-node accumulator for the next frontier's lane masks.
    next: Vec<u64>,
    /// Nodes whose `frontier` word is non-zero.
    front: Vec<NodeId>,
    /// Scratch: candidate nodes touched while building `next`.
    cand: Vec<NodeId>,
    /// Scratch: the frontier list under construction.
    spare: Vec<NodeId>,
    /// Lane-major distances: `dist[lane * n + v]`. Only populated by
    /// [`run`](Self::run); [`run_profiles`](Self::run_profiles) skips it.
    dist: Vec<u32>,
    /// Per-lane `S(r)`: `level_counts[lane][r]` nodes first reached at
    /// hop `r` (index 0 is the source itself).
    level_counts: Vec<Vec<u64>>,
    lanes: usize,
    /// Whether the last sweep recorded the distance arrays.
    dist_recorded: bool,
    /// The sources of the last sweep, per lane (for parent derivation).
    sources_last: Vec<NodeId>,
}

impl<'g> BatchBfs<'g> {
    /// New engine for `graph`; buffers are reused across [`run`](Self::run)s.
    pub fn new(graph: &'g Graph) -> Self {
        let n = graph.node_count();
        Self {
            graph,
            seen: vec![0; n],
            frontier: vec![0; n],
            next: vec![0; n],
            front: Vec::new(),
            cand: Vec::new(),
            spare: Vec::new(),
            dist: Vec::new(),
            level_counts: (0..MAX_LANES).map(|_| Vec::new()).collect(),
            lanes: 0,
            dist_recorded: false,
            sources_last: Vec::new(),
        }
    }

    /// The graph this engine traverses.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Run one level-synchronous sweep from `sources` (lane `i` is rooted
    /// at `sources[i]`; duplicates are fine — lanes stay independent).
    /// Accessors below read the result until the next call.
    ///
    /// When observability is enabled, each sweep bumps `bfs.batch.sweeps`,
    /// `bfs.batch.sources` (lanes advanced) and `bfs.batch.levels`
    /// (frontier expansions), batched into three atomic adds per sweep.
    /// When a timed trace is recording, each sweep additionally opens a
    /// `bfs/batch_sweep` span, so those counter deltas attribute to the
    /// individual sweep.
    ///
    /// # Panics
    /// Panics if `sources` is empty, longer than [`MAX_LANES`], or names a
    /// node out of range.
    pub fn run(&mut self, sources: &[NodeId]) {
        self.sweep::<true>(sources);
    }

    /// Like [`run`](Self::run), but records only the per-lane `S(r)`
    /// histograms and skips the distance arrays entirely. Every
    /// histogram-level quantity — [`level_counts`](Self::level_counts),
    /// [`reached`](Self::reached), [`total_distance`](Self::total_distance),
    /// [`eccentricity`](Self::eccentricity) — is identical to what
    /// [`run`](Self::run) produces; only [`distances`](Self::distances)
    /// becomes unavailable. This is the hot path for the reachability and
    /// path-statistics consumers, which never look at per-node distances:
    /// skipping them removes a lanes×nodes scatter-write pass and the
    /// matching per-sweep fill.
    ///
    /// # Panics
    /// Same contract as [`run`](Self::run).
    pub fn run_profiles(&mut self, sources: &[NodeId]) {
        self.sweep::<false>(sources);
    }

    fn sweep<const RECORD_DIST: bool>(&mut self, sources: &[NodeId]) {
        // Timed span only while a trace records: a sweep is the BFS
        // kernel's unit of work, and the span carries this sweep's
        // counter deltas. Costs one relaxed load when tracing is off.
        let _span = mcast_obs::trace::active().then(|| mcast_obs::span_at("bfs/batch_sweep"));
        let n = self.graph.node_count();
        assert!(
            !sources.is_empty() && sources.len() <= MAX_LANES,
            "source batch must hold 1..={MAX_LANES} sources, got {}",
            sources.len()
        );
        self.lanes = sources.len();
        self.dist_recorded = RECORD_DIST;
        self.sources_last.clear();
        self.sources_last.extend_from_slice(sources);
        self.seen.fill(0);
        self.frontier.fill(0);
        self.next.fill(0);
        self.dist.clear();
        if RECORD_DIST {
            self.dist.resize(self.lanes * n, UNREACHED);
        }
        for lc in &mut self.level_counts[..self.lanes] {
            lc.clear();
        }
        let mut front = std::mem::take(&mut self.front);
        front.clear();
        for (lane, &s) in sources.iter().enumerate() {
            let si = s as usize;
            assert!(si < n, "source {s} out of range");
            self.seen[si] |= 1 << lane;
            if self.frontier[si] == 0 {
                front.push(s);
            }
            self.frontier[si] |= 1 << lane;
            if RECORD_DIST {
                self.dist[lane * n + si] = 0;
            }
            self.level_counts[lane].push(1); // S(0) = 1: the source itself
        }

        let mut cand = std::mem::take(&mut self.cand);
        let mut next_front = std::mem::take(&mut self.spare);
        let graph = self.graph;
        let seen = &mut self.seen[..];
        let frontier = &mut self.frontier[..];
        let next = &mut self.next[..];
        let dist = &mut self.dist[..];
        let mut level: u32 = 0;
        while !front.is_empty() {
            level += 1;
            // Push every frontier word into the neighbours' accumulators;
            // `cand` collects each touched node exactly once (its `next`
            // word is zero only before the first OR). Taking the frontier
            // word clears it in the same pass — it is never read again
            // this level (`next` is the only accumulator, and the graph
            // has no self-loops).
            cand.clear();
            for &v in &front {
                let fv = std::mem::take(&mut frontier[v as usize]);
                for &w in graph.neighbors(v) {
                    let wi = w as usize;
                    let nx = next[wi];
                    if nx == 0 {
                        cand.push(w);
                    }
                    next[wi] = nx | fv;
                }
            }
            // Resolve: lanes that reach a candidate for the first time
            // record its distance and join the new frontier.
            next_front.clear();
            let mut per_lane = [0u64; MAX_LANES];
            for &w in &cand {
                let wi = w as usize;
                let new = next[wi] & !seen[wi];
                next[wi] = 0;
                if new != 0 {
                    seen[wi] |= new;
                    frontier[wi] = new;
                    next_front.push(w);
                    let mut bits = new;
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if RECORD_DIST {
                            dist[lane * n + wi] = level;
                        }
                        per_lane[lane] += 1;
                    }
                }
            }
            // A lane's reached levels are contiguous: once its frontier
            // empties it can never discover another node, so a non-zero
            // count always lands at index `level` of its histogram.
            for (lane, &c) in per_lane[..self.lanes].iter().enumerate() {
                if c > 0 {
                    debug_assert_eq!(self.level_counts[lane].len(), level as usize);
                    self.level_counts[lane].push(c);
                }
            }
            std::mem::swap(&mut front, &mut next_front);
        }
        self.front = front;
        self.cand = cand;
        self.spare = next_front;
        if mcast_obs::enabled() {
            mcast_obs::counter("bfs.batch.sweeps").add(1);
            mcast_obs::counter("bfs.batch.sources").add(self.lanes as u64);
            mcast_obs::counter("bfs.batch.levels").add(u64::from(level));
        }
    }

    /// Lanes advanced by the last [`run`](Self::run).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Distances from `lane`'s source — identical to
    /// [`crate::bfs::Bfs::scratch_distances`] for that source
    /// ([`UNREACHED`] marks unreachable nodes).
    ///
    /// # Panics
    /// Panics if `lane` is out of range, or if the last sweep was
    /// [`run_profiles`](Self::run_profiles) (no distances recorded).
    pub fn distances(&self, lane: usize) -> &[u32] {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert!(
            self.dist_recorded,
            "distances not recorded: last sweep was run_profiles"
        );
        let n = self.graph.node_count();
        &self.dist[lane * n..(lane + 1) * n]
    }

    /// `lane`'s `S(r)` histogram: entry `r` counts nodes first reached at
    /// hop `r` (entry 0 is the source). The same vector
    /// [`crate::reachability::Reachability::from_distances`] builds from
    /// the scalar BFS.
    ///
    /// # Panics
    /// Panics if `lane` is out of range.
    pub fn level_counts(&self, lane: usize) -> &[u64] {
        assert!(lane < self.lanes, "lane {lane} out of range");
        &self.level_counts[lane]
    }

    /// Nodes `lane`'s source reached, including itself.
    pub fn reached(&self, lane: usize) -> u64 {
        self.level_counts(lane).iter().sum()
    }

    /// Sum of finite distances from `lane`'s source (`Σ r·S(r)`) — the
    /// numerator of the average unicast path length, as an exact integer.
    pub fn total_distance(&self, lane: usize) -> u64 {
        self.level_counts(lane)
            .iter()
            .enumerate()
            .map(|(r, &s)| r as u64 * s)
            .sum()
    }

    /// `lane`'s source eccentricity within its component (largest hop
    /// count with `S(r) > 0`; zero for an isolated source).
    pub fn eccentricity(&self, lane: usize) -> usize {
        self.level_counts(lane).len() - 1
    }

    /// Derive `lane`'s shortest-path parent array into `out` — the batch
    /// join entry point for engines that graft many sources per tick.
    ///
    /// Parents follow the schedule-independent lowest-id rule of
    /// [`crate::bfs::min_index_parents`] applied to this lane's recorded
    /// distances, so the result is bit-identical to deriving from a
    /// scalar [`crate::bfs::Bfs`] sweep of the same source (batch and
    /// scalar distances already agree). Note this is *not* the scalar
    /// engine's FIFO parent array; a consumer must pick one rule and use
    /// it on every path, as `mcast_tree::storm` does.
    ///
    /// # Panics
    /// Panics if `lane` is out of range or the last sweep was
    /// [`run_profiles`](Self::run_profiles) (no distances recorded).
    pub fn parent_tree(&self, lane: usize, out: &mut Vec<NodeId>) {
        let source = self.sources_last[lane];
        crate::bfs::min_index_parents(self.graph, self.distances(lane), source, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::graph::from_edges;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        from_edges(n, &edges)
    }

    fn assert_matches_scalar(g: &Graph, sources: &[NodeId]) {
        let mut batch = BatchBfs::new(g);
        batch.run(sources);
        let mut scalar = Bfs::new(g);
        for (lane, &s) in sources.iter().enumerate() {
            scalar.run_scratch(s);
            assert_eq!(
                batch.distances(lane),
                scalar.scratch_distances(),
                "lane {lane} source {s}"
            );
            let profile = crate::reachability::Reachability::from_distances(
                scalar.scratch_distances(),
                scalar.scratch_order(),
            );
            assert_eq!(batch.level_counts(lane), profile.s_vec());
            assert_eq!(batch.reached(lane), profile.total());
            assert_eq!(batch.eccentricity(lane), profile.eccentricity());
        }
    }

    #[test]
    fn matches_scalar_on_path_and_cycle() {
        assert_matches_scalar(&path_graph(9), &[0, 4, 8]);
        let edges: Vec<_> = (0..8)
            .map(|i| (i as NodeId, ((i + 1) % 8) as NodeId))
            .collect();
        assert_matches_scalar(&from_edges(8, &edges), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn matches_scalar_on_disconnected_graph() {
        // Two components plus two isolated nodes.
        let g = from_edges(8, &[(0, 1), (1, 2), (4, 5)]);
        let sources: Vec<NodeId> = (0..8).collect();
        assert_matches_scalar(&g, &sources);
    }

    #[test]
    fn duplicate_sources_keep_lanes_independent() {
        let g = path_graph(6);
        let mut batch = BatchBfs::new(&g);
        batch.run(&[2, 2, 5]);
        assert_eq!(batch.distances(0), batch.distances(1));
        assert_eq!(batch.level_counts(0), batch.level_counts(1));
        assert_eq!(batch.level_counts(2), &[1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn full_width_and_reuse() {
        // 64 lanes on a graph with fewer nodes (sources repeat), then a
        // second run on the same engine must fully reset state.
        let g = from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7)]);
        let sources: Vec<NodeId> = (0..64).map(|i| (i % 10) as NodeId).collect();
        assert_matches_scalar(&g, &sources);
        let mut batch = BatchBfs::new(&g);
        batch.run(&sources);
        batch.run(&[9]);
        assert_eq!(batch.lanes(), 1);
        assert_eq!(batch.level_counts(0), &[1]); // node 9 is isolated
        assert_eq!(batch.distances(0)[9], 0);
        assert_eq!(batch.distances(0)[0], UNREACHED);
    }

    #[test]
    fn total_distance_matches_sp_tree() {
        let g = from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 6)]);
        let mut batch = BatchBfs::new(&g);
        batch.run(&[0, 3]);
        let mut bfs = Bfs::new(&g);
        for (lane, s) in [(0usize, 0u32), (1, 3)] {
            let t = bfs.run(s);
            assert_eq!(batch.total_distance(lane), t.total_distance());
            assert_eq!(batch.eccentricity(lane), t.eccentricity() as usize);
        }
    }

    #[test]
    fn run_profiles_matches_run_histograms() {
        let g = from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let sources: Vec<NodeId> = (0..8).collect();
        let mut full = BatchBfs::new(&g);
        full.run(&sources);
        let mut profiles = BatchBfs::new(&g);
        profiles.run_profiles(&sources);
        for lane in 0..sources.len() {
            assert_eq!(profiles.level_counts(lane), full.level_counts(lane));
            assert_eq!(profiles.reached(lane), full.reached(lane));
            assert_eq!(profiles.total_distance(lane), full.total_distance(lane));
            assert_eq!(profiles.eccentricity(lane), full.eccentricity(lane));
        }
        // A full sweep on the same engine restores the distance arrays.
        profiles.run(&[0]);
        assert_eq!(profiles.distances(0), full.distances(0));
    }

    #[test]
    fn parent_tree_matches_scalar_derivation() {
        // Diamond: two equal-length paths 0-1-3 and 0-2-3 — the lowest-id
        // rule must pick 1 as 3's parent on both engines.
        let g = from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut batch = BatchBfs::new(&g);
        batch.run(&[0, 4]);
        let mut scalar = Bfs::new(&g);
        let mut from_batch = Vec::new();
        let mut from_scalar = Vec::new();
        for (lane, &s) in [0u32, 4].iter().enumerate() {
            batch.parent_tree(lane, &mut from_batch);
            scalar.run_scratch(s);
            crate::bfs::min_index_parents(&g, scalar.scratch_distances(), s, &mut from_scalar);
            assert_eq!(from_batch, from_scalar, "lane {lane} source {s}");
            // Every reached non-source node's parent sits one hop closer.
            for v in 0..g.node_count() {
                let d = batch.distances(lane)[v];
                if v as NodeId == s || d == UNREACHED {
                    continue;
                }
                assert_eq!(batch.distances(lane)[from_batch[v] as usize], d - 1);
            }
        }
        batch.parent_tree(0, &mut from_batch);
        assert_eq!(from_batch[3], 1, "lowest-id rule must pick 1 over 2");
    }

    #[test]
    #[should_panic(expected = "distances not recorded")]
    fn parent_tree_unavailable_after_profile_sweep() {
        let g = path_graph(4);
        let mut batch = BatchBfs::new(&g);
        batch.run_profiles(&[0]);
        batch.parent_tree(0, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "distances not recorded")]
    fn distances_unavailable_after_profile_sweep() {
        let g = path_graph(4);
        let mut batch = BatchBfs::new(&g);
        batch.run_profiles(&[0]);
        batch.distances(0);
    }

    #[test]
    #[should_panic(expected = "source batch")]
    fn empty_batch_rejected() {
        let g = path_graph(3);
        BatchBfs::new(&g).run(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let g = path_graph(3);
        BatchBfs::new(&g).run(&[3]);
    }
}
