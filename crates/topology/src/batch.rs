//! Bit-parallel multi-source BFS with wide lanes and direction switching.
//!
//! Every §4 quantity the paper needs — reachability profiles `S(r)`/`T(r)`,
//! the unicast normaliser `ū`, sampled path statistics — is an aggregate
//! over *many* single-source BFS sweeps of the same graph. [`BatchBfs`]
//! advances up to [`MAX_LANES`] sources simultaneously in the MS-BFS
//! style: each node carries `W` `u64` mask words (`W` ∈ {1, 4, 8}, chosen
//! per sweep from the source count) whose bit `k·64+i` means "lane
//! `k·64+i` has seen this node", and one level-synchronous pass over the
//! CSR adjacency propagates all lanes at once with word-wide ORs. The
//! word loops have a compile-time trip count (the sweep is monomorphised
//! per width), so they autovectorise.
//!
//! Each level runs in one of two directions:
//!
//! * **push** (top-down): every frontier node tests `frontier & !seen`
//!   against each neighbour and commits discoveries in place — a fused
//!   single pass with no candidate list, where a non-discovering edge is
//!   one load and two ALU ops. Cheap while the frontier is sparse.
//! * **pull** (bottom-up): every not-yet-fully-seen node scans its own
//!   neighbours' frontier words and stops as soon as all of its missing
//!   lanes are covered. Cheap while the frontier is dense — the
//!   direction-optimising trade ([Beamer et al.]): switch to pull when the
//!   frontier's edge count `m_f` crosses `m_u / α` (edges still incident
//!   to unfinished nodes), and back to push when the frontier population
//!   `n_f` drops below `n / β`. Unlike the single-source setting — where
//!   pull wins early because one covered bit retires a node — a
//!   multi-source pull keeps scanning until *every* missing lane is
//!   covered, so its advantage is thinner and `α` defaults near 1: pull
//!   engages only once the frontier's edge count actually exceeds the
//!   remaining work. The pull scan walks a sorted active list in blocks
//!   bounded by CSR edge span, so large graphs stream through the cache
//!   instead of thrashing it.
//!
//! Both directions discover exactly the same per-level sets (the kernel is
//! level-synchronous), so distances and histograms are bit-identical in
//! every mode and at every width; `batch_props.rs` pins this.
//!
//! The per-lane distance arrays are identical to what [`crate::bfs::Bfs`]
//! produces for each source (BFS distances are unique, so the traversal
//! schedule cannot change them), and the per-lane newly-reached counts
//! recorded at each level *are* the paper's `S(r)` histogram — consumers
//! that only need profiles call [`BatchBfs::run_profiles`], which skips
//! the distance arrays entirely and counts discoveries with a bit-sliced
//! positional popcount instead of per-bit scans.
//!
//! One consumer needs even less: the averaged-reachability fold only
//! reads the *lane-summed* histogram `Σ_lane S_lane(r)`.
//! [`BatchBfs::run_totals`] serves it from a **leaf-folded** traversal —
//! only nodes of degree ≥ 2 carry mask words, and every degree-≤1 node
//! is counted analytically from its sole neighbour's discoveries
//! (exactly those lanes reach it, one level later, and nothing else ever
//! can). The paper's tree-like topologies are mostly leaves (ti5000:
//! 87%), so the folded sweep touches a core an order of magnitude
//! smaller than the graph while producing bit-identical histograms.
//!
//! What the kernel deliberately does **not** record is BFS parents: parent
//! choice depends on the scalar queue's FIFO discovery order, which a
//! word-parallel frontier does not reproduce, and the delivery-tree sizes
//! built from parents would silently change. Consumers that need the
//! scalar engine's FIFO tree (the delivery sizer) keep using it; see
//! `DESIGN.md` §9. Consumers that only need *some* deterministic
//! shortest-path tree — the multi-session churn engine grafting dozens
//! of new sessions in one tick — call [`BatchBfs::parent_tree`], which
//! derives parents from a lane's finished distances under the
//! schedule-independent lowest-id rule of
//! [`crate::bfs::min_index_parents`], so batched and scalar construction
//! of the same source tree are bit-identical by construction.

use crate::bfs::UNREACHED;
use crate::graph::{Graph, NodeId, OffsetSlice, OffsetsView};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Lanes carried by one `u64` mask word.
pub const LANES_PER_WORD: usize = 64;

/// Maximum mask words per node (widest sweep).
pub const MAX_WORDS: usize = 8;

/// Maximum sources one sweep advances simultaneously.
pub const MAX_LANES: usize = LANES_PER_WORD * MAX_WORDS;

/// Default `α` of the push→pull switch (`m_f · α > m_u`). Classic
/// single-source direction optimisation uses α ≈ 14, but a multi-source
/// pull cannot retire an active node until every missing lane is covered,
/// so its early exit fires far less often; pull only pays off once the
/// frontier's edge count genuinely exceeds the remaining incident edges.
pub const DEFAULT_ALPHA: u64 = 1;

/// Default `β` of the pull→push switch (`n_f · β < n`).
pub const DEFAULT_BETA: u64 = 24;

/// Edge span (CSR entries) one pull block scans before moving on; bounds
/// the working set of neighbour frontier words per block.
const PULL_EDGE_BLOCK: usize = 1 << 15;

/// Sweep recording mode: per-lane distance arrays ([`BatchBfs::run`]).
const MODE_DIST: u8 = 0;
/// Sweep recording mode: per-lane `S(r)` histograms
/// ([`BatchBfs::run_profiles`]).
const MODE_PROFILES: u8 = 1;

/// Per-level traversal direction policy for one [`BatchBfs`] engine.
///
/// Every policy produces bit-identical distances and histograms — the
/// kernel is level-synchronous, so direction only changes how a level's
/// discovery set is computed, never what it is. `Auto` is the default and
/// the fast path; the forced modes exist for tests and A/B artifact
/// checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Switch per level on the classic thresholds: push→pull when the
    /// frontier's edge count times `alpha` exceeds the edges still
    /// incident to unfinished nodes, pull→push when the frontier
    /// population times `beta` drops below the node count.
    Auto {
        /// Push→pull aggressiveness (larger switches later).
        alpha: u64,
        /// Pull→push aggressiveness (larger switches back later).
        beta: u64,
    },
    /// Top-down fused-discover push on every level.
    AlwaysPush,
    /// Bottom-up CSR scan on every level.
    AlwaysPull,
}

impl Default for Direction {
    fn default() -> Self {
        Direction::Auto {
            alpha: DEFAULT_ALPHA,
            beta: DEFAULT_BETA,
        }
    }
}

/// Effective lane cap for batching call sites (see [`max_lanes`]).
static LANE_LIMIT: AtomicUsize = AtomicUsize::new(MAX_LANES);

/// Process-wide direction override (see [`set_direction_override`]):
/// 0 = none, 1 = auto, 2 = push, 3 = pull.
static DIRECTION_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The lane cap batching call sites should chunk sources by. Defaults to
/// [`MAX_LANES`]; `mcs --bfs-width` narrows it process-wide (results are
/// bit-identical at every width, only the sweep shape changes).
pub fn max_lanes() -> usize {
    LANE_LIMIT.load(Ordering::Relaxed)
}

/// Cap [`max_lanes`] at `limit` (one of 64, 256, 512); `None` restores
/// the full width. Affects how call sites *chunk* source lists — any
/// individual [`BatchBfs::run`] still accepts up to [`MAX_LANES`] sources.
///
/// # Panics
/// Panics if `limit` is not one of the supported widths.
pub fn set_lane_limit(limit: Option<usize>) {
    let v = limit.unwrap_or(MAX_LANES);
    assert!(
        v == 64 || v == 256 || v == 512,
        "lane limit must be 64, 256 or 512, got {v}"
    );
    LANE_LIMIT.store(v, Ordering::Relaxed);
}

/// Forced traversal direction applied by [`set_direction_override`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirectionOverride {
    /// The default `α`/`β` heuristic.
    Auto,
    /// Push on every level.
    Push,
    /// Pull on every level.
    Pull,
}

/// Process-wide direction override applied to every engine created after
/// the call (`None` restores the default heuristic). Results are
/// bit-identical in every mode; this exists so artifact-level A/B checks
/// (goldens across push-only / pull-enabled runs) can flip the whole
/// pipeline without threading a knob through every constructor.
pub fn set_direction_override(mode: Option<DirectionOverride>) {
    let code = match mode {
        None => 0,
        Some(DirectionOverride::Auto) => 1,
        Some(DirectionOverride::Push) => 2,
        Some(DirectionOverride::Pull) => 3,
    };
    DIRECTION_OVERRIDE.store(code, Ordering::Relaxed);
}

fn direction_for_new_engine() -> Direction {
    match DIRECTION_OVERRIDE.load(Ordering::Relaxed) {
        2 => Direction::AlwaysPush,
        3 => Direction::AlwaysPull,
        _ => Direction::default(),
    }
}

/// Mask words needed for `lanes` sources: the narrowest supported width
/// that fits, so small batches never pay for unused words.
fn words_for(lanes: usize) -> usize {
    if lanes <= LANES_PER_WORD {
        1
    } else if lanes <= 4 * LANES_PER_WORD {
        4
    } else {
        8
    }
}

/// Bit-sliced vertical counter (positional popcount): accumulates mask
/// words and flushes per-lane totals. The eight planes hold an 8-bit
/// ripple-carry counter per lane, so up to 255 words can be added between
/// flushes — profile sweeps count a whole level's discoveries without a
/// single per-bit loop on the hot path.
#[derive(Clone, Copy)]
struct LaneCounter {
    planes: [u64; 8],
    pending: u16,
}

impl LaneCounter {
    fn new() -> Self {
        Self {
            planes: [0; 8],
            pending: 0,
        }
    }

    #[inline]
    fn add(&mut self, w: u64, out: &mut [u64]) {
        if self.pending == 255 {
            self.flush(out);
        }
        let mut carry = w;
        for p in &mut self.planes {
            let t = *p & carry;
            *p ^= carry;
            carry = t;
            if carry == 0 {
                break;
            }
        }
        debug_assert_eq!(carry, 0, "8-bit lane counter overflowed");
        self.pending += 1;
    }

    fn flush(&mut self, out: &mut [u64]) {
        if self.pending == 0 {
            return;
        }
        for (k, p) in self.planes.iter_mut().enumerate() {
            let mut bits = *p;
            *p = 0;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out[lane] += 1u64 << k;
            }
        }
        self.pending = 0;
    }
}

/// Leaf-folded view of the graph for totals sweeps: the *core* is the
/// subgraph induced by nodes of degree ≥ 2, renumbered compactly, and
/// every folded degree-≤1 neighbour collapses into a per-core-node count.
///
/// The fold is exact for lane-summed counting because a degree-1 node's
/// lanes can only ever arrive from its sole neighbour: each time that
/// neighbour gains new lanes, the leaf gains *exactly* those lanes one
/// level later, so the leaf's whole discovery history is
/// `leaf_count · popcount(neighbour's new lanes)` — no leaf mask words
/// needed. Sources that are themselves folded get per-sweep virtual
/// slots (see [`BatchBfs::run_totals`]).
struct CoreRep {
    /// Core index per node (`u32::MAX` marks a folded node).
    core_id: Vec<u32>,
    /// CSR offsets of the core-only adjacency, in core-id space.
    core_off: Vec<u32>,
    /// Core-only neighbour lists, in core-id space.
    core_neigh: Vec<u32>,
    /// Folded degree-≤1 neighbours per core node.
    leaf_count: Vec<u32>,
}

/// Lifecycle of the leaf-folded view: built lazily on the first totals
/// sweep, and permanently declined when the core's directed arc count
/// would overflow the `u32` cursors ([`CoreRep::core_off`]) — in that
/// case [`BatchBfs::run_totals`] serves bit-identical histograms from a
/// profile sweep instead of truncating offsets.
enum CoreState {
    /// No totals sweep has run yet.
    Unbuilt,
    /// Folded view available.
    Ready(CoreRep),
    /// Core arc count past the cap; totals fall back to profile folding.
    TooLarge,
}

impl CoreRep {
    /// Build the folded view, or `None` if the core's directed arc count
    /// exceeds `arc_cap` (normally `u32::MAX`: the `core_off` cursor
    /// width — reachable only past the 2^32 directed-arc boundary, i.e.
    /// > 17 GiB of adjacency; tests inject a tiny cap to exercise it).
    fn try_build(graph: &Graph, arc_cap: usize) -> Option<Self> {
        let n = graph.node_count();
        let offsets = graph.csr_offsets();
        let neigh = graph.csr_neighbors();
        let mut core_id = vec![u32::MAX; n];
        let mut ncore = 0u32;
        let mut core_arcs = 0usize;
        for v in 0..n {
            let deg = offsets.at(v + 1) - offsets.at(v);
            if deg >= 2 {
                core_id[v] = ncore;
                ncore += 1;
            }
        }
        // Exact pre-count of the core arcs so every `core_off` push below
        // is guaranteed in range (the graph's total arc count may exceed
        // the cap while the leaf-stripped core still fits).
        for v in 0..n {
            if core_id[v] == u32::MAX {
                continue;
            }
            core_arcs += neigh[offsets.at(v)..offsets.at(v + 1)]
                .iter()
                .filter(|&&x| core_id[x as usize] != u32::MAX)
                .count();
        }
        if core_arcs > arc_cap {
            return None;
        }
        let mut core_off = Vec::with_capacity(ncore as usize + 1);
        core_off.push(0u32);
        let mut core_neigh = Vec::with_capacity(core_arcs);
        let mut leaf_count = vec![0u32; ncore as usize];
        for v in 0..n {
            let ci = core_id[v];
            if ci == u32::MAX {
                continue;
            }
            for &x in &neigh[offsets.at(v)..offsets.at(v + 1)] {
                let xc = core_id[x as usize];
                if xc != u32::MAX {
                    core_neigh.push(xc);
                } else {
                    leaf_count[ci as usize] += 1;
                }
            }
            debug_assert!(core_neigh.len() <= core_arcs, "core arc pre-count drifted");
            core_off.push(core_neigh.len() as u32);
        }
        Some(Self {
            core_id,
            core_off,
            core_neigh,
            leaf_count,
        })
    }
}

/// Reusable bit-parallel BFS engine over one graph.
///
/// ```
/// use mcast_topology::batch::BatchBfs;
/// use mcast_topology::bfs::Bfs;
/// use mcast_topology::graph::from_edges;
///
/// let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let mut batch = BatchBfs::new(&g);
/// batch.run(&[0, 2]);
/// let mut scalar = Bfs::new(&g);
/// scalar.run_scratch(0);
/// assert_eq!(batch.distances(0), scalar.scratch_distances());
/// assert_eq!(batch.level_counts(1), &[1, 2, 2]); // S(r) seen from node 2
/// ```
pub struct BatchBfs<'g> {
    graph: &'g Graph,
    /// Node-major interleaved lane masks: word `k` of node `v` lives at
    /// `seen[v * words + k]`; bit `i` of word `k` is lane `k·64+i`.
    seen: Vec<u64>,
    /// Lane masks of the current frontier (nodes discovered at the
    /// previous level), non-zero only for nodes in `front`.
    frontier: Vec<u64>,
    /// Accumulator for the next frontier's lane masks.
    next: Vec<u64>,
    /// Nodes with a non-zero `frontier` word.
    front: Vec<NodeId>,
    /// Scratch: the frontier list under construction.
    spare: Vec<NodeId>,
    /// Pull mode: sorted not-yet-fully-seen nodes with degree > 0.
    active: Vec<NodeId>,
    /// Lane-major distances: `dist[lane * n + v]`. Only populated by
    /// [`run`](Self::run); [`run_profiles`](Self::run_profiles) skips it.
    dist: Vec<u32>,
    /// Per-lane `S(r)`: `level_counts[lane][r]` nodes first reached at
    /// hop `r` (index 0 is the source itself).
    level_counts: Vec<Vec<u64>>,
    /// Lane-summed `S(r)` of a [`run_totals`](Self::run_totals) sweep.
    level_totals: Vec<u64>,
    /// Leaf-folded core view, built on the first totals sweep.
    core: CoreState,
    /// Directed-arc cap for the folded core's `u32` cursors (lowered only
    /// by tests to exercise the fallback).
    core_arc_cap: usize,
    /// Totals sweeps: folded sources promoted to virtual slots.
    promoted: Vec<NodeId>,
    /// Totals sweeps: slot→slot pushes wiring the virtual slots in.
    pairs: Vec<(u32, u32)>,
    /// Totals sweeps: per-slot effective folded-leaf counts.
    leaf_eff: Vec<u32>,
    lanes: usize,
    /// Mask words per node in the last sweep.
    words: usize,
    /// Test/tuning override for the per-sweep width choice.
    forced_words: Option<usize>,
    direction: Direction,
    /// Levels of the last sweep that ran bottom-up.
    pull_levels_last: u32,
    /// Whether the last sweep recorded the distance arrays.
    dist_recorded: bool,
    /// Whether the last sweep recorded per-lane histograms (false after
    /// [`run_totals`](Self::run_totals)).
    profiles_recorded: bool,
    /// The sources of the last sweep, per lane (for parent derivation).
    sources_last: Vec<NodeId>,
}

impl<'g> BatchBfs<'g> {
    /// New engine for `graph`; buffers are reused across [`run`](Self::run)s.
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            seen: Vec::new(),
            frontier: Vec::new(),
            next: Vec::new(),
            front: Vec::new(),
            spare: Vec::new(),
            active: Vec::new(),
            dist: Vec::new(),
            level_counts: (0..MAX_LANES).map(|_| Vec::new()).collect(),
            level_totals: Vec::new(),
            core: CoreState::Unbuilt,
            core_arc_cap: u32::MAX as usize,
            promoted: Vec::new(),
            pairs: Vec::new(),
            leaf_eff: Vec::new(),
            lanes: 0,
            words: 0,
            forced_words: None,
            direction: direction_for_new_engine(),
            pull_levels_last: 0,
            dist_recorded: false,
            profiles_recorded: false,
            sources_last: Vec::new(),
        }
    }

    /// The graph this engine traverses.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The direction policy sweeps run under.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Set the direction policy for subsequent sweeps. Results are
    /// bit-identical under every policy; only performance changes.
    pub fn set_direction(&mut self, direction: Direction) {
        self.direction = direction;
    }

    /// Force the per-node mask width for subsequent sweeps (`Some(1 | 4 |
    /// 8)`), overriding the automatic choice from the source count;
    /// `None` restores auto. A sweep still panics if its sources exceed
    /// the forced width's lanes.
    ///
    /// # Panics
    /// Panics if `words` is not 1, 4 or 8.
    pub fn force_words(&mut self, words: Option<usize>) {
        if let Some(w) = words {
            assert!(w == 1 || w == 4 || w == 8, "width must be 1, 4 or 8 words");
        }
        self.forced_words = words;
    }

    /// Levels of the last sweep that ran bottom-up (0 for a pure push
    /// sweep).
    pub fn pull_levels(&self) -> u32 {
        self.pull_levels_last
    }

    /// Run one level-synchronous sweep from `sources` (lane `i` is rooted
    /// at `sources[i]`; duplicates are fine — lanes stay independent).
    /// Accessors below read the result until the next call.
    ///
    /// When observability is enabled, each sweep bumps `bfs.batch.sweeps`,
    /// `bfs.batch.sources` (lanes advanced) and `bfs.batch.levels`
    /// (frontier expansions); sweeps in which the direction heuristic
    /// engaged the bottom-up scan additionally bump `bfs.batch.pull_sweeps`
    /// and `bfs.batch.pull_levels`. When a timed trace is recording, each
    /// sweep opens a `bfs/batch_sweep` span, so those counter deltas
    /// attribute to the individual sweep.
    ///
    /// # Panics
    /// Panics if `sources` is empty, longer than [`MAX_LANES`] (or the
    /// forced width's lanes), or names a node out of range.
    pub fn run(&mut self, sources: &[NodeId]) {
        self.sweep::<MODE_DIST>(sources);
    }

    /// Like [`run`](Self::run), but records only the per-lane `S(r)`
    /// histograms and skips the distance arrays entirely. Every
    /// histogram-level quantity — [`level_counts`](Self::level_counts),
    /// [`reached`](Self::reached), [`total_distance`](Self::total_distance),
    /// [`eccentricity`](Self::eccentricity) — is identical to what
    /// [`run`](Self::run) produces; only [`distances`](Self::distances)
    /// becomes unavailable. This is the hot path for the path-statistics
    /// consumers, which need per-lane histograms but never per-node
    /// distances: skipping them removes a lanes×nodes scatter-write pass,
    /// and the per-level counts come from the bit-sliced [`LaneCounter`]
    /// instead of per-discovery bit scans. Consumers that only need the
    /// lane-*summed* histogram take [`run_totals`](Self::run_totals),
    /// which is cheaper still.
    ///
    /// # Panics
    /// Same contract as [`run`](Self::run).
    pub fn run_profiles(&mut self, sources: &[NodeId]) {
        self.sweep::<MODE_PROFILES>(sources);
    }

    /// Like [`run_profiles`](Self::run_profiles), but records only the
    /// *lane-summed* discovery histogram [`level_totals`](Self::level_totals)
    /// — entry `r` is `Σ_lane S_lane(r)` — and skips every per-lane
    /// structure. A consumer that folds lanes into one running integer
    /// sum ([`crate::reachability::AverageReachability`]) gets a
    /// bit-identical fold from this histogram, because u64 addition is
    /// exact and associative.
    ///
    /// Because no per-lane state survives, this sweep traverses a
    /// *leaf-folded* view of the graph ([`CoreRep`]): only nodes of
    /// degree ≥ 2 carry mask words, and each folded degree-≤1 node is
    /// counted analytically from its sole neighbour's new lanes — exact,
    /// since those are the only lanes that can ever reach it. On the
    /// leaf-heavy tree-ish topologies of the paper this shrinks the
    /// traversal to a small core (ti5000: 650 of 5000 nodes). Folded
    /// *sources* are promoted to per-sweep virtual slots wired to their
    /// neighbours, so every source placement stays exact. The folded
    /// walk is top-down on every level regardless of the direction
    /// policy — a bottom-up scan would need the leaf mask words this
    /// representation deliberately never materialises — which changes
    /// nothing observable: every direction produces bit-identical
    /// histograms ([`pull_levels`](Self::pull_levels) reads 0).
    ///
    /// # Panics
    /// Same contract as [`run`](Self::run).
    pub fn run_totals(&mut self, sources: &[NodeId]) {
        if matches!(self.core, CoreState::Unbuilt) {
            self.core = match CoreRep::try_build(self.graph, self.core_arc_cap) {
                Some(core) => CoreState::Ready(core),
                None => CoreState::TooLarge,
            };
        }
        if matches!(self.core, CoreState::TooLarge) {
            // The folded core's u32 cursors cannot index this graph
            // (> 2^32 directed core arcs). Serve the lane-summed
            // histogram by folding a per-lane profile sweep instead —
            // bit-identical by the u64-addition argument in the method
            // docs, just without the leaf-folding speedup.
            self.sweep::<MODE_PROFILES>(sources);
            let mut totals: Vec<u64> = Vec::new();
            for lane in 0..self.lanes {
                let counts = &self.level_counts[lane];
                if counts.len() > totals.len() {
                    totals.resize(counts.len(), 0);
                }
                for (r, &c) in counts.iter().enumerate() {
                    totals[r] += c;
                }
            }
            self.level_totals = totals;
            self.profiles_recorded = false;
            return;
        }
        match self.checked_words(sources) {
            1 => self.totals_sweep_w::<1>(sources),
            4 => self.totals_sweep_w::<4>(sources),
            8 => self.totals_sweep_w::<8>(sources),
            _ => unreachable!("width validated by force_words"),
        }
    }

    /// Per-sweep mask width for `sources`, validating the batch size.
    fn checked_words(&self, sources: &[NodeId]) -> usize {
        let words = self.forced_words.unwrap_or_else(|| words_for(sources.len()));
        let cap = words * LANES_PER_WORD;
        assert!(
            !sources.is_empty() && sources.len() <= cap,
            "source batch must hold 1..={cap} sources, got {}",
            sources.len()
        );
        words
    }

    fn sweep<const MODE: u8>(&mut self, sources: &[NodeId]) {
        // Monomorphise over both the mask width and the offset width, so
        // the hot loops index offsets with no per-access branch.
        let graph = self.graph;
        match (self.checked_words(sources), graph.csr_offsets()) {
            (1, OffsetsView::Narrow(o)) => self.sweep_w::<1, MODE, _>(sources, o),
            (4, OffsetsView::Narrow(o)) => self.sweep_w::<4, MODE, _>(sources, o),
            (8, OffsetsView::Narrow(o)) => self.sweep_w::<8, MODE, _>(sources, o),
            (1, OffsetsView::Wide(o)) => self.sweep_w::<1, MODE, _>(sources, o),
            (4, OffsetsView::Wide(o)) => self.sweep_w::<4, MODE, _>(sources, o),
            (8, OffsetsView::Wide(o)) => self.sweep_w::<8, MODE, _>(sources, o),
            _ => unreachable!("width validated by force_words"),
        }
    }

    fn sweep_w<const W: usize, const MODE: u8, O: OffsetSlice>(
        &mut self,
        sources: &[NodeId],
        offsets: O,
    ) {
        // Timed span only while a trace records: a sweep is the BFS
        // kernel's unit of work, and the span carries this sweep's
        // counter deltas. Costs one relaxed load when tracing is off.
        let _span = mcast_obs::trace::active().then(|| mcast_obs::span_at("bfs/batch_sweep"));
        let n = self.graph.node_count();
        let lanes = sources.len();
        self.lanes = lanes;
        self.words = W;
        self.dist_recorded = MODE == MODE_DIST;
        self.profiles_recorded = true;
        self.sources_last.clear();
        self.sources_last.extend_from_slice(sources);

        // Full-lane masks: bit set iff that lane exists this sweep. The
        // tail word is partial and trailing words of a forced-wide sweep
        // are zero, so dead lanes are inert everywhere below.
        let mut full = [0u64; W];
        for (k, f) in full.iter_mut().enumerate() {
            let lo = k * LANES_PER_WORD;
            *f = if lanes >= lo + LANES_PER_WORD {
                !0
            } else if lanes > lo {
                (1u64 << (lanes - lo)) - 1
            } else {
                0
            };
        }

        self.seen.clear();
        self.seen.resize(n * W, 0);
        self.frontier.clear();
        self.frontier.resize(n * W, 0);
        self.next.clear();
        self.next.resize(n * W, 0);
        self.dist.clear();
        if MODE == MODE_DIST {
            self.dist.resize(lanes * n, UNREACHED);
        }
        for lc in &mut self.level_counts[..lanes] {
            lc.clear();
        }
        self.level_totals.clear();

        let graph = self.graph;
        let neigh = graph.csr_neighbors();
        let seen = &mut self.seen[..];
        let frontier = &mut self.frontier[..];
        let next = &mut self.next[..];
        let dist = &mut self.dist[..];

        let mut front = std::mem::take(&mut self.front);
        front.clear();
        for (lane, &s) in sources.iter().enumerate() {
            let si = s as usize;
            assert!(si < n, "source {s} out of range");
            let (wk, bit) = (lane / LANES_PER_WORD, 1u64 << (lane % LANES_PER_WORD));
            seen[si * W + wk] |= bit;
            if frontier[si * W..si * W + W].iter().all(|&w| w == 0) {
                front.push(s);
            }
            frontier[si * W + wk] |= bit;
            if MODE == MODE_DIST {
                dist[lane * n + si] = 0;
            }
            self.level_counts[lane].push(1); // S(0) = 1: the source itself
        }

        // Heuristic bookkeeping: `front_deg` is the frontier's edge count
        // (m_f); `remaining_deg` counts edges still incident to nodes not
        // yet seen by every lane (m_u), decremented exactly when a node
        // turns full.
        let mut remaining_deg = 2 * graph.edge_count() as u64;
        let mut front_deg: u64 = 0;
        for &v in &front {
            let vi = v as usize;
            let deg = (offsets.at(vi + 1) - offsets.at(vi)) as u64;
            front_deg += deg;
            if seen[vi * W..vi * W + W] == full[..] {
                remaining_deg -= deg;
            }
        }

        let mut next_front = std::mem::take(&mut self.spare);
        let mut active = std::mem::take(&mut self.active);
        active.clear();
        let mut active_built = false;
        let mut per_lane = [0u64; MAX_LANES];
        let mut counters = [LaneCounter::new(); W];
        let direction = self.direction;
        let mut pulling = false;
        let mut pull_levels: u32 = 0;
        let mut level: u32 = 0;
        while !front.is_empty() {
            level += 1;
            let want_pull = match direction {
                Direction::AlwaysPush => false,
                Direction::AlwaysPull => true,
                Direction::Auto { alpha, beta } => {
                    if pulling {
                        // Stay bottom-up while the frontier is a large
                        // share of the graph: revert when n_f·β < n.
                        (front.len() as u64).saturating_mul(beta) >= n as u64
                    } else {
                        front_deg.saturating_mul(alpha) > remaining_deg
                    }
                }
            };

            if !want_pull {
                // ---- top-down push --------------------------------------
                // Two passes built to keep the branch predictor out of the
                // hot loop. The edge pass is branch-free: every frontier
                // node unconditionally ORs its frontier words into each
                // neighbour's accumulator — a "did this edge discover
                // anything" test here is mispredicted roughly half the
                // time on sparse graphs, and its penalty dwarfs the store
                // it would save. Taking the frontier words clears them in
                // the same pass (the graph has no self-loops).
                pulling = false;
                for &v in &front {
                    let vi = v as usize;
                    let fb = vi * W;
                    let mut fw = [0u64; W];
                    for k in 0..W {
                        fw[k] = frontier[fb + k];
                        frontier[fb + k] = 0;
                    }
                    for &x in &neigh[offsets.at(vi)..offsets.at(vi + 1)] {
                        let xb = x as usize * W;
                        let nx = &mut next[xb..xb + W];
                        for k in 0..W {
                            nx[k] |= fw[k];
                        }
                    }
                }
                // The resolve pass then scans the accumulator *in node
                // order* — a sequential stream the prefetcher can run
                // ahead of — zeroing it as it goes, and commits each
                // touched node's genuinely-new lanes. As a side effect
                // the new frontier list comes out sorted by node id, so
                // the next edge pass walks the CSR monotonically.
                next_front.clear();
                front_deg = 0;
                for (xi, nx) in next.chunks_exact_mut(W).enumerate() {
                    let mut any = 0u64;
                    for w in nx.iter() {
                        any |= w;
                    }
                    if any == 0 {
                        continue;
                    }
                    let xb = xi * W;
                    let mut new = [0u64; W];
                    let mut any_new = 0u64;
                    for k in 0..W {
                        let nw = nx[k] & !seen[xb + k];
                        nx[k] = 0;
                        new[k] = nw;
                        any_new |= nw;
                    }
                    if any_new == 0 {
                        continue;
                    }
                    let mut became_full = true;
                    for k in 0..W {
                        let s2 = seen[xb + k] | new[k];
                        seen[xb + k] = s2;
                        frontier[xb + k] = new[k];
                        became_full &= s2 == full[k];
                    }
                    next_front.push(xi as NodeId);
                    let deg = (offsets.at(xi + 1) - offsets.at(xi)) as u64;
                    front_deg += deg;
                    if became_full {
                        remaining_deg -= deg;
                    }
                    for k in 0..W {
                        let nw = new[k];
                        if nw == 0 {
                            continue;
                        }
                        if MODE == MODE_DIST {
                            let base = k * LANES_PER_WORD;
                            let mut bits = nw;
                            while bits != 0 {
                                let lane = base + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                dist[lane * n + xi] = level;
                                per_lane[lane] += 1;
                            }
                        } else {
                            let base = k * LANES_PER_WORD;
                            counters[k].add(nw, &mut per_lane[base..base + LANES_PER_WORD]);
                        }
                    }
                }
            } else {
                // ---- bottom-up pull -----------------------------------
                if !active_built {
                    // First pull level: gather every node some lane still
                    // misses (degree-0 nodes can never be discovered).
                    // Recomputes `remaining_deg` from scratch so the
                    // incremental bookkeeping cannot drift.
                    active.clear();
                    remaining_deg = 0;
                    for v in 0..n {
                        let deg = offsets.at(v + 1) - offsets.at(v);
                        if deg == 0 {
                            continue;
                        }
                        if seen[v * W..v * W + W] != full[..] {
                            active.push(v as NodeId);
                            remaining_deg += deg as u64;
                        }
                    }
                    active_built = true;
                }
                pulling = true;
                pull_levels += 1;
                next_front.clear();
                // The active list is sorted by node id, so `seen`, the
                // CSR offsets and the neighbour ranges all stream; blocks
                // bound the CSR span scanned per burst, keeping the
                // random-access frontier words of one block's neighbours
                // LLC-resident on graphs with id locality.
                let mut ai = 0;
                while ai < active.len() {
                    let mut blk_end = ai;
                    let mut span = 0usize;
                    while blk_end < active.len() && span < PULL_EDGE_BLOCK {
                        let v = active[blk_end] as usize;
                        span += offsets.at(v + 1) - offsets.at(v);
                        blk_end += 1;
                    }
                    for &x in &active[ai..blk_end] {
                        let xi = x as usize;
                        let xb = xi * W;
                        let mut miss = [0u64; W];
                        let mut any_miss = 0u64;
                        for k in 0..W {
                            let m = full[k] & !seen[xb + k];
                            miss[k] = m;
                            any_miss |= m;
                        }
                        if any_miss == 0 {
                            continue;
                        }
                        let mut acc = [0u64; W];
                        for &y in &neigh[offsets.at(xi)..offsets.at(xi + 1)] {
                            let yb = y as usize * W;
                            let mut rem = 0u64;
                            for k in 0..W {
                                acc[k] |= frontier[yb + k] & miss[k];
                                rem |= miss[k] & !acc[k];
                            }
                            if rem == 0 {
                                break; // every missing lane covered
                            }
                        }
                        let mut any_new = 0u64;
                        for a in acc.iter() {
                            any_new |= a;
                        }
                        if any_new != 0 {
                            // Park discoveries in `next`: the frontier
                            // must stay intact until the level completes.
                            for k in 0..W {
                                next[xb + k] = acc[k];
                            }
                            next_front.push(x);
                        }
                    }
                    ai = blk_end;
                }
                // Install the new frontier: clear the old one, move the
                // parked discoveries in, and record them.
                for &v in &front {
                    let fb = v as usize * W;
                    for k in 0..W {
                        frontier[fb + k] = 0;
                    }
                }
                front_deg = 0;
                for &x in &next_front {
                    let xi = x as usize;
                    let xb = xi * W;
                    let mut became_full = true;
                    for k in 0..W {
                        let nw = next[xb + k];
                        next[xb + k] = 0;
                        frontier[xb + k] = nw;
                        let s2 = seen[xb + k] | nw;
                        seen[xb + k] = s2;
                        became_full &= s2 == full[k];
                    }
                    let deg = (offsets.at(xi + 1) - offsets.at(xi)) as u64;
                    front_deg += deg;
                    if became_full {
                        remaining_deg -= deg;
                    }
                    for k in 0..W {
                        let nw = frontier[xb + k];
                        if nw == 0 {
                            continue;
                        }
                        if MODE == MODE_DIST {
                            let base = k * LANES_PER_WORD;
                            let mut bits = nw;
                            while bits != 0 {
                                let lane = base + bits.trailing_zeros() as usize;
                                bits &= bits - 1;
                                dist[lane * n + xi] = level;
                                per_lane[lane] += 1;
                            }
                        } else {
                            let base = k * LANES_PER_WORD;
                            counters[k].add(nw, &mut per_lane[base..base + LANES_PER_WORD]);
                        }
                    }
                }
                // Compact: fully-seen nodes never discover again.
                active.retain(|&v| seen[v as usize * W..v as usize * W + W] != full[..]);
            }

            // A lane's reached levels are contiguous: once its frontier
            // empties it can never discover another node, so a non-zero
            // count always lands at index `level` of its histogram.
            if MODE == MODE_PROFILES {
                for (k, c) in counters.iter_mut().enumerate() {
                    let base = k * LANES_PER_WORD;
                    c.flush(&mut per_lane[base..base + LANES_PER_WORD]);
                }
            }
            for (lane, c) in per_lane[..lanes].iter_mut().enumerate() {
                if *c > 0 {
                    debug_assert_eq!(self.level_counts[lane].len(), level as usize);
                    self.level_counts[lane].push(*c);
                    *c = 0;
                }
            }
            std::mem::swap(&mut front, &mut next_front);
        }
        self.front = front;
        self.spare = next_front;
        self.active = active;
        self.pull_levels_last = pull_levels;
        if mcast_obs::enabled() {
            mcast_obs::counter("bfs.batch.sweeps").add(1);
            mcast_obs::counter("bfs.batch.sources").add(lanes as u64);
            mcast_obs::counter("bfs.batch.levels").add(u64::from(level));
            if pull_levels > 0 {
                mcast_obs::counter("bfs.batch.pull_sweeps").add(1);
                mcast_obs::counter("bfs.batch.pull_levels").add(u64::from(pull_levels));
            }
        }
    }

    /// Lane-summed counting sweep over the leaf-folded core (see
    /// [`run_totals`](Self::run_totals) for the fold argument). Slot ids
    /// replace node ids throughout: `0..ncore` are core nodes, slots past
    /// `ncore` are this sweep's promoted (folded) sources.
    fn totals_sweep_w<const W: usize>(&mut self, sources: &[NodeId]) {
        let _span = mcast_obs::trace::active().then(|| mcast_obs::span_at("bfs/batch_sweep"));
        let n = self.graph.node_count();
        let lanes = sources.len();
        self.lanes = lanes;
        self.words = W;
        self.dist_recorded = false;
        self.profiles_recorded = false;
        self.sources_last.clear();
        self.sources_last.extend_from_slice(sources);
        self.level_totals.clear();

        let core = match std::mem::replace(&mut self.core, CoreState::Unbuilt) {
            CoreState::Ready(core) => core,
            _ => unreachable!("folded core built by run_totals before dispatch"),
        };
        let ncore = core.leaf_count.len();
        // Graph offsets only wire the few promoted sources (cold path);
        // the hot level loop runs on the core's own u32 CSR.
        let offsets = self.graph.csr_offsets();
        let neigh = self.graph.csr_neighbors();

        // Promote every folded source (leaf or isolated node) to a
        // virtual slot; duplicates share one slot, lanes stay independent
        // in its mask words.
        let mut promoted = std::mem::take(&mut self.promoted);
        let mut pairs = std::mem::take(&mut self.pairs);
        promoted.clear();
        pairs.clear();
        for &s in sources {
            let si = s as usize;
            assert!(si < n, "source {s} out of range");
            if core.core_id[si] == u32::MAX && !promoted.contains(&s) {
                promoted.push(s);
            }
        }
        let nslots = ncore + promoted.len();
        let slot_of = |v: NodeId| -> u32 {
            let c = core.core_id[v as usize];
            if c != u32::MAX {
                return c;
            }
            match promoted.iter().position(|&p| p == v) {
                Some(i) => (ncore + i) as u32,
                None => u32::MAX,
            }
        };

        // Wire each virtual slot to its neighbourhood. A promoted leaf
        // exchanges lanes with its (core or promoted) neighbours through
        // explicit slot→slot pushes, and aggregate-counts its own folded
        // leaf neighbours; its core neighbours stop aggregate-counting it
        // in turn. A folded neighbour that is *not* promoted never needs
        // a push back in: its lanes are a subset of what this slot
        // already sent it.
        let leaf_eff = &mut self.leaf_eff;
        leaf_eff.clear();
        leaf_eff.extend_from_slice(&core.leaf_count);
        leaf_eff.resize(nslots, 0);
        for (i, &l) in promoted.iter().enumerate() {
            let ls = (ncore + i) as u32;
            let li = l as usize;
            for &u in &neigh[offsets.at(li)..offsets.at(li + 1)] {
                let us = slot_of(u);
                if us != u32::MAX {
                    pairs.push((us, ls));
                    pairs.push((ls, us));
                    if core.core_id[u as usize] != u32::MAX {
                        leaf_eff[us as usize] -= 1;
                    }
                } else {
                    leaf_eff[ls as usize] += 1;
                }
            }
        }

        self.seen.clear();
        self.seen.resize(nslots * W, 0);
        self.frontier.clear();
        self.frontier.resize(nslots * W, 0);
        self.next.clear();
        self.next.resize(nslots * W, 0);
        let seen = &mut self.seen[..];
        let frontier = &mut self.frontier[..];
        let next = &mut self.next[..];

        let mut front = std::mem::take(&mut self.front);
        front.clear();
        for (lane, &s) in sources.iter().enumerate() {
            let sb = slot_of(s) as usize * W;
            let (wk, bit) = (lane / LANES_PER_WORD, 1u64 << (lane % LANES_PER_WORD));
            seen[sb + wk] |= bit;
            if frontier[sb..sb + W].iter().all(|&w| w == 0) {
                front.push((sb / W) as NodeId);
            }
            frontier[sb + wk] |= bit;
        }
        // Σ_lane S_lane(0): one source per lane.
        self.level_totals.push(lanes as u64);

        let mut next_front = std::mem::take(&mut self.spare);
        let mut level: u32 = 0;
        while !front.is_empty() {
            level += 1;
            let mut level_total = 0u64;
            // Slot→slot pushes read the frontier before the edge pass
            // takes it; a slot with no new lanes contributes zero words.
            for &(a, b) in &pairs {
                let (ab, bb) = (a as usize * W, b as usize * W);
                for k in 0..W {
                    next[bb + k] |= frontier[ab + k];
                }
            }
            for &v in &front {
                let vi = v as usize;
                let fb = vi * W;
                let mut fw = [0u64; W];
                let mut pop = 0u64;
                for k in 0..W {
                    fw[k] = frontier[fb + k];
                    frontier[fb + k] = 0;
                    pop += u64::from(fw[k].count_ones());
                }
                // Folded leaf children: each receives exactly this slot's
                // new lanes one level out, and nothing else ever reaches
                // them — count them without touching them.
                level_total += u64::from(leaf_eff[vi]) * pop;
                if vi < ncore {
                    let lo = core.core_off[vi] as usize;
                    let hi = core.core_off[vi + 1] as usize;
                    for &x in &core.core_neigh[lo..hi] {
                        let xb = x as usize * W;
                        for k in 0..W {
                            next[xb + k] |= fw[k];
                        }
                    }
                }
            }
            next_front.clear();
            for xi in 0..nslots {
                let xb = xi * W;
                let mut any = 0u64;
                for k in 0..W {
                    any |= next[xb + k];
                }
                if any == 0 {
                    continue;
                }
                let mut new = [0u64; W];
                let mut any_new = 0u64;
                for k in 0..W {
                    let nw = next[xb + k] & !seen[xb + k];
                    next[xb + k] = 0;
                    new[k] = nw;
                    any_new |= nw;
                }
                if any_new == 0 {
                    continue;
                }
                for k in 0..W {
                    seen[xb + k] |= new[k];
                    frontier[xb + k] = new[k];
                    level_total += u64::from(new[k].count_ones());
                }
                next_front.push(xi as NodeId);
            }
            // Aggregate counts land at the same level they would in the
            // unfolded sweep: a folded leaf's discoveries trail its
            // neighbour's appearances by exactly one level, which is the
            // level being resolved here. Contiguity survives the fold —
            // a level with zero total means an empty core frontier.
            if level_total > 0 {
                debug_assert_eq!(self.level_totals.len(), level as usize);
                self.level_totals.push(level_total);
            }
            std::mem::swap(&mut front, &mut next_front);
        }
        self.front = front;
        self.spare = next_front;
        self.promoted = promoted;
        self.pairs = pairs;
        self.core = CoreState::Ready(core);
        self.pull_levels_last = 0;
        if mcast_obs::enabled() {
            mcast_obs::counter("bfs.batch.sweeps").add(1);
            mcast_obs::counter("bfs.batch.sources").add(lanes as u64);
            mcast_obs::counter("bfs.batch.levels").add(u64::from(level));
        }
    }

    /// Lanes advanced by the last [`run`](Self::run).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Mask words per node used by the last sweep (1, 4 or 8).
    pub fn words(&self) -> usize {
        self.words
    }

    /// Distances from `lane`'s source — identical to
    /// [`crate::bfs::Bfs::scratch_distances`] for that source
    /// ([`UNREACHED`] marks unreachable nodes).
    ///
    /// # Panics
    /// Panics if `lane` is out of range, or if the last sweep was not
    /// [`run`](Self::run) (no distances recorded).
    pub fn distances(&self, lane: usize) -> &[u32] {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert!(
            self.dist_recorded,
            "distances not recorded by the last sweep (use run, not \
             run_profiles/run_totals)"
        );
        let n = self.graph.node_count();
        &self.dist[lane * n..(lane + 1) * n]
    }

    /// `lane`'s `S(r)` histogram: entry `r` counts nodes first reached at
    /// hop `r` (entry 0 is the source). The same vector
    /// [`crate::reachability::Reachability::from_distances`] builds from
    /// the scalar BFS.
    ///
    /// # Panics
    /// Panics if `lane` is out of range, or if the last sweep was
    /// [`run_totals`](Self::run_totals) (no per-lane histograms recorded).
    pub fn level_counts(&self, lane: usize) -> &[u64] {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert!(
            self.profiles_recorded,
            "per-lane histograms not recorded by the last sweep (use run or \
             run_profiles, not run_totals)"
        );
        &self.level_counts[lane]
    }

    /// Lane-summed discovery histogram of the last
    /// [`run_totals`](Self::run_totals) sweep: entry `r` is
    /// `Σ_lane S_lane(r)` — exactly the sum of what
    /// [`level_counts`](Self::level_counts) would report per lane, with
    /// each lane's histogram read as zero past its own eccentricity. The
    /// length is the largest lane eccentricity plus one.
    ///
    /// # Panics
    /// Panics if the last sweep was not `run_totals`.
    pub fn level_totals(&self) -> &[u64] {
        assert!(
            !self.profiles_recorded && !self.sources_last.is_empty(),
            "lane-summed histogram only recorded by run_totals"
        );
        &self.level_totals
    }

    /// Nodes `lane`'s source reached, including itself.
    pub fn reached(&self, lane: usize) -> u64 {
        self.level_counts(lane).iter().sum()
    }

    /// Sum of finite distances from `lane`'s source (`Σ r·S(r)`) — the
    /// numerator of the average unicast path length, as an exact integer.
    pub fn total_distance(&self, lane: usize) -> u64 {
        self.level_counts(lane)
            .iter()
            .enumerate()
            .map(|(r, &s)| r as u64 * s)
            .sum()
    }

    /// `lane`'s source eccentricity within its component (largest hop
    /// count with `S(r) > 0`; zero for an isolated source).
    pub fn eccentricity(&self, lane: usize) -> usize {
        self.level_counts(lane).len() - 1
    }

    /// Derive `lane`'s shortest-path parent array into `out` — the batch
    /// join entry point for engines that graft many sources per tick.
    ///
    /// Parents follow the schedule-independent lowest-id rule of
    /// [`crate::bfs::min_index_parents`] applied to this lane's recorded
    /// distances, so the result is bit-identical to deriving from a
    /// scalar [`crate::bfs::Bfs`] sweep of the same source (batch and
    /// scalar distances already agree). Note this is *not* the scalar
    /// engine's FIFO parent array; a consumer must pick one rule and use
    /// it on every path, as `mcast_tree::storm` does.
    ///
    /// # Panics
    /// Panics if `lane` is out of range or the last sweep was
    /// [`run_profiles`](Self::run_profiles) (no distances recorded).
    pub fn parent_tree(&self, lane: usize, out: &mut Vec<NodeId>) {
        let source = self.sources_last[lane];
        crate::bfs::min_index_parents(self.graph, self.distances(lane), source, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::graph::from_edges;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        from_edges(n, &edges)
    }

    fn assert_matches_scalar(g: &Graph, sources: &[NodeId]) {
        let mut batch = BatchBfs::new(g);
        batch.run(sources);
        let mut scalar = Bfs::new(g);
        for (lane, &s) in sources.iter().enumerate() {
            scalar.run_scratch(s);
            assert_eq!(
                batch.distances(lane),
                scalar.scratch_distances(),
                "lane {lane} source {s}"
            );
            let profile = crate::reachability::Reachability::from_distances(
                scalar.scratch_distances(),
                scalar.scratch_order(),
            );
            assert_eq!(batch.level_counts(lane), profile.s_vec());
            assert_eq!(batch.reached(lane), profile.total());
            assert_eq!(batch.eccentricity(lane), profile.eccentricity());
        }
    }

    #[test]
    fn matches_scalar_on_path_and_cycle() {
        assert_matches_scalar(&path_graph(9), &[0, 4, 8]);
        let edges: Vec<_> = (0..8)
            .map(|i| (i as NodeId, ((i + 1) % 8) as NodeId))
            .collect();
        assert_matches_scalar(&from_edges(8, &edges), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn matches_scalar_on_disconnected_graph() {
        // Two components plus two isolated nodes.
        let g = from_edges(8, &[(0, 1), (1, 2), (4, 5)]);
        let sources: Vec<NodeId> = (0..8).collect();
        assert_matches_scalar(&g, &sources);
    }

    #[test]
    fn duplicate_sources_keep_lanes_independent() {
        let g = path_graph(6);
        let mut batch = BatchBfs::new(&g);
        batch.run(&[2, 2, 5]);
        assert_eq!(batch.distances(0), batch.distances(1));
        assert_eq!(batch.level_counts(0), batch.level_counts(1));
        assert_eq!(batch.level_counts(2), &[1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn full_width_and_reuse() {
        // 64 lanes on a graph with fewer nodes (sources repeat), then a
        // second run on the same engine must fully reset state.
        let g = from_edges(10, &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6), (6, 7)]);
        let sources: Vec<NodeId> = (0..64).map(|i| (i % 10) as NodeId).collect();
        assert_matches_scalar(&g, &sources);
        let mut batch = BatchBfs::new(&g);
        batch.run(&sources);
        batch.run(&[9]);
        assert_eq!(batch.lanes(), 1);
        assert_eq!(batch.level_counts(0), &[1]); // node 9 is isolated
        assert_eq!(batch.distances(0)[9], 0);
        assert_eq!(batch.distances(0)[0], UNREACHED);
    }

    #[test]
    fn wide_batches_match_scalar() {
        // 65 (4 words, one live bit in word 1), 256 (full 4 words) and
        // 300 (8 words, partial tail) lanes on a mixed graph.
        let g = from_edges(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (1, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (8, 6),
                (9, 10),
            ],
        );
        for lanes in [65usize, 256, 300] {
            let sources: Vec<NodeId> = (0..lanes).map(|i| (i % 12) as NodeId).collect();
            assert_matches_scalar(&g, &sources);
        }
    }

    #[test]
    fn forced_width_matches_auto() {
        let g = from_edges(9, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (6, 7)]);
        let sources: Vec<NodeId> = (0..9).collect();
        let mut auto = BatchBfs::new(&g);
        auto.run(&sources);
        for w in [1usize, 4, 8] {
            let mut forced = BatchBfs::new(&g);
            forced.force_words(Some(w));
            forced.run(&sources);
            for lane in 0..sources.len() {
                assert_eq!(forced.distances(lane), auto.distances(lane), "W={w}");
                assert_eq!(forced.level_counts(lane), auto.level_counts(lane));
            }
        }
    }

    #[test]
    fn forced_directions_match_auto() {
        let g = from_edges(
            10,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
        );
        let sources: Vec<NodeId> = (0..10).collect();
        let mut auto = BatchBfs::new(&g);
        auto.run(&sources);
        let mut pull = BatchBfs::new(&g);
        pull.set_direction(Direction::AlwaysPull);
        pull.run(&sources);
        assert!(pull.pull_levels() > 0, "forced pull must pull");
        let mut push = BatchBfs::new(&g);
        push.set_direction(Direction::AlwaysPush);
        push.run(&sources);
        assert_eq!(push.pull_levels(), 0, "forced push must not pull");
        for lane in 0..sources.len() {
            assert_eq!(pull.distances(lane), auto.distances(lane), "lane {lane}");
            assert_eq!(push.distances(lane), auto.distances(lane), "lane {lane}");
            assert_eq!(pull.level_counts(lane), auto.level_counts(lane));
            assert_eq!(push.level_counts(lane), auto.level_counts(lane));
        }
    }

    #[test]
    fn total_distance_matches_sp_tree() {
        let g = from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (4, 6)]);
        let mut batch = BatchBfs::new(&g);
        batch.run(&[0, 3]);
        let mut bfs = Bfs::new(&g);
        for (lane, s) in [(0usize, 0u32), (1, 3)] {
            let t = bfs.run(s);
            assert_eq!(batch.total_distance(lane), t.total_distance());
            assert_eq!(batch.eccentricity(lane), t.eccentricity() as usize);
        }
    }

    #[test]
    fn run_profiles_matches_run_histograms() {
        let g = from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5)]);
        let sources: Vec<NodeId> = (0..8).collect();
        let mut full = BatchBfs::new(&g);
        full.run(&sources);
        let mut profiles = BatchBfs::new(&g);
        profiles.run_profiles(&sources);
        for lane in 0..sources.len() {
            assert_eq!(profiles.level_counts(lane), full.level_counts(lane));
            assert_eq!(profiles.reached(lane), full.reached(lane));
            assert_eq!(profiles.total_distance(lane), full.total_distance(lane));
            assert_eq!(profiles.eccentricity(lane), full.eccentricity(lane));
        }
        // A full sweep on the same engine restores the distance arrays.
        profiles.run(&[0]);
        assert_eq!(profiles.distances(0), full.distances(0));
    }

    /// Expected `level_totals` by folding the per-lane histograms of a
    /// profile sweep (lanes past their own eccentricity contribute 0).
    fn fold_profiles(batch: &BatchBfs<'_>) -> Vec<u64> {
        let mut expect: Vec<u64> = Vec::new();
        for lane in 0..batch.lanes() {
            let counts = batch.level_counts(lane);
            if counts.len() > expect.len() {
                expect.resize(counts.len(), 0);
            }
            for (r, &c) in counts.iter().enumerate() {
                expect[r] += c;
            }
        }
        expect
    }

    #[test]
    fn run_totals_matches_profile_fold_on_degenerate_shapes() {
        // Every shape the leaf fold has to treat specially at once: a
        // star whose satellites fold (0 centre, 1-3 leaves), a chain tail
        // (3-4-5, 5 folds), a leaf–leaf pair (6-7, both fold), and an
        // isolated node (8). Sources hit a folded leaf (1), a leaf–leaf
        // pair end (6), the isolated node (8), a core node (4), and a
        // duplicate of the folded leaf (1 again, sharing its slot).
        let g = from_edges(9, &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (6, 7)]);
        for sources in [
            &[1, 6, 8, 4, 1][..],
            &[0][..],          // all-core source
            &[8][..],          // isolated source only
            &[6, 7][..],       // both ends of a fully folded component
            &[5, 2, 1][..],    // folded leaves of different parents
        ] {
            let mut profiles = BatchBfs::new(&g);
            profiles.run_profiles(sources);
            let expect = fold_profiles(&profiles);
            let mut totals = BatchBfs::new(&g);
            totals.run_totals(sources);
            assert_eq!(totals.level_totals(), &expect[..], "sources {sources:?}");
            assert_eq!(totals.pull_levels(), 0);
            // Interleaved reuse: folded and unfolded sweeps share scratch
            // buffers; neither representation may corrupt the other.
            totals.run_profiles(sources);
            for lane in 0..sources.len() {
                assert_eq!(totals.level_counts(lane), profiles.level_counts(lane));
            }
            totals.run_totals(sources);
            assert_eq!(totals.level_totals(), &expect[..], "sources {sources:?}");
        }
    }

    #[test]
    fn run_totals_ignores_direction_policy() {
        // The folded walk is top-down by construction; a pull-forcing
        // policy must change nothing (and never report pull levels).
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let sources: Vec<NodeId> = vec![0, 5, 2];
        let mut push = BatchBfs::new(&g);
        push.run_totals(&sources);
        let expect = push.level_totals().to_vec();
        let mut pull = BatchBfs::new(&g);
        pull.set_direction(Direction::AlwaysPull);
        pull.run_totals(&sources);
        assert_eq!(pull.level_totals(), &expect[..]);
        assert_eq!(pull.pull_levels(), 0);
    }

    #[test]
    fn run_totals_falls_back_when_core_cursors_would_overflow() {
        // Inject a tiny core-arc cap: the engine must decline the leaf
        // fold (whose `core_off` cursors are u32) and serve bit-identical
        // lane-summed histograms from a profile sweep instead. The real
        // boundary (2^32 directed core arcs, > 17 GiB of adjacency) is
        // unreachable in a test; the cap path is the same code.
        let g = from_edges(9, &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 5), (6, 7)]);
        let sources = &[1, 6, 8, 4, 1][..];
        let mut reference = BatchBfs::new(&g);
        reference.run_totals(sources);
        let expect = reference.level_totals().to_vec();
        let mut capped = BatchBfs::new(&g);
        capped.core_arc_cap = 1;
        capped.run_totals(sources);
        assert!(matches!(capped.core, CoreState::TooLarge));
        assert_eq!(capped.level_totals(), &expect[..]);
        // The accessor contract survives the fallback: totals sweeps
        // still refuse per-lane reads, and later sweeps still work.
        capped.run_profiles(sources);
        let mut folded = BatchBfs::new(&g);
        folded.run_profiles(sources);
        for lane in 0..sources.len() {
            assert_eq!(capped.level_counts(lane), folded.level_counts(lane));
        }
        capped.run_totals(sources);
        assert_eq!(capped.level_totals(), &expect[..]);
    }

    #[test]
    #[should_panic(expected = "per-lane histograms not recorded")]
    fn level_counts_unavailable_after_fallback_totals_sweep() {
        let g = path_graph(4);
        let mut batch = BatchBfs::new(&g);
        batch.core_arc_cap = 0;
        batch.run_totals(&[0]);
        let _ = batch.level_counts(0);
    }

    #[test]
    #[should_panic(expected = "lane-summed histogram")]
    fn level_totals_unavailable_after_profile_sweep() {
        let g = path_graph(4);
        let mut batch = BatchBfs::new(&g);
        batch.run_profiles(&[0]);
        let _ = batch.level_totals();
    }

    #[test]
    #[should_panic(expected = "per-lane histograms not recorded")]
    fn level_counts_unavailable_after_totals_sweep() {
        let g = path_graph(4);
        let mut batch = BatchBfs::new(&g);
        batch.run_totals(&[0]);
        let _ = batch.level_counts(0);
    }

    #[test]
    fn lane_counter_counts_past_flush_threshold() {
        // 300 adds of the same two lanes forces a mid-level flush (the
        // 8-bit planes saturate at 255 pending words).
        let mut c = LaneCounter::new();
        let mut out = [0u64; LANES_PER_WORD];
        for _ in 0..300 {
            c.add(0b101, &mut out);
        }
        c.flush(&mut out);
        assert_eq!(out[0], 300);
        assert_eq!(out[1], 0);
        assert_eq!(out[2], 300);
    }

    #[test]
    fn parent_tree_matches_scalar_derivation() {
        // Diamond: two equal-length paths 0-1-3 and 0-2-3 — the lowest-id
        // rule must pick 1 as 3's parent on both engines.
        let g = from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let mut batch = BatchBfs::new(&g);
        batch.run(&[0, 4]);
        let mut scalar = Bfs::new(&g);
        let mut from_batch = Vec::new();
        let mut from_scalar = Vec::new();
        for (lane, &s) in [0u32, 4].iter().enumerate() {
            batch.parent_tree(lane, &mut from_batch);
            scalar.run_scratch(s);
            crate::bfs::min_index_parents(&g, scalar.scratch_distances(), s, &mut from_scalar);
            assert_eq!(from_batch, from_scalar, "lane {lane} source {s}");
            // Every reached non-source node's parent sits one hop closer.
            for v in 0..g.node_count() {
                let d = batch.distances(lane)[v];
                if v as NodeId == s || d == UNREACHED {
                    continue;
                }
                assert_eq!(batch.distances(lane)[from_batch[v] as usize], d - 1);
            }
        }
        batch.parent_tree(0, &mut from_batch);
        assert_eq!(from_batch[3], 1, "lowest-id rule must pick 1 over 2");
    }

    #[test]
    #[should_panic(expected = "distances not recorded")]
    fn parent_tree_unavailable_after_profile_sweep() {
        let g = path_graph(4);
        let mut batch = BatchBfs::new(&g);
        batch.run_profiles(&[0]);
        batch.parent_tree(0, &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "distances not recorded")]
    fn distances_unavailable_after_profile_sweep() {
        let g = path_graph(4);
        let mut batch = BatchBfs::new(&g);
        batch.run_profiles(&[0]);
        batch.distances(0);
    }

    #[test]
    #[should_panic(expected = "source batch")]
    fn empty_batch_rejected() {
        let g = path_graph(3);
        BatchBfs::new(&g).run(&[]);
    }

    #[test]
    #[should_panic(expected = "source batch")]
    fn forced_width_caps_batch_size() {
        let g = path_graph(3);
        let mut batch = BatchBfs::new(&g);
        batch.force_words(Some(1));
        let sources: Vec<NodeId> = (0..65).map(|i| (i % 3) as NodeId).collect();
        batch.run(&sources);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_source_rejected() {
        let g = path_graph(3);
        BatchBfs::new(&g).run(&[3]);
    }
}
