//! The paper's reachability functions.
//!
//! For a graph and a chosen source, `S(r)` is the number of distinct sites
//! exactly `r` hops from the source and `T(r) = Σ_{j<=r} S(j)` the number
//! within `r` hops (the source itself is `S(0) = 1`). Section 4 of the paper
//! shows the asymptotic form of the multicast tree size is controlled by
//! whether `S(r)` grows exponentially; Figure 7 plots `ln T(r)` versus `r`
//! averaged over random sources.

use crate::batch::{max_lanes, BatchBfs};
use crate::bfs::Bfs;
use crate::graph::{Graph, NodeId};

/// Errors from reachability computations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReachabilityError {
    /// An average was requested over an empty source set.
    NoSources,
}

impl std::fmt::Display for ReachabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSources => write!(f, "reachability average needs at least one source"),
        }
    }
}

impl std::error::Error for ReachabilityError {}

/// Per-source reachability profile.
///
/// ```
/// use mcast_topology::graph::from_edges;
/// use mcast_topology::reachability::Reachability;
///
/// // A path graph seen from one end: S(r) = 1 at every hop.
/// let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let reach = Reachability::from_source(&g, 0);
/// assert_eq!(reach.s_vec(), &[1, 1, 1, 1]);
/// assert_eq!(reach.t(2), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reachability {
    s: Vec<u64>,
}

impl Reachability {
    /// Compute the profile of `graph` seen from `source`.
    pub fn from_source(graph: &Graph, source: NodeId) -> Self {
        let mut bfs = Bfs::new(graph);
        bfs.run_scratch(source);
        Self::from_distances(bfs.scratch_distances(), bfs.scratch_order())
    }

    /// Build from a per-level newly-reached histogram (`s[r]` = sites first
    /// reached at hop `r`, with `s[0] = 1` for the source itself), as
    /// produced by [`crate::batch::BatchBfs::level_counts`].
    ///
    /// # Panics
    /// Panics if `s` is empty (every profile includes `S(0)`).
    pub fn from_level_counts(s: Vec<u64>) -> Self {
        assert!(!s.is_empty(), "level counts must include S(0)");
        Self { s }
    }

    /// Build from precomputed BFS scratch state (distances + reached order).
    pub fn from_distances(dist: &[u32], order: &[NodeId]) -> Self {
        let ecc = order.iter().map(|&v| dist[v as usize]).max().unwrap_or(0);
        let mut s = vec![0u64; ecc as usize + 1];
        for &v in order {
            s[dist[v as usize] as usize] += 1;
        }
        Self { s }
    }

    /// `S(r)`: sites exactly `r` hops away. Zero beyond the eccentricity.
    pub fn s(&self, r: usize) -> u64 {
        self.s.get(r).copied().unwrap_or(0)
    }

    /// `T(r)`: sites within `r` hops (inclusive; `T(0) = 1`).
    pub fn t(&self, r: usize) -> u64 {
        self.s.iter().take(r + 1).sum()
    }

    /// Full `S` vector, index = hop count.
    pub fn s_vec(&self) -> &[u64] {
        &self.s
    }

    /// Full cumulative `T` vector.
    pub fn t_vec(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.s
            .iter()
            .map(|&x| {
                acc += x;
                acc
            })
            .collect()
    }

    /// Eccentricity of the source (largest `r` with `S(r) > 0`).
    pub fn eccentricity(&self) -> usize {
        self.s.len() - 1
    }

    /// Total sites reached, `T(eccentricity)`.
    pub fn total(&self) -> u64 {
        self.s.iter().sum()
    }
}

/// `T(r)` averaged over several sources (the paper averages over its
/// `N_source` random source choices). Entries beyond a source's
/// eccentricity contribute that source's saturated total.
#[derive(Clone, Debug, PartialEq)]
pub struct AverageReachability {
    t: Vec<f64>,
}

impl AverageReachability {
    /// Average the profiles of the given `sources` on `graph`.
    ///
    /// Sources are swept in batches of up to [`max_lanes`] by
    /// [`BatchBfs::run_totals`], which hands back each batch's
    /// lane-summed discovery histogram; its cumulative sum *is*
    /// `Σ_lane T_lane(r)` (a lane's `S` is zero past its eccentricity,
    /// so saturation is automatic), and one integer add per radius folds
    /// the batch in. Memory stays `O(max eccentricity)` no matter how
    /// many sources are averaged. The summed counts are exact integers
    /// below 2⁵³, so the result is bit-identical to averaging scalar
    /// per-source profiles at every lane width and in every fold order.
    /// A trailing sub-width chunk (even one whose sources are all
    /// isolated) contributes exactly its lanes — the kernel's dead lanes
    /// are inert and never reach the fold.
    ///
    /// # Errors
    /// Returns [`ReachabilityError::NoSources`] if `sources` is empty.
    pub fn over_sources(graph: &Graph, sources: &[NodeId]) -> Result<Self, ReachabilityError> {
        if sources.is_empty() {
            return Err(ReachabilityError::NoSources);
        }
        let mut batch = BatchBfs::new(graph);
        // sums[r] = Σ over processed sources of T_src(r); a source whose
        // eccentricity lies below r contributes its saturated total there.
        let mut sums: Vec<u64> = Vec::new();
        for chunk in sources.chunks(max_lanes()) {
            batch.run_totals(chunk);
            let agg = batch.level_totals();
            let prev_total = sums.last().copied().unwrap_or(0);
            if agg.len() > sums.len() {
                sums.resize(agg.len(), prev_total);
            }
            let mut cum = 0u64;
            for (r, &ar) in agg.iter().enumerate() {
                cum += ar;
                sums[r] += cum;
            }
            for slot in sums.iter_mut().skip(agg.len()) {
                *slot += cum;
            }
        }
        let count = sources.len() as f64;
        Ok(Self {
            t: sums.iter().map(|&v| v as f64 / count).collect(),
        })
    }

    /// Averaged `T(r)`; saturates at the mean reached count beyond the
    /// largest eccentricity.
    pub fn t(&self, r: usize) -> f64 {
        let idx = r.min(self.t.len() - 1);
        self.t[idx]
    }

    /// Full averaged vector, index = hop count.
    pub fn t_vec(&self) -> &[f64] {
        &self.t
    }

    /// Largest eccentricity across the averaged sources.
    pub fn max_radius(&self) -> usize {
        self.t.len() - 1
    }

    /// Crude exponentiality score: the coefficient of determination (R²) of
    /// a least-squares line fit to `ln T(r)` over the pre-saturation range
    /// (`T(r) <= fraction * total`). The paper's dichotomy — exponential vs
    /// sub-exponential reachability — shows up as high vs low R² here.
    ///
    /// Degenerate profiles score `f64::NAN` rather than panicking: an
    /// isolated source saturates at `T(r) = 1` immediately, leaving fewer
    /// than three pre-saturation points to fit, and an empty or
    /// non-positive curve offers nothing to take a logarithm of.
    pub fn exponential_fit_r2(&self, fraction: f64) -> f64 {
        let Some(&total) = self.t.last() else {
            return f64::NAN;
        };
        if !total.is_finite() || total <= 0.0 {
            return f64::NAN;
        }
        let cutoff = fraction * total;
        let pts: Vec<(f64, f64)> = self
            .t
            .iter()
            .enumerate()
            .skip(1) // T(0) = 1 carries no growth information
            .take_while(|&(_, &tv)| tv <= cutoff)
            .map(|(r, &tv)| (r as f64, tv.ln()))
            .collect();
        if pts.len() < 3 {
            return f64::NAN;
        }
        let n = pts.len() as f64;
        let mx = pts.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pts.iter().map(|p| p.1).sum::<f64>() / n;
        let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let sxx: f64 = pts.iter().map(|p| (p.0 - mx).powi(2)).sum();
        let syy: f64 = pts.iter().map(|p| (p.1 - my).powi(2)).sum();
        if sxx == 0.0 || syy == 0.0 {
            return f64::NAN;
        }
        (sxy * sxy) / (sxx * syy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        from_edges(n, &edges)
    }

    #[test]
    fn path_reachability_from_end() {
        let g = path_graph(5);
        let r = Reachability::from_source(&g, 0);
        assert_eq!(r.s_vec(), &[1, 1, 1, 1, 1]);
        assert_eq!(r.t(0), 1);
        assert_eq!(r.t(2), 3);
        assert_eq!(r.t(10), 5);
        assert_eq!(r.eccentricity(), 4);
        assert_eq!(r.total(), 5);
    }

    #[test]
    fn path_reachability_from_middle() {
        let g = path_graph(5);
        let r = Reachability::from_source(&g, 2);
        assert_eq!(r.s_vec(), &[1, 2, 2]);
        assert_eq!(r.t_vec(), vec![1, 3, 5]);
    }

    #[test]
    fn binary_tree_reachability_is_powers_of_two() {
        // Depth-3 complete binary tree, nodes 0..15 with parent (i-1)/2.
        let edges: Vec<_> = (1..15u32).map(|i| ((i - 1) / 2, i)).collect();
        let g = from_edges(15, &edges);
        let r = Reachability::from_source(&g, 0);
        assert_eq!(r.s_vec(), &[1, 2, 4, 8]);
    }

    #[test]
    fn disconnected_source_sees_only_component() {
        let g = from_edges(4, &[(0, 1)]);
        let r = Reachability::from_source(&g, 0);
        assert_eq!(r.total(), 2);
        assert_eq!(r.s(1), 1);
        assert_eq!(r.s(2), 0);
    }

    #[test]
    fn average_reachability_mixes_sources() {
        let g = path_graph(5);
        // From 0: T = [1,2,3,4,5]; from 2: T = [1,3,5] saturating at 5.
        let avg = AverageReachability::over_sources(&g, &[0, 2]).unwrap();
        assert_eq!(avg.max_radius(), 4);
        let expect = [1.0, 2.5, 4.0, 4.5, 5.0];
        for (r, e) in expect.iter().enumerate() {
            assert!((avg.t(r) - e).abs() < 1e-12, "r={r}");
        }
        assert!((avg.t(99) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_tree_scores_higher_r2_than_path() {
        // Complete binary tree depth 9 vs path: tree T(r) is exponential,
        // path T(r) is linear, so ln T is concave for the path.
        let n = (1u32 << 10) - 1;
        let tree_edges: Vec<_> = (1..n).map(|i| ((i - 1) / 2, i)).collect();
        let tree = from_edges(n as usize, &tree_edges);
        let path = path_graph(1023);
        let tr = AverageReachability::over_sources(&tree, &[0]).unwrap();
        let pr = AverageReachability::over_sources(&path, &[0]).unwrap();
        let tree_r2 = tr.exponential_fit_r2(0.9);
        let path_r2 = pr.exponential_fit_r2(0.9);
        assert!(tree_r2 > 0.98, "tree r2 = {tree_r2}");
        assert!(path_r2 < tree_r2, "path r2 = {path_r2}");
    }

    #[test]
    fn average_requires_sources() {
        let g = path_graph(3);
        let err = AverageReachability::over_sources(&g, &[]).unwrap_err();
        assert_eq!(err, ReachabilityError::NoSources);
        assert!(err.to_string().contains("at least one source"));
    }

    #[test]
    fn isolated_node_profile_scores_nan_not_panic() {
        // Node 3 is isolated: averaged alone its curve saturates at T(r)=1,
        // which used to feed unwrap()/ln() hazards in the fit.
        let g = from_edges(4, &[(0, 1), (1, 2)]);
        let lonely = AverageReachability::over_sources(&g, &[3]).unwrap();
        assert_eq!(lonely.max_radius(), 0);
        assert!((lonely.t(7) - 1.0).abs() < 1e-12);
        assert!(lonely.exponential_fit_r2(0.9).is_nan());
        // Mixing the isolated node with a real source must not panic either.
        let mixed = AverageReachability::over_sources(&g, &[0, 3]).unwrap();
        assert_eq!(mixed.max_radius(), 2);
        assert!((mixed.t(0) - 1.0).abs() < 1e-12);
        assert!((mixed.t(9) - 2.0).abs() < 1e-12); // (3 + 1) / 2
    }

    #[test]
    fn from_level_counts_matches_from_distances() {
        let g = from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4)]);
        let direct = Reachability::from_source(&g, 0);
        let rebuilt = Reachability::from_level_counts(direct.s_vec().to_vec());
        assert_eq!(direct, rebuilt);
    }

    #[test]
    fn many_sources_stream_past_one_batch() {
        // 70 sources once forced two 64-lane chunks; the wide kernel now
        // takes them in one 4-word sweep, and with a narrowed lane limit
        // they split again — either way the running-sum merge must agree
        // with averaging each scalar profile.
        let g = path_graph(70);
        let sources: Vec<NodeId> = (0..70).collect();
        let avg = AverageReachability::over_sources(&g, &sources).unwrap();
        let mut expect = vec![0.0f64; 70];
        for &s in &sources {
            let tv = Reachability::from_source(&g, s).t_vec();
            for (r, slot) in expect.iter_mut().enumerate() {
                *slot += *tv.get(r).unwrap_or(tv.last().unwrap()) as f64;
            }
        }
        for slot in &mut expect {
            *slot /= 70.0;
        }
        assert_eq!(avg.max_radius(), 69);
        for (r, &e) in expect.iter().enumerate() {
            assert_eq!(avg.t(r).to_bits(), e.to_bits(), "r={r}");
        }
    }
}
