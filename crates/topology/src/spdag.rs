//! The all-shortest-paths DAG.
//!
//! BFS gives *one* shortest-path tree per source, with a fixed
//! (lowest-id-first) tie-break. Real routers break ties differently —
//! hash-based ECMP, highest interface, vendor quirks — and the paper's
//! `L(m)` implicitly depends on that choice. [`SpDag`] records *every*
//! shortest-path predecessor of every node, so delivery trees can be
//! built under any tie-breaking policy (see `mcast-tree`'s policy
//! sizer and the `ablate-tiebreak` experiment).

use crate::bfs::UNREACHED;
use crate::graph::{Graph, NodeId};

/// All shortest-path predecessors from one source, in CSR layout.
///
/// ```
/// use mcast_topology::graph::from_edges;
/// use mcast_topology::spdag::SpDag;
///
/// // A 4-cycle: two equal-length paths from 0 to the far corner.
/// let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let dag = SpDag::new(&g, 0);
/// assert_eq!(dag.predecessors(2), &[1, 3]);
/// assert_eq!(dag.path_count(2), 2);
/// ```
#[derive(Clone, Debug)]
pub struct SpDag {
    source: NodeId,
    dist: Vec<u32>,
    /// `offsets[v]..offsets[v+1]` indexes `preds` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated predecessor lists (each one hop closer to the source).
    preds: Vec<NodeId>,
}

impl SpDag {
    /// Build the DAG by BFS from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(graph: &Graph, source: NodeId) -> Self {
        let n = graph.node_count();
        assert!((source as usize) < n, "source {source} out of range");
        let mut dist = vec![UNREACHED; n];
        let mut queue = Vec::with_capacity(n);
        dist[source as usize] = 0;
        queue.push(source);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            for &w in graph.neighbors(u) {
                if dist[w as usize] == UNREACHED {
                    dist[w as usize] = du + 1;
                    queue.push(w);
                }
            }
        }
        // Predecessors: neighbours exactly one hop closer.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut preds = Vec::new();
        offsets.push(0);
        for v in 0..n as NodeId {
            if dist[v as usize] != UNREACHED && v != source {
                let dv = dist[v as usize];
                for &u in graph.neighbors(v) {
                    if dist[u as usize] != UNREACHED && dist[u as usize] + 1 == dv {
                        preds.push(u);
                    }
                }
            }
            offsets.push(preds.len());
        }
        Self {
            source,
            dist,
            offsets,
            preds,
        }
    }

    /// The source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance from the source, or `None` if unreachable.
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        match self.dist[v as usize] {
            UNREACHED => None,
            d => Some(d),
        }
    }

    /// All shortest-path predecessors of `v` (empty for the source and
    /// unreachable nodes), sorted by node id.
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.preds[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Number of distinct shortest paths from the source to `v`
    /// (saturating; 0 if unreachable, 1 for the source itself).
    pub fn path_count(&self, v: NodeId) -> u64 {
        if self.dist[v as usize] == UNREACHED {
            return 0;
        }
        // Dynamic programming in distance order.
        let n = self.dist.len();
        let mut order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&u| self.dist[u as usize] != UNREACHED)
            .collect();
        order.sort_by_key(|&u| self.dist[u as usize]);
        let mut count = vec![0u64; n];
        count[self.source as usize] = 1;
        for &u in &order {
            if u == self.source {
                continue;
            }
            let mut c = 0u64;
            for &p in self.predecessors(u) {
                c = c.saturating_add(count[p as usize]);
            }
            count[u as usize] = c;
        }
        count[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    /// A 4-cycle: two equal paths from 0 to 2.
    fn square() -> Graph {
        from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn records_all_ties() {
        let g = square();
        let dag = SpDag::new(&g, 0);
        assert_eq!(dag.predecessors(2), &[1, 3]);
        assert_eq!(dag.predecessors(1), &[0]);
        assert_eq!(dag.predecessors(0), &[] as &[NodeId]);
        assert_eq!(dag.path_count(2), 2);
        assert_eq!(dag.path_count(1), 1);
        assert_eq!(dag.path_count(0), 1);
    }

    #[test]
    fn grid_path_counts_are_binomials() {
        // 3x3 grid: paths from corner to corner = C(4,2) = 6.
        let mut edges = Vec::new();
        let id = |r: u32, c: u32| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        let g = from_edges(9, &edges);
        let dag = SpDag::new(&g, 0);
        assert_eq!(dag.path_count(8), 6);
        assert_eq!(dag.distance(8), Some(4));
        // Centre: C(2,1) = 2 paths.
        assert_eq!(dag.path_count(4), 2);
    }

    #[test]
    fn predecessors_are_one_hop_closer() {
        let g = from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (2, 5),
                (5, 4),
                (4, 6),
            ],
        );
        let dag = SpDag::new(&g, 0);
        for v in g.nodes() {
            for &p in dag.predecessors(v) {
                assert_eq!(dag.distance(p).unwrap() + 1, dag.distance(v).unwrap());
                assert!(g.has_edge(p, v));
            }
        }
    }

    #[test]
    fn unreachable_nodes() {
        let g = from_edges(4, &[(0, 1)]);
        let dag = SpDag::new(&g, 0);
        assert_eq!(dag.distance(2), None);
        assert_eq!(dag.predecessors(2), &[] as &[NodeId]);
        assert_eq!(dag.path_count(2), 0);
    }

    #[test]
    fn tree_graph_has_unique_predecessors() {
        let edges: Vec<_> = (1..15u32).map(|i| ((i - 1) / 2, i)).collect();
        let g = from_edges(15, &edges);
        let dag = SpDag::new(&g, 0);
        for v in 1..15u32 {
            assert_eq!(dag.predecessors(v).len(), 1, "node {v}");
            assert_eq!(dag.path_count(v), 1);
        }
    }
}
