//! Error type for fallible topology operations (parsing, validation).

use std::fmt;

/// Errors produced by this crate's fallible operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A node id referenced a node outside the declared range.
    NodeOutOfRange {
        /// The offending id.
        id: u64,
        /// Number of nodes available.
        node_count: usize,
    },
    /// Raw CSR arrays violated a graph invariant (deserialisation path).
    InvalidCsr {
        /// Which invariant failed.
        reason: &'static str,
    },
    /// The operation requires a connected graph but the input was not.
    Disconnected,
    /// The operation requires a non-empty graph.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            Self::NodeOutOfRange { id, node_count } => {
                write!(
                    f,
                    "node id {id} out of range (graph has {node_count} nodes)"
                )
            }
            Self::InvalidCsr { reason } => write!(f, "invalid CSR arrays: {reason}"),
            Self::Disconnected => write!(f, "graph is not connected"),
            Self::Empty => write!(f, "graph is empty"),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TopologyError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error on line 3: bad token");
        assert_eq!(
            TopologyError::NodeOutOfRange {
                id: 9,
                node_count: 4
            }
            .to_string(),
            "node id 9 out of range (graph has 4 nodes)"
        );
        assert_eq!(
            TopologyError::Disconnected.to_string(),
            "graph is not connected"
        );
        assert_eq!(TopologyError::Empty.to_string(), "graph is empty");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TopologyError::Empty);
    }
}
