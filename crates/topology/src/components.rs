//! Connected components and largest-component extraction.
//!
//! Generated topologies (flat random graphs in particular) are not always
//! connected; the paper's measurement methodology implicitly assumes every
//! receiver is reachable from every source, so the experiment suite extracts
//! the largest connected component before measuring.

use crate::bfs::{Bfs, UNREACHED};
use crate::graph::{Graph, GraphBuilder, NodeId};

/// A labelling of every node with its component index.
#[derive(Clone, Debug)]
pub struct Components {
    /// `labels[v]` = component index of node `v`, dense in `0..count`.
    labels: Vec<u32>,
    /// `sizes[c]` = number of nodes in component `c`.
    sizes: Vec<usize>,
}

impl Components {
    /// Compute components of `graph` by repeated BFS.
    pub fn find(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut labels = vec![UNREACHED; n];
        let mut sizes = Vec::new();
        let mut bfs = Bfs::new(graph);
        for v in graph.nodes() {
            if labels[v as usize] != UNREACHED {
                continue;
            }
            let label = sizes.len() as u32;
            bfs.run_scratch(v);
            let mut size = 0usize;
            for &u in bfs.scratch_order() {
                labels[u as usize] = label;
                size += 1;
            }
            sizes.push(size);
        }
        Self { labels, sizes }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component label of node `v`.
    pub fn label(&self, v: NodeId) -> u32 {
        self.labels[v as usize]
    }

    /// Size of component `c`.
    pub fn size(&self, c: u32) -> usize {
        self.sizes[c as usize]
    }

    /// Label of the largest component (lowest label wins ties).
    pub fn largest(&self) -> Option<u32> {
        (0..self.sizes.len() as u32).max_by_key(|&c| (self.sizes[c as usize], std::cmp::Reverse(c)))
    }

    /// Whether the whole graph is one component (empty graphs count as
    /// connected).
    pub fn is_connected(&self) -> bool {
        self.sizes.len() <= 1
    }
}

/// Result of extracting an induced subgraph: the subgraph plus the mapping
/// from new ids back to the original graph's ids.
#[derive(Clone, Debug)]
pub struct Extracted {
    /// The induced subgraph, with dense ids `0..kept`.
    pub graph: Graph,
    /// `original[new_id]` = node id in the source graph.
    pub original: Vec<NodeId>,
}

/// Extract the subgraph induced by the largest connected component.
///
/// Returns the input unchanged (with an identity mapping) when it is already
/// connected.
pub fn largest_component(graph: &Graph) -> Extracted {
    let comps = Components::find(graph);
    if comps.is_connected() {
        return Extracted {
            graph: graph.clone(),
            original: graph.nodes().collect(),
        };
    }
    let target = comps.largest().expect("non-empty graph has a component");
    let mut new_id = vec![UNREACHED; graph.node_count()];
    let mut original = Vec::new();
    for v in graph.nodes() {
        if comps.label(v) == target {
            new_id[v as usize] = original.len() as NodeId;
            original.push(v);
        }
    }
    let mut b = GraphBuilder::new(original.len());
    for (u, v) in graph.edges() {
        if comps.label(u) == target && comps.label(v) == target {
            b.add_edge(new_id[u as usize], new_id[v as usize]);
        }
    }
    Extracted {
        graph: b.build(),
        original,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    fn single_component() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let c = Components::find(&g);
        assert_eq!(c.count(), 1);
        assert!(c.is_connected());
        assert_eq!(c.largest(), Some(0));
        assert_eq!(c.size(0), 3);
    }

    #[test]
    fn two_components_and_isolate() {
        let g = from_edges(6, &[(0, 1), (2, 3), (3, 4)]); // node 5 isolated
        let c = Components::find(&g);
        assert_eq!(c.count(), 3);
        assert!(!c.is_connected());
        let largest = c.largest().unwrap();
        assert_eq!(c.size(largest), 3);
        assert_eq!(c.label(2), c.label(4));
        assert_ne!(c.label(0), c.label(2));
    }

    #[test]
    fn largest_component_extraction_remaps_ids() {
        let g = from_edges(6, &[(0, 1), (2, 3), (3, 4), (2, 4)]);
        let ex = largest_component(&g);
        assert_eq!(ex.graph.node_count(), 3);
        assert_eq!(ex.graph.edge_count(), 3);
        assert_eq!(ex.original, vec![2, 3, 4]);
        // Triangle preserved under relabelling.
        assert!(ex.graph.has_edge(0, 1));
        assert!(ex.graph.has_edge(1, 2));
        assert!(ex.graph.has_edge(0, 2));
    }

    #[test]
    fn connected_input_returned_intact() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let ex = largest_component(&g);
        assert_eq!(ex.graph, g);
        assert_eq!(ex.original, vec![0, 1, 2, 3]);
    }

    #[test]
    fn largest_tie_prefers_lowest_label() {
        let g = from_edges(4, &[(0, 1), (2, 3)]);
        let c = Components::find(&g);
        assert_eq!(c.largest(), Some(0));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = GraphBuilder::new(0).build();
        let c = Components::find(&g);
        assert_eq!(c.count(), 0);
        assert!(c.is_connected());
        assert_eq!(c.largest(), None);
    }
}
