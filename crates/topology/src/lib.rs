//! Graph substrate for the multicast-scaling study.
//!
//! This crate provides the foundation every experiment in the workspace sits
//! on: a compact immutable undirected [`Graph`] (CSR adjacency), breadth-first
//! shortest paths ([`bfs`]) plus a bit-parallel multi-source variant
//! ([`batch`]), connected components ([`components`]), topology
//! metrics such as average unicast path length and diameter ([`metrics`]),
//! the paper's reachability functions `S(r)` / `T(r)` ([`reachability`]), and
//! a tiny edge-list text format ([`io`]).
//!
//! The paper ("Scaling of Multicast Trees", SIGCOMM '99) works exclusively
//! with hop counts on cleaned, bidirectional topologies: duplicate edges are
//! removed and every remaining edge is treated as undirected, and links are
//! counted without length or bandwidth weights. [`GraphBuilder`] performs
//! exactly that cleaning.
//!
//! # Example
//!
//! ```
//! use mcast_topology::{GraphBuilder, bfs::Bfs};
//!
//! // A 4-cycle with a chord.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! b.add_edge(3, 0);
//! b.add_edge(0, 2);
//! b.add_edge(2, 0); // duplicate: cleaned away
//! let g = b.build();
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 5);
//!
//! let tree = Bfs::new(&g).run(0);
//! assert_eq!(tree.distance(2), Some(1)); // via the chord
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bfs;
pub mod bridges;
pub mod components;
pub mod error;
pub mod graph;
pub mod io;
pub mod metrics;
pub mod reachability;
pub mod spdag;

pub use error::TopologyError;
pub use graph::{Graph, GraphBuilder, NodeId, OffsetArray, OffsetSlice, OffsetsView};
