//! Bridges and 2-edge-connectivity.
//!
//! A *bridge* is an edge whose removal disconnects its component. Bridge
//! density is the structural signature separating the suite's two
//! reachability classes: chain-heavy topologies (ARPA's long-haul lines,
//! TIERS trees, MBone tunnels) are full of bridges, while the meshy
//! random/transit-stub/power-law graphs have few outside their leaf
//! attachments. Implemented with the standard Tarjan low-link DFS
//! (iterative, so deep chains cannot overflow the stack).

use crate::graph::{Graph, NodeId};

/// All bridges of `graph`, each as `(u, v)` with `u < v`, in ascending
/// order.
///
/// ```
/// use mcast_topology::bridges::bridges;
/// use mcast_topology::graph::from_edges;
///
/// // A triangle with a pendant edge: only the pendant is a bridge.
/// let g = from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(bridges(&g), vec![(2, 3)]);
/// ```
pub fn bridges(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    let n = graph.node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut out = Vec::new();
    let mut timer = 1u32;

    // Iterative DFS frame: (node, parent edge encoded as neighbour index
    // into the *parent's* adjacency, next child index to explore).
    for root in 0..n as NodeId {
        if disc[root as usize] != 0 {
            continue;
        }
        // Stack entries: (v, parent, next neighbour index, parent_edge_used)
        let mut stack: Vec<(NodeId, NodeId, usize, bool)> = vec![(root, root, 0, false)];
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        while let Some(&mut (v, parent, ref mut idx, ref mut parent_edge_used)) = stack.last_mut() {
            let neighbors = graph.neighbors(v);
            if *idx < neighbors.len() {
                let w = neighbors[*idx];
                *idx += 1;
                if w == parent && !*parent_edge_used {
                    // Skip the tree edge back to the parent exactly once,
                    // so parallel... (parallel edges are cleaned away, but
                    // a second v–parent edge cannot exist; the flag guards
                    // the single tree edge).
                    *parent_edge_used = true;
                    continue;
                }
                if disc[w as usize] != 0 {
                    // Back edge.
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                } else {
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, v, 0, false));
                }
            } else {
                stack.pop();
                if let Some(&mut (p, _, _, _)) = stack.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if low[v as usize] > disc[p as usize] {
                        out.push(if p < v { (p, v) } else { (v, p) });
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Fraction of edges that are bridges (0.0 for the empty graph) — the
/// "chain-ness" score used to characterise the suite.
pub fn bridge_fraction(graph: &Graph) -> f64 {
    if graph.edge_count() == 0 {
        return 0.0;
    }
    bridges(graph).len() as f64 / graph.edge_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    fn tree_is_all_bridges() {
        let edges: Vec<_> = (1..15u32).map(|i| ((i - 1) / 2, i)).collect();
        let g = from_edges(15, &edges);
        assert_eq!(bridges(&g).len(), 14);
        assert_eq!(bridge_fraction(&g), 1.0);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let edges: Vec<_> = (0..8u32).map(|i| (i, (i + 1) % 8)).collect();
        let g = from_edges(8, &edges);
        assert!(bridges(&g).is_empty());
        assert_eq!(bridge_fraction(&g), 0.0);
    }

    #[test]
    fn barbell_bridge_found() {
        // Two triangles joined by one edge: only that edge is a bridge.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(bridges(&g), vec![(2, 3)]);
    }

    #[test]
    fn pendant_edges_are_bridges() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4)]);
        assert_eq!(bridges(&g), vec![(0, 3), (3, 4)]);
    }

    #[test]
    fn disconnected_components_handled() {
        let g = from_edges(7, &[(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]);
        assert_eq!(bridges(&g), vec![(0, 1), (5, 6)]);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..25 {
            let n = rng.gen_range(3..18usize);
            let m = rng.gen_range(n - 1..2 * n);
            let edges: Vec<(NodeId, NodeId)> = (0..m)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            let g = from_edges(n, &edges);
            let fast = bridges(&g);
            // Brute force: an edge is a bridge iff removing it increases
            // the component count.
            let base = crate::components::Components::find(&g).count();
            let mut brute = Vec::new();
            for (u, v) in g.edges() {
                let reduced: Vec<(NodeId, NodeId)> = g.edges().filter(|&e| e != (u, v)).collect();
                let h = from_edges(n, &reduced);
                if crate::components::Components::find(&h).count() > base {
                    brute.push((u, v));
                }
            }
            brute.sort_unstable();
            assert_eq!(fast, brute, "n={n} edges={edges:?}");
        }
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 100k-node path: recursion would blow the stack; iteration not.
        let n = 100_000;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        let g = from_edges(n, &edges);
        assert_eq!(bridges(&g).len(), n - 1);
    }

    #[test]
    fn arpa_is_chainier_than_a_random_graph() {
        // The structural signature behind the suite's reachability split.
        use rand::SeedableRng;
        let arpa_edges: Vec<(NodeId, NodeId)> = vec![
            // inline mini-ARPA-like: ring + spurs
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (1, 5),
            (5, 6),
            (3, 7),
            (7, 8),
            (8, 9),
        ];
        let chainy = from_edges(10, &arpa_edges);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::Rng;
        let mesh_edges: Vec<(NodeId, NodeId)> = (0..25)
            .map(|_| (rng.gen_range(0..10u32), rng.gen_range(0..10u32)))
            .collect();
        let mesh = from_edges(10, &mesh_edges);
        assert!(bridge_fraction(&chainy) > bridge_fraction(&mesh));
    }
}
