//! A tiny edge-list text format.
//!
//! One edge per line as two whitespace-separated integer node ids; blank
//! lines and `#` comments are ignored. The node count is one more than the
//! largest id seen (or can be forced with a `nodes <n>` header line). This
//! is the format the embedded ARPA dataset ships in and the format the
//! `mcs` CLI accepts for user-supplied topologies.

use crate::error::TopologyError;
use crate::graph::{Graph, GraphBuilder, NodeId};
use std::fmt::Write as _;

/// Parse an edge list from text.
///
/// ```
/// let g = mcast_topology::io::parse_edge_list("# triangle\n0 1\n1 2\n2 0\n").unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 3);
/// ```
pub fn parse_edge_list(text: &str) -> Result<Graph, TopologyError> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut declared_nodes: Option<usize> = None;
    let mut max_id: u64 = 0;
    let mut any = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().expect("non-empty line has a token");
        if first == "nodes" {
            let n: u64 = parts
                .next()
                .ok_or_else(|| TopologyError::Parse {
                    line: line_no,
                    message: "`nodes` header missing a count".into(),
                })?
                .parse()
                .map_err(|_| TopologyError::Parse {
                    line: line_no,
                    message: "`nodes` count is not an integer".into(),
                })?;
            if n > NodeId::MAX as u64 {
                return Err(TopologyError::NodeOutOfRange {
                    id: n,
                    node_count: NodeId::MAX as usize,
                });
            }
            declared_nodes = Some(n as usize);
            continue;
        }
        let u: u64 = first.parse().map_err(|_| TopologyError::Parse {
            line: line_no,
            message: format!("expected integer node id, got `{first}`"),
        })?;
        let second = parts.next().ok_or_else(|| TopologyError::Parse {
            line: line_no,
            message: "edge line needs two node ids".into(),
        })?;
        let v: u64 = second.parse().map_err(|_| TopologyError::Parse {
            line: line_no,
            message: format!("expected integer node id, got `{second}`"),
        })?;
        if parts.next().is_some() {
            return Err(TopologyError::Parse {
                line: line_no,
                message: "trailing tokens after edge".into(),
            });
        }
        max_id = max_id.max(u).max(v);
        if max_id > NodeId::MAX as u64 {
            return Err(TopologyError::NodeOutOfRange {
                id: max_id,
                node_count: NodeId::MAX as usize,
            });
        }
        edges.push((u as NodeId, v as NodeId));
        any = true;
    }

    let inferred = if any { max_id as usize + 1 } else { 0 };
    let node_count = match declared_nodes {
        Some(n) => {
            if inferred > n {
                return Err(TopologyError::NodeOutOfRange {
                    id: max_id,
                    node_count: n,
                });
            }
            n
        }
        None => inferred,
    };
    let mut b = GraphBuilder::new(node_count);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Serialise a graph to GraphViz DOT (undirected), for visual inspection
/// of small topologies.
pub fn write_dot(graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle];");
    for v in graph.nodes() {
        if graph.degree(v) == 0 {
            let _ = writeln!(out, "  {v};");
        }
    }
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "  {u} -- {v};");
    }
    out.push_str("}\n");
    out
}

/// Serialise a graph to the edge-list format (with a `nodes` header so
/// isolated trailing nodes survive a round trip).
pub fn write_edge_list(graph: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes {}", graph.node_count());
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "{u} {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    fn parses_comments_and_blanks() {
        let g = parse_edge_list("# header\n\n0 1 # inline\n1 2\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn nodes_header_allows_isolated_tail() {
        let g = parse_edge_list("nodes 5\n0 1\n").unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn nodes_header_too_small_is_error() {
        let e = parse_edge_list("nodes 2\n0 5\n").unwrap_err();
        assert!(matches!(
            e,
            TopologyError::NodeOutOfRange {
                id: 5,
                node_count: 2
            }
        ));
    }

    #[test]
    fn bad_tokens_are_parse_errors() {
        assert!(matches!(
            parse_edge_list("0 x\n").unwrap_err(),
            TopologyError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            parse_edge_list("0\n").unwrap_err(),
            TopologyError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            parse_edge_list("0 1 2\n").unwrap_err(),
            TopologyError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            parse_edge_list("nodes\n").unwrap_err(),
            TopologyError::Parse { line: 1, .. }
        ));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = parse_edge_list("").unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn round_trip() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let text = write_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_preserves_isolated_nodes() {
        let g = from_edges(4, &[(0, 1)]);
        let g2 = parse_edge_list(&write_edge_list(&g)).unwrap();
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g, g2);
    }

    #[test]
    fn dot_output_shape() {
        let g = from_edges(4, &[(0, 1), (1, 2)]); // node 3 isolated
        let dot = write_dot(&g, "demo");
        assert!(dot.starts_with("graph demo {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("  3;"), "isolated node listed");
        assert!(dot.trim_end().ends_with('}'));
        // Each undirected edge appears exactly once.
        assert_eq!(dot.matches(" -- ").count(), 2);
    }
}
