//! Compact immutable undirected graph in CSR (compressed sparse row) form.

use crate::error::TopologyError;
use std::fmt;

/// Identifier of a node: a dense index in `0..node_count`.
///
/// `u32` keeps adjacency arrays half the size of `usize` on 64-bit targets;
/// the largest topology in the study (the Internet router map stand-in,
/// 56,317 nodes) fits comfortably.
pub type NodeId = u32;

/// An immutable undirected graph.
///
/// Construction goes through [`GraphBuilder`], which performs the paper's
/// topology "cleaning": self-loops and duplicate (parallel) edges are
/// removed and all edges are treated as bidirectional. Adjacency lists are
/// sorted, so iteration order — and therefore every BFS tie-break in the
/// workspace — is deterministic.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; each undirected edge appears twice.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges (half the directed arc count).
    edge_count: usize,
}

impl Graph {
    /// Number of nodes (including isolated ones declared to the builder).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges after cleaning.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbours of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v` (self-loops never exist post-cleaning).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The raw CSR offset array: `offsets[v]..offsets[v+1]` indexes
    /// [`Self::csr_neighbors`] for node `v`. Always `node_count + 1`
    /// entries, starting at 0. Exposed for serialisation (the
    /// `mcast-store` binary topology format persists CSR verbatim).
    #[inline]
    pub fn csr_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw concatenated adjacency array (each undirected edge appears
    /// twice). See [`Self::csr_offsets`].
    #[inline]
    pub fn csr_neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Average degree `2E / N`. Returns 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count() as f64
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects raw edges (duplicates and self-loops welcome — they are cleaned
/// at [`build`](GraphBuilder::build) time, mirroring the paper's treatment of
/// the TIERS topologies, which "were cleaned by removing duplicate edges"
/// with "all remaining edges … assumed to be bi-directional").
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// New builder for a graph with `node_count` nodes (ids `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        assert!(
            node_count <= NodeId::MAX as usize,
            "node count {node_count} exceeds NodeId capacity"
        );
        Self {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of raw (uncleaned) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grow the node set to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        assert!(n <= NodeId::MAX as usize);
        self.node_count = self.node_count.max(n);
    }

    /// Add a fresh node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_count as NodeId;
        self.node_count += 1;
        id
    }

    /// Add an undirected edge. Direction, duplication and self-loops are
    /// all normalised away at build time.
    ///
    /// # Panics
    /// Panics if either endpoint is `>= node_count`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.node_count && (v as usize) < self.node_count,
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count
        );
        self.edges.push((u, v));
    }

    /// Clean and freeze into an immutable [`Graph`].
    pub fn build(mut self) -> Graph {
        // Normalise to (min, max), drop self-loops, dedupe.
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.node_count;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were processed in sorted order, but per-node lists still need
        // sorting because a node sees edges both as `min` and as `max` side.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            neighbors,
            edge_count: self.edges.len(),
        }
    }
}

/// Rebuild a [`Graph`] from raw CSR arrays, validating every invariant
/// the builder normally guarantees: monotone offsets covering the whole
/// neighbour array, per-node adjacency sorted strictly ascending (no
/// duplicates), no self-loops, and symmetric edges. This is the trusted
/// entry point for deserialised topologies — a corrupted or hand-forged
/// payload is rejected rather than producing a graph whose BFS
/// tie-breaks silently differ.
pub fn try_from_csr(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Result<Graph, TopologyError> {
    let invalid = |reason: &'static str| TopologyError::InvalidCsr { reason };
    if offsets.is_empty() {
        return Err(invalid("offsets array is empty"));
    }
    let n = offsets.len() - 1;
    if n > NodeId::MAX as usize {
        return Err(invalid("node count exceeds NodeId capacity"));
    }
    if offsets[0] != 0 {
        return Err(invalid("offsets must start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid("offsets must be monotone non-decreasing"));
    }
    if *offsets.last().expect("non-empty") != neighbors.len() {
        return Err(invalid("final offset must equal the neighbour array length"));
    }
    if neighbors.len() % 2 != 0 {
        return Err(invalid("directed arc count must be even (each edge stored twice)"));
    }
    let graph = Graph {
        offsets,
        neighbors,
        edge_count: 0,
    };
    for v in 0..n as NodeId {
        let ns = graph.neighbors(v);
        if ns.windows(2).any(|w| w[0] >= w[1]) {
            return Err(invalid("adjacency list not sorted strictly ascending"));
        }
        for &u in ns {
            if u == v {
                return Err(invalid("self-loop in adjacency list"));
            }
            if u as usize >= n {
                return Err(invalid("neighbour id out of range"));
            }
            // Symmetry via binary search in the counterpart list.
            if graph.neighbors(u).binary_search(&v).is_err() {
                return Err(invalid("asymmetric edge (u lists v but v does not list u)"));
            }
        }
    }
    let edge_count = graph.neighbors.len() / 2;
    Ok(Graph { edge_count, ..graph })
}

/// Build a graph directly from an edge list over `node_count` nodes.
pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(node_count);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn dedupes_and_drops_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate, reversed
        b.add_edge(0, 1); // duplicate, same direction
        b.add_edge(2, 2); // self-loop
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new(6);
        for v in [5, 3, 1, 4, 2] {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
        assert_eq!(es.len(), g.edge_count());
    }

    #[test]
    fn average_degree_cycle() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ensure_nodes_and_add_node() {
        let mut b = GraphBuilder::new(2);
        b.ensure_nodes(4);
        let v = b.add_node();
        assert_eq!(v, 4);
        b.add_edge(0, v);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn csr_round_trip() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (4, 5)]);
        let rebuilt =
            try_from_csr(g.csr_offsets().to_vec(), g.csr_neighbors().to_vec()).unwrap();
        assert_eq!(g, rebuilt);
        assert_eq!(rebuilt.edge_count(), 6);
        // Empty graph round-trips too.
        let empty = GraphBuilder::new(0).build();
        let rebuilt = try_from_csr(
            empty.csr_offsets().to_vec(),
            empty.csr_neighbors().to_vec(),
        )
        .unwrap();
        assert_eq!(empty, rebuilt);
    }

    #[test]
    fn csr_validation_rejects_forged_arrays() {
        let reason = |r: Result<Graph, TopologyError>| match r.unwrap_err() {
            TopologyError::InvalidCsr { reason } => reason,
            other => panic!("wrong error {other:?}"),
        };
        // Empty offsets.
        assert!(reason(try_from_csr(vec![], vec![])).contains("empty"));
        // Offsets not starting at zero.
        assert!(reason(try_from_csr(vec![1, 1], vec![])).contains("start at 0"));
        // Non-monotone offsets.
        assert!(reason(try_from_csr(vec![0, 2, 1, 2], vec![1, 0])).contains("monotone"));
        // Final offset disagrees with the arc array.
        assert!(reason(try_from_csr(vec![0, 1], vec![])).contains("final offset"));
        // Odd arc count.
        let r = try_from_csr(vec![0, 1, 1], vec![1]);
        assert!(reason(r).contains("even"));
        // Unsorted adjacency.
        let r = try_from_csr(vec![0, 2, 3, 4], vec![2, 1, 0, 0]);
        assert!(reason(r).contains("sorted"));
        // Self-loop.
        let r = try_from_csr(vec![0, 1, 2], vec![0, 0]);
        assert!(reason(r).contains("self-loop"));
        // Neighbour out of range.
        let r = try_from_csr(vec![0, 1, 2], vec![5, 0]);
        assert!(reason(r).contains("out of range"));
        // Asymmetric edge: 0 lists 1 but 1 lists 2 instead.
        let r = try_from_csr(vec![0, 1, 2, 3], vec![1, 2, 1]);
        // (that one has odd arcs; use a clean asymmetric 4-arc case)
        assert!(r.is_err());
        let r = try_from_csr(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 2]);
        assert!(r.is_ok(), "two disjoint edges are fine");
        let r = try_from_csr(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 1]);
        assert!(reason(r).contains("asymmetric"));
    }

    #[test]
    fn debug_format_is_compact() {
        let g = from_edges(2, &[(0, 1)]);
        let s = format!("{g:?}");
        assert!(s.contains("nodes: 2"));
        assert!(s.contains("edges: 1"));
    }
}
