//! Compact immutable undirected graph in CSR (compressed sparse row) form.

use crate::error::TopologyError;
use std::fmt;

/// Identifier of a node: a dense index in `0..node_count`.
///
/// `u32` keeps adjacency arrays half the size of `usize` on 64-bit targets;
/// the largest topology in the study (the Internet router map stand-in,
/// 56,317 nodes) fits comfortably.
pub type NodeId = u32;

/// Owned CSR offset array in the narrowest width that fits.
///
/// A graph's offsets run `0..=2E` (directed arc count), so any topology
/// below the 2^32-arc boundary — every instance in the study, including
/// the `huge` 10^6–10^7-node tier — stores them as `u32`, halving the
/// per-node overhead. The `Wide` fallback keeps correctness past the
/// boundary. The choice is a pure function of the final arc count, so
/// equal graphs always pick the same representation and the derived
/// `PartialEq`/`Eq` stay structural.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OffsetArray {
    /// All offsets fit in `u32` (directed arc count ≤ `u32::MAX`).
    Narrow(Vec<u32>),
    /// Checked fallback past the 2^32 directed-arc boundary.
    Wide(Vec<usize>),
}

impl OffsetArray {
    /// Narrow `offsets` to `u32` when every value fits (the offsets are
    /// monotone, so checking the last suffices).
    pub fn from_usize(offsets: Vec<usize>) -> Self {
        match offsets.last() {
            Some(&last) if last > u32::MAX as usize => OffsetArray::Wide(offsets),
            _ => OffsetArray::Narrow(offsets.into_iter().map(|o| o as u32).collect()),
        }
    }

    /// Number of entries (`node_count + 1` for a graph's offsets).
    pub fn len(&self) -> usize {
        match self {
            OffsetArray::Narrow(o) => o.len(),
            OffsetArray::Wide(o) => o.len(),
        }
    }

    /// Whether the array has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow as a width-tagged view.
    #[inline]
    pub fn view(&self) -> OffsetsView<'_> {
        match self {
            OffsetArray::Narrow(o) => OffsetsView::Narrow(o),
            OffsetArray::Wide(o) => OffsetsView::Wide(o),
        }
    }
}

/// Borrowed, width-tagged view of a CSR offset array.
///
/// Hot kernels match once on the variant and monomorphise their sweep
/// over the payload slice (see [`OffsetSlice`]); cold paths index through
/// [`OffsetsView::at`] directly.
#[derive(Clone, Copy, Debug)]
pub enum OffsetsView<'a> {
    /// Compact form: every offset fits in `u32`.
    Narrow(&'a [u32]),
    /// Fallback form past the 2^32 directed-arc boundary.
    Wide(&'a [usize]),
}

impl<'a> OffsetsView<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            OffsetsView::Narrow(o) => o.len(),
            OffsetsView::Wide(o) => o.len(),
        }
    }

    /// Whether the view has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offset at `i`, widened to `usize`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn at(&self, i: usize) -> usize {
        match self {
            OffsetsView::Narrow(o) => o[i] as usize,
            OffsetsView::Wide(o) => o[i],
        }
    }

    /// Iterate the offsets as `usize` values.
    pub fn iter(self) -> OffsetsIter<'a> {
        match self {
            OffsetsView::Narrow(o) => OffsetsIter::Narrow(o.iter()),
            OffsetsView::Wide(o) => OffsetsIter::Wide(o.iter()),
        }
    }

    /// Copy out as a `Vec<usize>` (serialisation and tests; allocates).
    pub fn to_usize_vec(self) -> Vec<usize> {
        self.iter().collect()
    }
}

/// Iterator over an [`OffsetsView`], yielding `usize` offsets.
pub enum OffsetsIter<'a> {
    /// Iterating the compact form.
    Narrow(std::slice::Iter<'a, u32>),
    /// Iterating the fallback form.
    Wide(std::slice::Iter<'a, usize>),
}

impl Iterator for OffsetsIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            OffsetsIter::Narrow(it) => it.next().map(|&o| o as usize),
            OffsetsIter::Wide(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            OffsetsIter::Narrow(it) => it.size_hint(),
            OffsetsIter::Wide(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for OffsetsIter<'_> {}

/// Zero-cost offset indexing for kernels monomorphised per offset width.
///
/// Implemented for `&[u32]` and `&[usize]`; a sweep that takes
/// `O: OffsetSlice` compiles to direct slice indexing with no per-access
/// branch — the width match happens once at the dispatch site.
pub trait OffsetSlice: Copy {
    /// Offset at `i`, widened to `usize`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    fn at(self, i: usize) -> usize;
}

impl OffsetSlice for &[u32] {
    #[inline(always)]
    fn at(self, i: usize) -> usize {
        self[i] as usize
    }
}

impl OffsetSlice for &[usize] {
    #[inline(always)]
    fn at(self, i: usize) -> usize {
        self[i]
    }
}

/// An immutable undirected graph.
///
/// Construction goes through [`GraphBuilder`], which performs the paper's
/// topology "cleaning": self-loops and duplicate (parallel) edges are
/// removed and all edges are treated as bidirectional. Adjacency lists are
/// sorted, so iteration order — and therefore every BFS tie-break in the
/// workspace — is deterministic.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`;
    /// stored `u32`-compacted below the 2^32 directed-arc boundary.
    offsets: OffsetArray,
    /// Concatenated sorted adjacency lists; each undirected edge appears twice.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges (half the directed arc count).
    edge_count: usize,
}

impl Graph {
    /// Offset at `i` widened to `usize`; one predictable branch on the
    /// storage width (scalar paths — hot kernels monomorphise instead).
    #[inline(always)]
    fn off(&self, i: usize) -> usize {
        match &self.offsets {
            OffsetArray::Narrow(o) => o[i] as usize,
            OffsetArray::Wide(o) => o[i],
        }
    }

    /// Number of nodes (including isolated ones declared to the builder).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges after cleaning.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.off(v + 1) - self.off(v)
    }

    /// Sorted neighbours of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.off(v)..self.off(v + 1)]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count() as NodeId
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v` (self-loops never exist post-cleaning).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The raw CSR offset array: `offsets[v]..offsets[v+1]` indexes
    /// [`Self::csr_neighbors`] for node `v`. Always `node_count + 1`
    /// entries, starting at 0, returned as a width-tagged view over the
    /// compact storage. Exposed for serialisation (the `mcast-store`
    /// binary topology format persists the offsets as `u64` regardless of
    /// the in-memory width) and for kernels that monomorphise per width.
    #[inline]
    pub fn csr_offsets(&self) -> OffsetsView<'_> {
        self.offsets.view()
    }

    /// The raw concatenated adjacency array (each undirected edge appears
    /// twice). See [`Self::csr_offsets`].
    #[inline]
    pub fn csr_neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// Average degree `2E / N`. Returns 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.node_count() as f64
        }
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects raw edges (duplicates and self-loops welcome — they are cleaned
/// at [`build`](GraphBuilder::build) time, mirroring the paper's treatment of
/// the TIERS topologies, which "were cleaned by removing duplicate edges"
/// with "all remaining edges … assumed to be bi-directional").
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<[NodeId; 2]>,
}

impl GraphBuilder {
    /// New builder for a graph with `node_count` nodes (ids `0..node_count`).
    pub fn new(node_count: usize) -> Self {
        assert!(
            node_count <= NodeId::MAX as usize,
            "node count {node_count} exceeds NodeId capacity"
        );
        Self {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of raw (uncleaned) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grow the node set to at least `n` nodes.
    pub fn ensure_nodes(&mut self, n: usize) {
        assert!(n <= NodeId::MAX as usize);
        self.node_count = self.node_count.max(n);
    }

    /// Add a fresh node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.node_count as NodeId;
        self.node_count += 1;
        id
    }

    /// Add an undirected edge. Direction, duplication and self-loops are
    /// all normalised away at build time.
    ///
    /// # Panics
    /// Panics if either endpoint is `>= node_count`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            (u as usize) < self.node_count && (v as usize) < self.node_count,
            "edge ({u}, {v}) out of range for {} nodes",
            self.node_count
        );
        self.edges.push([u, v]);
    }

    /// Clean and freeze into an immutable [`Graph`].
    ///
    /// The CSR is counting-sorted *in place* inside the cleaned edge
    /// list's own allocation: the sorted pair array is reinterpreted as
    /// the neighbour array and rearranged with two linear passes, so the
    /// adjacency never exists twice in RAM. Peak overhead beyond the edge
    /// buffer is five `O(n)` scratch arrays — at the `huge` tier
    /// (10^6–10^7 nodes) that is the difference between ~2× and ~1× the
    /// final CSR footprint.
    pub fn build(mut self) -> Graph {
        // Normalise to [min, max], drop self-loops, dedupe.
        for e in &mut self.edges {
            if e[0] > e[1] {
                e.swap(0, 1);
            }
        }
        self.edges.retain(|e| e[0] != e[1]);
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.node_count;
        let m = self.edges.len();
        let mut deg = vec![0u32; n];
        let mut fwd = vec![0u32; n];
        for e in &self.edges {
            deg[e[0] as usize] += 1;
            deg[e[1] as usize] += 1;
            fwd[e[0] as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &deg {
            acc += d as usize;
            offsets.push(acc);
        }
        drop(deg);

        // Reinterpret the pair array as the neighbour array: same
        // allocation, `[u0, v0, u1, v1, …]` sorted by `(u, v)`.
        let mut neighbors: Vec<NodeId> = self.edges.into_flattened();

        // Pass 1 — compact the forward targets (the `v` of each pair)
        // into the front third: index `2i+1` is always strictly ahead of
        // write index `i`, and any source read later sits at an index
        // `≥ i+1`, so nothing is read after being overwritten. The `u`
        // endpoints become implicit in the group boundaries `fwd`.
        for i in 0..m {
            neighbors[i] = neighbors[2 * i + 1];
        }
        let mut fwd_off = Vec::with_capacity(n + 1);
        fwd_off.push(0usize);
        let mut facc = 0usize;
        for &f in &fwd {
            facc += f as usize;
            fwd_off.push(facc);
        }

        // Pass 2 — move each node's forward group to the *tail* of its
        // final CSR slot, iterating nodes descending. A node's sorted
        // adjacency is its backward neighbours (all `< v`) followed by
        // its forward neighbours (all `> v`), so the tail is the forward
        // group's final resting place. Destinations never clobber unread
        // sources: `dest ≥ src` pointwise (each prefix of final slots is
        // at least as long as the same prefix of forward groups), and a
        // node's destination starts at or past every smaller node's
        // source end.
        for u in (0..n).rev() {
            let src = fwd_off[u];
            let len = fwd[u] as usize;
            let dest = offsets[u + 1] - len;
            neighbors.copy_within(src..src + len, dest);
        }
        drop(fwd_off);

        // Pass 3 — fill the backward regions ascending: read node `u`'s
        // forward targets from their final position and append `u` to
        // each target's backward region. Backward regions
        // (`offsets[v]..offsets[v] + bwd_deg(v)`) exactly abut the
        // forward regions (`deg = bwd + fwd`), so writes never touch
        // unread forward data, and ascending `u` lands every backward
        // list pre-sorted. No per-node sort pass is needed.
        let mut cursor = vec![0u32; n];
        for u in 0..n {
            let fstart = offsets[u + 1] - fwd[u] as usize;
            for j in fstart..offsets[u + 1] {
                let v = neighbors[j] as usize;
                let d = offsets[v] + cursor[v] as usize;
                neighbors[d] = u as NodeId;
                cursor[v] += 1;
            }
        }

        Graph {
            offsets: OffsetArray::from_usize(offsets),
            neighbors,
            edge_count: m,
        }
    }
}

/// Rebuild a [`Graph`] from raw CSR arrays, validating every invariant
/// the builder normally guarantees: monotone offsets covering the whole
/// neighbour array, per-node adjacency sorted strictly ascending (no
/// duplicates), no self-loops, and symmetric edges. This is the trusted
/// entry point for deserialised topologies — a corrupted or hand-forged
/// payload is rejected rather than producing a graph whose BFS
/// tie-breaks silently differ.
pub fn try_from_csr(offsets: Vec<usize>, neighbors: Vec<NodeId>) -> Result<Graph, TopologyError> {
    let invalid = |reason: &'static str| TopologyError::InvalidCsr { reason };
    if offsets.is_empty() {
        return Err(invalid("offsets array is empty"));
    }
    let n = offsets.len() - 1;
    if n > NodeId::MAX as usize {
        return Err(invalid("node count exceeds NodeId capacity"));
    }
    if offsets[0] != 0 {
        return Err(invalid("offsets must start at 0"));
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid("offsets must be monotone non-decreasing"));
    }
    if *offsets.last().expect("non-empty") != neighbors.len() {
        return Err(invalid("final offset must equal the neighbour array length"));
    }
    if neighbors.len() % 2 != 0 {
        return Err(invalid("directed arc count must be even (each edge stored twice)"));
    }
    let graph = Graph {
        offsets: OffsetArray::from_usize(offsets),
        neighbors,
        edge_count: 0,
    };
    for v in 0..n as NodeId {
        let ns = graph.neighbors(v);
        if ns.windows(2).any(|w| w[0] >= w[1]) {
            return Err(invalid("adjacency list not sorted strictly ascending"));
        }
        for &u in ns {
            if u == v {
                return Err(invalid("self-loop in adjacency list"));
            }
            if u as usize >= n {
                return Err(invalid("neighbour id out of range"));
            }
            // Symmetry via binary search in the counterpart list.
            if graph.neighbors(u).binary_search(&v).is_err() {
                return Err(invalid("asymmetric edge (u lists v but v does not list u)"));
            }
        }
    }
    let edge_count = graph.neighbors.len() / 2;
    Ok(Graph { edge_count, ..graph })
}

/// Build a graph directly from an edge list over `node_count` nodes.
pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::new(node_count);
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn dedupes_and_drops_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // duplicate, reversed
        b.add_edge(0, 1); // duplicate, same direction
        b.add_edge(2, 2); // self-loop
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(2), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn adjacency_is_sorted() {
        let mut b = GraphBuilder::new(6);
        for v in [5, 3, 1, 4, 2] {
            b.add_edge(0, v);
        }
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
        assert_eq!(es.len(), g.edge_count());
    }

    #[test]
    fn average_degree_cycle() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ensure_nodes_and_add_node() {
        let mut b = GraphBuilder::new(2);
        b.ensure_nodes(4);
        let v = b.add_node();
        assert_eq!(v, 4);
        b.add_edge(0, v);
        let g = b.build();
        assert_eq!(g.node_count(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn csr_round_trip() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (4, 5)]);
        let rebuilt =
            try_from_csr(g.csr_offsets().to_usize_vec(), g.csr_neighbors().to_vec()).unwrap();
        assert_eq!(g, rebuilt);
        assert_eq!(rebuilt.edge_count(), 6);
        // Empty graph round-trips too.
        let empty = GraphBuilder::new(0).build();
        let rebuilt = try_from_csr(
            empty.csr_offsets().to_usize_vec(),
            empty.csr_neighbors().to_vec(),
        )
        .unwrap();
        assert_eq!(empty, rebuilt);
    }

    #[test]
    fn offsets_are_narrow_below_the_boundary() {
        // Every study-scale graph stores u32 offsets; the view widens.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        match g.csr_offsets() {
            OffsetsView::Narrow(o) => assert_eq!(o, &[0, 1, 3, 5, 6]),
            OffsetsView::Wide(_) => panic!("small graph must store narrow offsets"),
        }
        assert_eq!(g.csr_offsets().to_usize_vec(), vec![0, 1, 3, 5, 6]);
        assert_eq!(g.csr_offsets().len(), 5);
        assert_eq!(g.csr_offsets().at(2), 3);
    }

    #[test]
    fn offset_array_narrows_exactly_at_the_u32_boundary() {
        // `from_usize` keys off the final (largest) offset; values at the
        // boundary stay narrow, one past it falls back to wide. (A real
        // graph that wide needs > 17 GiB of adjacency, so the boundary is
        // exercised here on bare arrays rather than a built graph.)
        let at = OffsetArray::from_usize(vec![0, u32::MAX as usize]);
        assert!(matches!(at, OffsetArray::Narrow(_)));
        assert_eq!(at.view().at(1), u32::MAX as usize);
        let past = OffsetArray::from_usize(vec![0, u32::MAX as usize + 1]);
        assert!(matches!(past, OffsetArray::Wide(_)));
        assert_eq!(past.view().at(1), u32::MAX as usize + 1);
        assert_eq!(past.view().to_usize_vec(), vec![0, u32::MAX as usize + 1]);
    }

    #[test]
    fn builder_matches_reference_construction() {
        // The in-place counting-sort build must agree with a naïve
        // sort-per-node reference on an adversarial mix: duplicate edges,
        // reversed duplicates, self-loops, isolated nodes, and hubs seen
        // from both the `min` and `max` side of their edges.
        let n = 60;
        let mut edges = Vec::new();
        let mut x = 0x9e37_79b9u64;
        for _ in 0..600 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let u = ((x >> 16) % n as u64) as NodeId;
            let v = ((x >> 40) % n as u64) as NodeId;
            edges.push((u, v));
            if x & 7 == 0 {
                edges.push((v, u)); // reversed duplicate
            }
        }
        let g = from_edges(n, &edges);
        // Reference adjacency.
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &edges {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            if a != b && seen.insert((a, b)) {
                adj[a as usize].push(b);
                adj[b as usize].push(a);
            }
        }
        for l in &mut adj {
            l.sort_unstable();
        }
        assert_eq!(g.edge_count(), seen.len());
        for v in 0..n {
            assert_eq!(g.neighbors(v as NodeId), &adj[v][..], "node {v}");
        }
    }

    #[test]
    fn csr_validation_rejects_forged_arrays() {
        let reason = |r: Result<Graph, TopologyError>| match r.unwrap_err() {
            TopologyError::InvalidCsr { reason } => reason,
            other => panic!("wrong error {other:?}"),
        };
        // Empty offsets.
        assert!(reason(try_from_csr(vec![], vec![])).contains("empty"));
        // Offsets not starting at zero.
        assert!(reason(try_from_csr(vec![1, 1], vec![])).contains("start at 0"));
        // Non-monotone offsets.
        assert!(reason(try_from_csr(vec![0, 2, 1, 2], vec![1, 0])).contains("monotone"));
        // Final offset disagrees with the arc array.
        assert!(reason(try_from_csr(vec![0, 1], vec![])).contains("final offset"));
        // Odd arc count.
        let r = try_from_csr(vec![0, 1, 1], vec![1]);
        assert!(reason(r).contains("even"));
        // Unsorted adjacency.
        let r = try_from_csr(vec![0, 2, 3, 4], vec![2, 1, 0, 0]);
        assert!(reason(r).contains("sorted"));
        // Self-loop.
        let r = try_from_csr(vec![0, 1, 2], vec![0, 0]);
        assert!(reason(r).contains("self-loop"));
        // Neighbour out of range.
        let r = try_from_csr(vec![0, 1, 2], vec![5, 0]);
        assert!(reason(r).contains("out of range"));
        // Asymmetric edge: 0 lists 1 but 1 lists 2 instead.
        let r = try_from_csr(vec![0, 1, 2, 3], vec![1, 2, 1]);
        // (that one has odd arcs; use a clean asymmetric 4-arc case)
        assert!(r.is_err());
        let r = try_from_csr(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 2]);
        assert!(r.is_ok(), "two disjoint edges are fine");
        let r = try_from_csr(vec![0, 1, 2, 3, 4], vec![1, 0, 3, 1]);
        assert!(reason(r).contains("asymmetric"));
    }

    #[test]
    fn debug_format_is_compact() {
        let g = from_edges(2, &[(0, 1)]);
        let s = format!("{g:?}");
        assert!(s.contains("nodes: 2"));
        assert!(s.contains("edges: 1"));
    }
}
