//! Topology summary metrics: degree statistics, average unicast path length
//! (the paper's `ū`), diameter, and eccentricity sweeps.
//!
//! Average path length is the normaliser of nearly every figure in the
//! paper, so both an exact all-pairs computation (fine up to a few thousand
//! nodes) and a sampled estimator (for the 56k-node Internet stand-in) are
//! provided.

use crate::batch::{max_lanes, BatchBfs};
use crate::bfs::Bfs;
use crate::graph::{Graph, NodeId};

/// Degree distribution summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree, `2E/N`.
    pub mean: f64,
}

/// Compute [`DegreeStats`]. Returns `None` on the empty graph.
pub fn degree_stats(graph: &Graph) -> Option<DegreeStats> {
    if graph.node_count() == 0 {
        return None;
    }
    let mut min = usize::MAX;
    let mut max = 0usize;
    for v in graph.nodes() {
        let d = graph.degree(v);
        min = min.min(d);
        max = max.max(d);
    }
    Some(DegreeStats {
        min,
        max,
        mean: graph.average_degree(),
    })
}

/// Shared core of the path-length statistics: batched BFS sweeps from
/// `sources`, summing distances to every *other* reachable node as exact
/// integers. `Σ r·S(r)` and `T(ecc) − 1` per lane are exactly the totals
/// the old per-node scalar loop accumulated, so results are bit-identical.
fn path_stats_over(graph: &Graph, sources: &[NodeId]) -> (f64, u32) {
    let mut total = 0u128;
    let mut pairs = 0u128;
    let mut max_seen = 0u32;
    if !sources.is_empty() {
        let mut batch = BatchBfs::new(graph);
        for chunk in sources.chunks(max_lanes()) {
            batch.run_profiles(chunk);
            for lane in 0..batch.lanes() {
                total += u128::from(batch.total_distance(lane));
                pairs += u128::from(batch.reached(lane) - 1);
                max_seen = max_seen.max(batch.eccentricity(lane) as u32);
            }
        }
    }
    if pairs == 0 {
        (0.0, 0)
    } else {
        (total as f64 / pairs as f64, max_seen)
    }
}

/// Exact average hop distance over all ordered reachable pairs `(u, v)`,
/// `u != v`, and the exact diameter, via one bit-parallel BFS sweep per
/// [`max_lanes`] nodes.
///
/// Returns `(avg_path_length, diameter)`. For graphs with fewer than two
/// nodes (or no reachable pairs) both are zero.
pub fn exact_path_stats(graph: &Graph) -> (f64, u32) {
    let all: Vec<NodeId> = graph.nodes().collect();
    path_stats_over(graph, &all)
}

/// Sampled estimate of the average hop distance: BFS from each of the given
/// `sources`, averaging distances to all *other* reachable nodes. Also
/// returns the largest distance seen (a lower bound on the diameter).
///
/// With sources drawn uniformly this is an unbiased estimator of `ū` on a
/// connected graph.
pub fn sampled_path_stats(graph: &Graph, sources: &[NodeId]) -> (f64, u32) {
    path_stats_over(graph, sources)
}

/// Histogram of node degrees: `hist[d]` = number of nodes with degree
/// `d`. Empty for the empty graph.
pub fn degree_histogram(graph: &Graph) -> Vec<u64> {
    let mut hist = Vec::new();
    for v in graph.nodes() {
        let d = graph.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Degree assortativity (Pearson correlation of degrees across edges).
/// `NaN` when degenerate (no edges or zero variance). Real router maps
/// are disassortative (hubs attach to leaves), another property the
/// power-law stand-ins should reproduce.
pub fn degree_assortativity(graph: &Graph) -> f64 {
    let mut n = 0.0f64;
    let (mut sx, mut sy, mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for (u, v) in graph.edges() {
        // Count each edge in both orientations so the measure is
        // symmetric.
        for (a, b) in [(u, v), (v, u)] {
            let x = graph.degree(a) as f64;
            let y = graph.degree(b) as f64;
            n += 1.0;
            sx += x;
            sy += y;
            sxy += x * y;
            sxx += x * x;
            syy += y * y;
        }
    }
    if n == 0.0 {
        return f64::NAN;
    }
    let cov = sxy / n - (sx / n) * (sy / n);
    let vx = sxx / n - (sx / n).powi(2);
    let vy = syy / n - (sy / n).powi(2);
    if vx <= 0.0 || vy <= 0.0 {
        return f64::NAN;
    }
    cov / (vx * vy).sqrt()
}

/// Average hop distance from a single `source` to every other node it can
/// reach (the per-source `ū` used when the paper normalises a sample by
/// "the average unicast path length for this sample of receiver locations"
/// is computed in `mcast-tree`; this is the all-destinations version).
pub fn mean_distance_from(graph: &Graph, source: NodeId) -> f64 {
    let mut bfs = Bfs::new(graph);
    bfs.run_scratch(source);
    let reached = bfs.scratch_order().len();
    if reached <= 1 {
        return 0.0;
    }
    let total: u64 = bfs
        .scratch_order()
        .iter()
        .map(|&v| u64::from(bfs.scratch_distances()[v as usize]))
        .sum();
    total as f64 / (reached - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{from_edges, GraphBuilder};

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        from_edges(n, &edges)
    }

    #[test]
    fn degree_stats_star() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        assert!(degree_stats(&GraphBuilder::new(0).build()).is_none());
    }

    #[test]
    fn exact_stats_on_path4() {
        // P4 distances: d(0,1)=1 d(0,2)=2 d(0,3)=3 d(1,2)=1 d(1,3)=2 d(2,3)=1
        // mean over unordered pairs = 10/6; ordered pairs give the same mean.
        let g = path_graph(4);
        let (avg, diam) = exact_path_stats(&g);
        assert!((avg - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(diam, 3);
    }

    #[test]
    fn exact_stats_complete_graph() {
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                b.add_edge(u, v);
            }
        }
        let (avg, diam) = exact_path_stats(&b.build());
        assert!((avg - 1.0).abs() < 1e-12);
        assert_eq!(diam, 1);
    }

    #[test]
    fn exact_stats_trivial_graphs() {
        assert_eq!(exact_path_stats(&GraphBuilder::new(0).build()), (0.0, 0));
        assert_eq!(exact_path_stats(&GraphBuilder::new(1).build()), (0.0, 0));
        // Disconnected pairs are simply skipped.
        let g = from_edges(4, &[(0, 1), (2, 3)]);
        let (avg, diam) = exact_path_stats(&g);
        assert!((avg - 1.0).abs() < 1e-12);
        assert_eq!(diam, 1);
    }

    #[test]
    fn sampled_matches_exact_when_all_sources_used() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let all: Vec<NodeId> = g.nodes().collect();
        let (exact, diam) = exact_path_stats(&g);
        let (sampled, max_seen) = sampled_path_stats(&g, &all);
        assert!((exact - sampled).abs() < 1e-12);
        assert_eq!(diam, max_seen);
    }

    #[test]
    fn batched_stats_bit_identical_to_scalar_loop() {
        // Replicate the pre-batching scalar accumulation and demand exact
        // f64 equality, including on a graph wide enough for two chunks.
        let mut b = GraphBuilder::new(100);
        for i in 0..99u32 {
            b.add_edge(i, i + 1);
            b.add_edge(i, (i * 7 + 3) % 100);
        }
        let g = b.build();
        let mut bfs = Bfs::new(&g);
        let (mut total, mut pairs, mut diam) = (0u128, 0u128, 0u32);
        for v in g.nodes() {
            bfs.run_scratch(v);
            for &u in bfs.scratch_order() {
                let d = bfs.scratch_distances()[u as usize];
                if d > 0 {
                    total += u128::from(d);
                    pairs += 1;
                    diam = diam.max(d);
                }
            }
        }
        let expect = (total as f64 / pairs as f64, diam);
        let got = exact_path_stats(&g);
        assert_eq!(got.0.to_bits(), expect.0.to_bits());
        assert_eq!(got.1, expect.1);
    }

    #[test]
    fn mean_distance_from_endpoint_of_path() {
        let g = path_graph(4);
        // From node 0: distances 1,2,3 to the other three nodes.
        assert!((mean_distance_from(&g, 0) - 2.0).abs() < 1e-12);
        // From node 1: distances 1,1,2.
        assert!((mean_distance_from(&g, 1) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_isolated_source() {
        let g = from_edges(3, &[(0, 1)]);
        assert_eq!(mean_distance_from(&g, 2), 0.0);
    }

    #[test]
    fn degree_histogram_star_and_empty() {
        let g = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(degree_histogram(&g), vec![0, 4, 0, 0, 1]);
        assert!(degree_histogram(&GraphBuilder::new(0).build()).is_empty());
        let isolated = GraphBuilder::new(3).build();
        assert_eq!(degree_histogram(&isolated), vec![3]);
    }

    #[test]
    fn assortativity_signs() {
        // A star is maximally disassortative.
        let star = from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let a = degree_assortativity(&star);
        // Degenerate: every edge joins degree-4 to degree-1, zero variance
        // per side? No — variance exists across orientations: value -1.
        assert!((a + 1.0).abs() < 1e-9, "star assortativity {a}");
        // A cycle is degree-regular: correlation undefined.
        let cycle = from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(degree_assortativity(&cycle).is_nan());
        // Two stars joined hub-to-hub are *more* assortative than a star.
        let double = from_edges(8, &[(0, 1), (0, 2), (0, 3), (4, 5), (4, 6), (4, 7), (0, 4)]);
        assert!(degree_assortativity(&double) > a);
        assert!(degree_assortativity(&GraphBuilder::new(2).build()).is_nan());
    }
}
