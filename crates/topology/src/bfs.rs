//! Breadth-first shortest paths and shortest-path trees.
//!
//! Everything in the paper is hop-count based, so BFS is the single
//! shortest-path engine of the workspace. [`Bfs`] owns reusable scratch
//! buffers so repeated traversals (hundreds of thousands per experiment)
//! allocate nothing after the first run.

use crate::graph::{Graph, NodeId};

/// Sentinel distance for unreached nodes.
pub const UNREACHED: u32 = u32::MAX;

/// A completed single-source shortest-path tree.
///
/// `parent[source] == source`; unreachable nodes have `parent == UNREACHED`
/// (as a `NodeId`) and `dist == UNREACHED`.
#[derive(Clone, Debug)]
pub struct SpTree {
    source: NodeId,
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    /// Nodes in BFS discovery order (source first); only reached nodes.
    order: Vec<NodeId>,
}

impl SpTree {
    /// The source this tree is rooted at.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance from the source, or `None` if unreachable.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        match self.dist[v as usize] {
            UNREACHED => None,
            d => Some(d),
        }
    }

    /// Raw distance slice (`UNREACHED` marks unreachable nodes).
    #[inline]
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    /// BFS parent of `v` (deterministic: the lowest-id node at distance
    /// `d-1` adjacent to `v`, because adjacency lists are sorted and the
    /// queue is FIFO). `None` for the source itself and unreachable nodes.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        if v == self.source {
            return None;
        }
        match self.parent[v as usize] {
            UNREACHED => None,
            p => Some(p),
        }
    }

    /// Nodes in discovery order (source first). Excludes unreachable nodes.
    #[inline]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of nodes reached (including the source).
    #[inline]
    pub fn reached_count(&self) -> usize {
        self.order.len()
    }

    /// Whether every node of the graph was reached.
    #[inline]
    pub fn all_reached(&self) -> bool {
        self.order.len() == self.dist.len()
    }

    /// Maximum finite distance (the source's eccentricity within its
    /// component). Zero for a single-node component.
    pub fn eccentricity(&self) -> u32 {
        self.order
            .iter()
            .map(|&v| self.dist[v as usize])
            .max()
            .unwrap_or(0)
    }

    /// Sum of finite distances from the source to every reached node —
    /// the numerator of the average unicast path length.
    pub fn total_distance(&self) -> u64 {
        self.order
            .iter()
            .map(|&v| u64::from(self.dist[v as usize]))
            .sum()
    }

    /// The unicast path from the source to `v` (inclusive of both ends),
    /// following BFS parents. `None` if `v` is unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.distance(v)?;
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[cur as usize];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Reusable BFS engine over one graph.
pub struct Bfs<'g> {
    graph: &'g Graph,
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    queue: Vec<NodeId>,
}

impl<'g> Bfs<'g> {
    /// New engine for `graph`.
    pub fn new(graph: &'g Graph) -> Self {
        let n = graph.node_count();
        Self {
            graph,
            dist: vec![UNREACHED; n],
            parent: vec![UNREACHED; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// The graph this engine traverses.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Run BFS from `source`, producing an owned [`SpTree`].
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run(&mut self, source: NodeId) -> SpTree {
        self.run_scratch(source);
        SpTree {
            source,
            dist: self.dist.clone(),
            parent: self.parent.clone(),
            order: self.queue.clone(),
        }
    }

    /// Run BFS from `source` into the internal scratch buffers, avoiding
    /// the copy that [`run`](Self::run) makes. Accessors below read the
    /// scratch state until the next call.
    ///
    /// When observability is enabled, each run bumps the `bfs.runs` and
    /// `bfs.nodes_visited` counters (batched: two atomic adds per
    /// traversal, nothing per node).
    pub fn run_scratch(&mut self, source: NodeId) {
        traverse(
            self.graph,
            source,
            &mut self.dist,
            &mut self.parent,
            &mut self.queue,
        );
    }

    /// Run BFS from `source` directly into caller-owned `dist`/`parent`
    /// buffers, so a long-lived consumer (e.g. a delivery-tree sizer)
    /// can be refilled in place without any allocation: the buffers are
    /// resized once to the node count (a no-op when, as in the steady
    /// state, they already match) and overwritten. Only the engine's
    /// internal queue is used for the frontier; the scratch
    /// `dist`/`parent` from a previous [`run_scratch`](Self::run_scratch)
    /// are left untouched.
    ///
    /// Counter behaviour matches `run_scratch` (`bfs.runs`,
    /// `bfs.nodes_visited`).
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn run_into(&mut self, source: NodeId, dist: &mut Vec<u32>, parent: &mut Vec<NodeId>) {
        let n = self.graph.node_count();
        dist.resize(n, UNREACHED);
        parent.resize(n, UNREACHED);
        traverse(self.graph, source, dist, parent, &mut self.queue);
    }

    /// Scratch distances from the last [`run_scratch`](Self::run_scratch).
    #[inline]
    pub fn scratch_distances(&self) -> &[u32] {
        &self.dist
    }

    /// Scratch parents from the last [`run_scratch`](Self::run_scratch).
    #[inline]
    pub fn scratch_parents(&self) -> &[NodeId] {
        &self.parent
    }

    /// Scratch discovery order from the last [`run_scratch`](Self::run_scratch).
    #[inline]
    pub fn scratch_order(&self) -> &[NodeId] {
        &self.queue
    }
}

/// The single BFS core shared by [`Bfs::run_scratch`] and
/// [`Bfs::run_into`]: fills `dist`/`parent` (which must already be
/// node-count sized) and leaves the discovery order in `queue`.
fn traverse(
    graph: &Graph,
    source: NodeId,
    dist: &mut [u32],
    parent: &mut [NodeId],
    queue: &mut Vec<NodeId>,
) {
    assert!(
        (source as usize) < graph.node_count(),
        "source {source} out of range"
    );
    dist.fill(UNREACHED);
    parent.fill(UNREACHED);
    queue.clear();

    dist[source as usize] = 0;
    parent[source as usize] = source;
    queue.push(source);
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u as usize];
        for &w in graph.neighbors(u) {
            if dist[w as usize] == UNREACHED {
                dist[w as usize] = du + 1;
                parent[w as usize] = u;
                queue.push(w);
            }
        }
    }
    if mcast_obs::enabled() {
        mcast_obs::counter("bfs.runs").add(1);
        mcast_obs::counter("bfs.nodes_visited").add(queue.len() as u64);
    }
}

/// Derive a shortest-path parent array from a finished distance array
/// using a rule that depends only on the distances, not on any traversal
/// schedule: `parent[v]` is the **lowest-id** neighbour of `v` at
/// distance `dist[v] − 1`.
///
/// Scalar [`Bfs`] parents follow the FIFO discovery order instead, which
/// a bit-parallel sweep does not reproduce — this rule is the common
/// ground: feed it distances from [`Bfs::scratch_distances`] or from
/// [`crate::batch::BatchBfs::distances`] and the resulting tree is
/// bit-identical either way. The multi-session churn engine builds its
/// shared per-source skeletons through it so batched and scalar tree
/// construction can never disagree.
///
/// `out` is resized to the node count; unreachable nodes get
/// [`UNREACHED`], the source points at itself.
///
/// # Panics
/// Panics if `dist` is not node-count sized or `dist[source] != 0`.
pub fn min_index_parents(graph: &Graph, dist: &[u32], source: NodeId, out: &mut Vec<NodeId>) {
    let n = graph.node_count();
    assert_eq!(dist.len(), n, "distance array must be node-count sized");
    assert_eq!(dist[source as usize], 0, "source {source} must be at distance 0");
    out.clear();
    out.resize(n, UNREACHED);
    out[source as usize] = source;
    for v in 0..n as NodeId {
        let dv = dist[v as usize];
        if v == source || dv == UNREACHED {
            continue;
        }
        // Adjacency lists are sorted, so the first match is the minimum.
        for &u in graph.neighbors(v) {
            if dist[u as usize] == dv - 1 {
                out[v as usize] = u;
                break;
            }
        }
        debug_assert_ne!(out[v as usize], UNREACHED, "no parent for reached node {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1)).collect();
        from_edges(n, &edges)
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let t = Bfs::new(&g).run(0);
        for v in 0..5 {
            assert_eq!(t.distance(v), Some(v));
        }
        assert_eq!(t.eccentricity(), 4);
        assert_eq!(t.total_distance(), 10); // 0+1+2+3+4
    }

    #[test]
    fn parent_chain_on_path() {
        let g = path_graph(4);
        let t = Bfs::new(&g).run(0);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(3), Some(2));
        assert_eq!(t.path_to(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn unreachable_nodes() {
        let g = from_edges(4, &[(0, 1)]); // 2, 3 isolated
        let t = Bfs::new(&g).run(0);
        assert_eq!(t.distance(2), None);
        assert_eq!(t.parent(2), None);
        assert_eq!(t.path_to(3), None);
        assert_eq!(t.reached_count(), 2);
        assert!(!t.all_reached());
    }

    #[test]
    fn tie_break_prefers_lowest_id_parent() {
        // Both 1 and 2 are at distance 1; node 3 is adjacent to both.
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let t = Bfs::new(&g).run(0);
        assert_eq!(t.distance(3), Some(2));
        assert_eq!(t.parent(3), Some(1)); // 1 dequeued before 2
    }

    #[test]
    fn discovery_order_is_source_first_and_monotone_in_distance() {
        let g = from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5)]);
        let t = Bfs::new(&g).run(0);
        assert_eq!(t.order()[0], 0);
        let ds: Vec<u32> = t.order().iter().map(|&v| t.distance(v).unwrap()).collect();
        assert!(ds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn scratch_reuse_matches_owned_run() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut bfs = Bfs::new(&g);
        let owned = bfs.run(2);
        bfs.run_scratch(2);
        assert_eq!(bfs.scratch_distances(), owned.distances());
        // Re-running from another source fully resets state.
        bfs.run_scratch(0);
        assert_eq!(bfs.scratch_distances()[2], 2);
    }

    #[test]
    fn run_into_matches_scratch_and_reuses_capacity() {
        let g = from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5)]);
        let mut bfs = Bfs::new(&g);
        let mut dist = Vec::new();
        let mut parent = Vec::new();
        bfs.run_into(1, &mut dist, &mut parent);
        bfs.run_scratch(1);
        assert_eq!(dist, bfs.scratch_distances());
        assert_eq!(parent, bfs.scratch_parents());

        // Refilling from another source reuses the same allocations and
        // fully overwrites stale state.
        let dist_ptr = dist.as_ptr();
        let parent_ptr = parent.as_ptr();
        bfs.run_into(4, &mut dist, &mut parent);
        assert_eq!(dist_ptr, dist.as_ptr());
        assert_eq!(parent_ptr, parent.as_ptr());
        bfs.run_scratch(4);
        assert_eq!(dist, bfs.scratch_distances());
        assert_eq!(parent, bfs.scratch_parents());
    }

    #[test]
    fn run_into_resizes_wrongly_sized_buffers() {
        let g = path_graph(4);
        let mut bfs = Bfs::new(&g);
        // Too small and too large both end up exactly node-count sized.
        let mut dist = vec![7u32; 2];
        let mut parent = vec![9 as NodeId; 11];
        bfs.run_into(0, &mut dist, &mut parent);
        assert_eq!(dist.len(), 4);
        assert_eq!(parent.len(), 4);
        assert_eq!(dist, vec![0, 1, 2, 3]);
        assert_eq!(parent, vec![0, 0, 1, 2]);
    }

    #[test]
    fn run_into_leaves_scratch_state_alone() {
        let g = path_graph(5);
        let mut bfs = Bfs::new(&g);
        bfs.run_scratch(0);
        let before = bfs.scratch_distances().to_vec();
        let mut dist = Vec::new();
        let mut parent = Vec::new();
        bfs.run_into(4, &mut dist, &mut parent);
        assert_eq!(bfs.scratch_distances(), &before[..]);
        assert_eq!(dist[0], 4); // the run_into result is from source 4
    }

    #[test]
    fn source_is_its_own_root() {
        let g = path_graph(3);
        let t = Bfs::new(&g).run(1);
        assert_eq!(t.source(), 1);
        assert_eq!(t.distance(1), Some(0));
        assert_eq!(t.parent(1), None);
        assert_eq!(t.path_to(1), Some(vec![1]));
    }

    #[test]
    fn cycle_distances_wrap_both_ways() {
        let edges: Vec<_> = (0..6)
            .map(|i| (i as NodeId, ((i + 1) % 6) as NodeId))
            .collect();
        let g = from_edges(6, &edges);
        let t = Bfs::new(&g).run(0);
        assert_eq!(t.distance(3), Some(3));
        assert_eq!(t.distance(5), Some(1));
        assert_eq!(t.eccentricity(), 3);
    }
}
