//! Property tests for the serve wire protocol: requests and responses
//! must round-trip through the incremental parser regardless of how TCP
//! fragments the byte stream.
//!
//! Written against the portable subset of the proptest API (integer
//! ranges and `any::<u64>()`); payloads and split points are derived
//! from sampled seeds with an inline splitmix64, so the same file runs
//! under real proptest in CI and under the offline harness's stub.

use mcast_serve::protocol::{
    chunk, chunked_head, encode_request, error_body, parse_response, unary_response,
    ProtocolError, Request, RequestParser, CHUNK_END, DEFAULT_MAX_BODY_BYTES,
};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Feed `raw` to a fresh parser in fragments whose lengths are derived
/// from `seed` (1..=max_step bytes each — TCP may hand the server any
/// segmentation whatsoever). Returns the parsed request.
fn feed_in_random_pieces(
    raw: &[u8],
    seed: u64,
    max_step: usize,
) -> Result<Option<Request>, ProtocolError> {
    let mut parser = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
    let mut state = seed ^ 0xda3e_39cb_94b9_5bdb;
    let mut at = 0;
    while at < raw.len() {
        let step = 1 + (splitmix(&mut state) as usize) % max_step;
        let end = (at + step).min(raw.len());
        match parser.feed(&raw[at..end])? {
            Some(request) => {
                assert_eq!(end, raw.len(), "request framed before all bytes arrived");
                return Ok(Some(request));
            }
            None => at = end,
        }
    }
    Ok(None)
}

/// Random printable token without separators (for paths/values).
fn token(state: &mut u64, len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-_.";
    (0..len)
        .map(|_| ALPHABET[(splitmix(state) as usize) % ALPHABET.len()] as char)
        .collect()
}

/// Random body bytes (full 0..=255 range: MCTB uploads are binary).
fn body_bytes(state: &mut u64, len: usize) -> Vec<u8> {
    (0..len).map(|_| splitmix(state) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // A well-formed request survives every TCP segmentation: method,
    // path, query parameters, headers and the (binary) body all arrive
    // intact whether the bytes come one at a time or in one burst.
    #[test]
    fn requests_round_trip_across_arbitrary_split_points(
        body_len in 0usize..600,
        max_step in 1usize..80,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let method = if splitmix(&mut state) % 2 == 0 { "POST" } else { "GET" };
        let path_len = 1 + (splitmix(&mut state) as usize) % 12;
        let path = format!("/v1/{}", token(&mut state, path_len));
        let qk_len = 1 + (splitmix(&mut state) as usize) % 6;
        let qk = token(&mut state, qk_len);
        let qv_len = (splitmix(&mut state) as usize) % 8;
        let qv = token(&mut state, qv_len);
        let target = format!("{path}?{qk}={qv}");
        let client_len = 1 + (splitmix(&mut state) as usize) % 10;
        let client = token(&mut state, client_len);
        let body = body_bytes(&mut state, body_len);
        let raw = encode_request(
            method,
            &target,
            &[("X-Client-Id", client.as_str()), ("Accept", "application/json")],
            &body,
        );

        let request = feed_in_random_pieces(&raw, seed, max_step)
            .expect("no framing error on a well-formed request")
            .expect("complete request must frame");
        prop_assert_eq!(&request.method, method);
        prop_assert_eq!(&request.path, &path);
        prop_assert_eq!(request.query_param(&qk), Some(qv.as_str()));
        prop_assert_eq!(request.header("x-client-id"), Some(client.as_str()));
        prop_assert_eq!(request.header("accept"), Some("application/json"));
        prop_assert_eq!(&request.body, &body);

        // Segmentation invariance: one-shot parse sees the same request.
        let mut oneshot = RequestParser::new(DEFAULT_MAX_BODY_BYTES);
        prop_assert_eq!(oneshot.feed(&raw).unwrap().expect("frames"), request);
    }

    // A sized (unary) response round-trips through the client-side
    // decoder: status, headers and body bytes are recovered exactly.
    #[test]
    fn unary_responses_round_trip(
        body_len in 0usize..400,
        status_pick in 0usize..6,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let status = [200u16, 400, 404, 429, 500, 503][status_pick];
        let body = body_bytes(&mut state, body_len);
        let raw = unary_response(status, "application/json", &body, &[("X-Cache", "miss")]);
        let parsed = parse_response(&raw).expect("well-formed response");
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.header("x-cache"), Some("miss"));
        prop_assert_eq!(parsed.header("content-type"), Some("application/json"));
        prop_assert_eq!(&parsed.body, &body);
        prop_assert!(parsed.chunks.is_none());
    }

    // A chunked JSONL stream reassembles exactly, however the writer
    // fragmented it: concatenated chunks equal the logical stream and
    // `jsonl_lines` recovers every event line — even when a single line
    // straddles several chunks.
    #[test]
    fn chunked_streams_reassemble_across_chunk_boundaries(
        line_count in 1usize..20,
        max_step in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let lines: Vec<String> = (0..line_count)
            .map(|i| {
                let tag_len = (splitmix(&mut state) as usize) % 12;
                format!(
                    "{{\"ev\":\"serve.progress\",\"n\":{i},\"tag\":\"{}\"}}",
                    token(&mut state, tag_len)
                )
            })
            .collect();
        let stream: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
            .collect();

        // Writer-side fragmentation: cut the logical stream into chunks
        // at seed-derived positions (chunk boundaries need not align
        // with line boundaries).
        let mut raw = chunked_head(200, "application/jsonl");
        let mut at = 0;
        while at < stream.len() {
            let step = 1 + (splitmix(&mut state) as usize) % max_step;
            let end = (at + step).min(stream.len());
            raw.extend_from_slice(&chunk(&stream[at..end]));
            at = end;
        }
        raw.extend_from_slice(CHUNK_END);

        let parsed = parse_response(&raw).expect("well-formed chunked response");
        prop_assert_eq!(parsed.status, 200);
        prop_assert_eq!(&parsed.body, &stream);
        let got = parsed.jsonl_lines();
        prop_assert_eq!(got.len(), lines.len());
        for (g, w) in got.iter().zip(&lines) {
            prop_assert_eq!(*g, w.as_str());
        }
        let chunks = parsed.chunks.expect("chunked body records its chunks");
        let rejoined: Vec<u8> = chunks.concat();
        prop_assert_eq!(&rejoined, &stream);
    }

    // The structured error payload parses as JSON for any message —
    // quotes, backslashes, newlines and control characters included —
    // and faithfully carries status and code.
    #[test]
    fn error_payloads_are_always_valid_json(
        status_pick in 0usize..5,
        msg_len in 0usize..60,
        seed in any::<u64>(),
    ) {
        let mut state = seed;
        let status = [400u16, 404, 429, 500, 503][status_pick];
        // Adversarial message: full printable range plus the JSON
        // specials and a few control characters.
        const NASTY: &[char] =
            &['"', '\\', '\n', '\r', '\t', '{', '}', 'a', 'Z', ' ', '/', '\u{1}'];
        let message: String = (0..msg_len)
            .map(|_| NASTY[(splitmix(&mut state) as usize) % NASTY.len()])
            .collect();
        let body = error_body(
            status,
            "quota_exhausted",
            &message,
            &[("retry_after_ms", mcast_obs::json::Value::U64(splitmix(&mut state) % 10_000))],
        );
        let v = mcast_obs::json::parse(&body).expect("error body must parse");
        let err = v.get("error").expect("error object");
        prop_assert_eq!(err.get("status").and_then(|s| s.as_u64()), Some(u64::from(status)));
        prop_assert_eq!(err.get("code").and_then(|c| c.as_str()), Some("quota_exhausted"));
        prop_assert_eq!(err.get("message").and_then(|m| m.as_str()), Some(message.as_str()));
        prop_assert!(err.get("retry_after_ms").and_then(|r| r.as_u64()).is_some());
    }

    // Framing errors are segmentation-independent: a body whose declared
    // Content-Length exceeds the server limit is rejected with 413 at
    // whatever fragment reveals the header, never accepted and never
    // misclassified.
    #[test]
    fn oversized_declarations_reject_at_any_split(
        max_step in 1usize..60,
        seed in any::<u64>(),
    ) {
        let limit = 1024usize;
        let declared = limit + 1 + (seed as usize % 4096);
        let raw = format!(
            "POST /v1/topo HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n"
        );
        let mut parser = RequestParser::new(limit);
        let mut state = seed ^ 0x0123_4567_89ab_cdef;
        let bytes = raw.as_bytes();
        let mut at = 0;
        let mut verdict = None;
        while at < bytes.len() {
            let step = 1 + (splitmix(&mut state) as usize) % max_step;
            let end = (at + step).min(bytes.len());
            match parser.feed(&bytes[at..end]) {
                Ok(Some(_)) => prop_assert!(false, "oversized request must not frame"),
                Ok(None) => at = end,
                Err(e) => {
                    verdict = Some(e);
                    break;
                }
            }
        }
        let err = verdict.expect("parser must reject once the head is complete");
        prop_assert_eq!(err.status(), 413);
        match err {
            ProtocolError::BodyTooLarge { declared: d, limit: l } => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(l, limit);
            }
            other => prop_assert!(false, "expected BodyTooLarge, got {:?}", other),
        }
    }
}
