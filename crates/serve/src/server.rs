//! The daemon: TCP acceptor, bounded worker pool, request logging, and
//! graceful drain.
//!
//! Threading model (std-only, no async runtime):
//!
//! * one *acceptor* thread blocks on `accept` and pushes connections
//!   into the [`BoundedQueue`]; when the queue is full it answers 503
//!   inline and closes — overload is shed at the door, cheaply;
//! * `workers` threads pop connections, frame the request with the
//!   incremental parser, and route it;
//! * graceful shutdown (the `/v1/admin/shutdown` endpoint, or
//!   [`ServerHandle::shutdown`]) stops admission, lets queued and
//!   in-flight requests finish — each finished source group was already
//!   checkpointed by the store layer, so even a hard kill mid-drain
//!   resumes bit-identically — then joins every thread.

use crate::admission::{AdmissionError, BoundedQueue};
use crate::protocol::{error_body, unary_response, ProtocolError, Request, RequestParser};
use crate::quota::{monotonic_ns, QuotaConfig, Quotas};
use crate::registry::{Flights, TopologyRegistry};
use crate::router::{self, Backend, Ctx, ResponseInfo, ShutdownSignal};
use mcast_obs::json::write_str;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything needed to boot a daemon.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue capacity (beyond in-flight work).
    pub queue_cap: usize,
    /// Per-client token-bucket parameters.
    pub quota: QuotaConfig,
    /// Largest accepted request body.
    pub max_body: usize,
    /// Directory persisting uploaded topologies (`None` = memory only).
    pub topo_dir: Option<PathBuf>,
    /// JSONL request log path (`None` = off).
    pub request_log: Option<PathBuf>,
    /// Threads handed to the measurement backend per query.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_cap: 64,
            quota: QuotaConfig::default(),
            max_body: crate::protocol::DEFAULT_MAX_BODY_BYTES,
            topo_dir: None,
            request_log: None,
            threads: 0,
        }
    }
}

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<ShutdownSignal>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request a graceful drain (idempotent; also triggered by the
    /// `/v1/admin/shutdown` endpoint).
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Block until every thread has drained and exited.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

struct RequestLog {
    file: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl RequestLog {
    fn open(path: &PathBuf) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            file: Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    fn record(&self, client: &str, method: &str, path: &str, info: &ResponseInfo, ms: u64) {
        let mut line = String::from("{\"ev\":\"serve.request\",\"t_ms\":");
        line.push_str(&ms.to_string());
        line.push_str(",\"client\":");
        write_str(&mut line, client);
        line.push_str(",\"method\":");
        write_str(&mut line, method);
        line.push_str(",\"path\":");
        write_str(&mut line, path);
        line.push_str(",\"status\":");
        line.push_str(&info.status.to_string());
        line.push_str(",\"bytes_out\":");
        line.push_str(&info.bytes_out.to_string());
        line.push_str(",\"streamed\":");
        line.push_str(if info.streamed { "true" } else { "false" });
        line.push_str("}\n");
        let mut file = self.file.lock().expect("request log mutex poisoned");
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
    }
}

/// Bind, spawn the acceptor + worker pool, and return a handle. The
/// daemon serves until shutdown is triggered; `backend` supplies the
/// measurement engine.
pub fn serve(config: ServeConfig, backend: Arc<dyn Backend>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(ShutdownSignal::new());
    shutdown.set_addr(addr);
    let registry = TopologyRegistry::new(config.topo_dir.clone())?;
    let request_log = match &config.request_log {
        Some(path) => Some(Arc::new(RequestLog::open(path)?)),
        None => None,
    };
    let ctx = Arc::new(Ctx {
        registry,
        flights: Flights::new(256),
        quotas: Quotas::new(config.quota),
        backend,
        shutdown: Arc::clone(&shutdown),
        threads: config.threads,
        started: Instant::now(),
        next_request_id: AtomicU64::new(1),
    });
    let queue: Arc<BoundedQueue<TcpStream>> = Arc::new(BoundedQueue::new(config.queue_cap));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for worker_id in 0..config.workers.max(1) {
        let queue = Arc::clone(&queue);
        let ctx = Arc::clone(&ctx);
        let request_log = request_log.clone();
        let max_body = config.max_body;
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{worker_id}"))
                .spawn(move || {
                    while let Some(stream) = queue.pop() {
                        handle_connection(&ctx, stream, max_body, request_log.as_deref());
                    }
                })?,
        );
    }

    let acceptor = {
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new().name("serve-acceptor".to_string()).spawn(move || {
            for stream in listener.incoming() {
                if shutdown.is_triggered() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                mcast_obs::counter("serve.request.accepted").add(1);
                if let Err((mut stream, why)) = queue.try_push(stream) {
                    // Load-shed at the door: the acceptor never blocks
                    // on request work, it answers 503 inline and moves
                    // on to the next connection.
                    mcast_obs::counter("serve.request.shed").add(1);
                    let (code, message) = match why {
                        AdmissionError::Full => {
                            ("overloaded", "admission queue is full; retry shortly")
                        }
                        AdmissionError::Closed => ("draining", "server is shutting down"),
                    };
                    let body = error_body(503, code, message, &[]);
                    let _ = stream.write_all(&unary_response(
                        503,
                        "application/json",
                        body.as_bytes(),
                        &[("Retry-After", "1")],
                    ));
                    continue;
                }
            }
            // Stop admission; queued connections still drain.
            queue.close();
        })?
    };

    mcast_obs::info!("serve", "listening on {addr}");
    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        workers,
    })
}

fn handle_connection(
    ctx: &Ctx,
    mut stream: TcpStream,
    max_body: usize,
    request_log: Option<&RequestLog>,
) {
    let t0 = monotonic_ns();
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let request = match read_request(&mut stream, max_body) {
        Ok(Some(request)) => request,
        Ok(None) => return, // bare connect/disconnect (shutdown waker)
        Err(err) => {
            mcast_obs::counter("serve.request.error").add(1);
            let body = error_body(err.status(), err.code(), &err.to_string(), &[]);
            let _ = stream.write_all(&unary_response(
                err.status(),
                "application/json",
                body.as_bytes(),
                &[],
            ));
            return;
        }
    };
    let client = router::client_id(&request).to_string();
    let info = match router::handle(ctx, &request, &mut stream) {
        Ok(info) => info,
        Err(_) => return, // client went away mid-response
    };
    let _ = stream.flush();
    if let Some(log) = request_log {
        let ms = monotonic_ns().saturating_sub(t0) / 1_000_000;
        log.record(&client, &request.method, &request.path, &info, ms);
    }
}

fn read_request(
    stream: &mut TcpStream,
    max_body: usize,
) -> Result<Option<Request>, ProtocolError> {
    let mut parser = RequestParser::new(max_body);
    let mut buf = [0u8; 16 * 1024];
    let mut got_any = false;
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                if got_any {
                    return Err(ProtocolError::UnexpectedEof);
                }
                return Ok(None);
            }
            Ok(n) => n,
            Err(_) => {
                return if got_any {
                    Err(ProtocolError::UnexpectedEof)
                } else {
                    Ok(None)
                };
            }
        };
        got_any = true;
        if let Some(request) = parser.feed(&buf[..n])? {
            return Ok(Some(request));
        }
    }
}
