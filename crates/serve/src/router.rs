//! Request routing: the endpoint table, the measurement backend trait,
//! and the per-request error payload mapping.
//!
//! Endpoints (all answers are JSON; streams are JSONL over chunked
//! transfer encoding):
//!
//! | Method | Path                 | Purpose                                  |
//! |--------|----------------------|------------------------------------------|
//! | GET    | `/v1/health`         | liveness + uptime                        |
//! | GET    | `/v1/stats`          | serve/store counters, catalogue, flights |
//! | GET    | `/v1/topo`           | list registered topologies               |
//! | POST   | `/v1/topo`           | upload (`?format=edge-list\|mctb`)       |
//! | POST   | `/v1/measure`        | run / fetch a measurement query          |
//! | POST   | `/v1/admin/shutdown` | graceful drain                           |
//!
//! The measurement engine itself lives above this crate (the scheduler
//! and cache glue are in `mcast-experiments`, which *depends on* this
//! crate), so the router talks to it through the [`Backend`] trait:
//! the server owns protocol, admission, quotas and coalescing; the
//! backend owns keys, cache lookups and scheduler execution.

use crate::protocol::{
    chunk, chunked_head, error_body, unary_response, Request, CHUNK_END,
};
use crate::quota::{QuotaDecision, Quotas};
use crate::registry::{FlightRole, Flights, Outcome, TopologyEntry, TopologyRegistry};
use mcast_obs::json::{self, write_str, Value};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which curve a query asks for (mirrors the `mcs measure` contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Normalised tree cost `N(m)/ū` ("ratio").
    Ratio,
    /// Chuang–Sirbu `L̂(m)` per-link form ("lhat").
    Lhat,
}

impl QueryKind {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Ratio => "ratio",
            QueryKind::Lhat => "lhat",
        }
    }

    /// Parse the wire name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "ratio" => Some(QueryKind::Ratio),
            "lhat" => Some(QueryKind::Lhat),
            _ => None,
        }
    }
}

/// A fully resolved measurement query.
pub struct MeasureSpec {
    /// The registered topology the query runs against.
    pub topology: Arc<TopologyEntry>,
    /// Which curve family.
    pub kind: QueryKind,
    /// Base RNG seed (same meaning as `mcs measure --seed`).
    pub seed: u64,
    /// Sources per group size.
    pub sources: usize,
    /// Receiver sets per source.
    pub receiver_sets: usize,
    /// Explicit group sizes; `None` → the `mcs measure` default grid.
    pub xs: Option<Vec<usize>>,
    /// Worker threads the backend may use (server-wide setting; not
    /// part of the cache key).
    pub threads: usize,
    /// Unique id of this request within the server process — the
    /// backend uses it to give every request its own run-meta sidecar.
    pub request_id: u64,
}

/// Successful measurement: canonical body bytes. The body depends only
/// on the query (never on cache state or timing), so identical queries
/// produce byte-identical bodies regardless of how they were served.
#[derive(Debug)]
pub struct MeasureOutput {
    /// Canonical JSON response body.
    pub body: Vec<u8>,
    /// Whether the MCSO cache already held the curve.
    pub cache_hit: bool,
}

/// One failed dedup group, surfaced from the scheduler's exit-2
/// partial-failure semantics.
#[derive(Debug)]
pub struct GroupFailureInfo {
    /// Index of the group in the measurement's source plan.
    pub group_index: usize,
    /// The distinct source node the failed group measures.
    pub source: usize,
    /// Panic/abort payload text.
    pub message: String,
}

/// A failed (possibly partially completed) measurement.
#[derive(Debug)]
pub struct BackendError {
    /// Human-readable summary.
    pub message: String,
    /// Machine-readable code (`partial_failure`, `invalid_query`, …).
    pub code: &'static str,
    /// HTTP status this maps to (400 for invalid queries, 500 for
    /// execution failures).
    pub status: u16,
    /// Dedup groups that *did* complete (and were checkpointed).
    pub completed: usize,
    /// Per-group failure detail.
    pub groups: Vec<GroupFailureInfo>,
}

/// The measurement engine behind the daemon.
pub trait Backend: Send + Sync {
    /// Stable cache key for a query. Identical queries (same topology
    /// bytes, kind, seed, sources, receiver sets, grid) must map to
    /// identical keys; the key must not depend on `threads` or
    /// `request_id`.
    fn query_key(&self, spec: &MeasureSpec) -> String;

    /// Execute (or fetch) the query. `progress` receives JSONL event
    /// lines to forward to streaming clients; implementations may call
    /// it from the measuring thread.
    fn measure(
        &self,
        spec: &MeasureSpec,
        progress: &mut dyn FnMut(String),
    ) -> Result<MeasureOutput, BackendError>;
}

/// Coordinates graceful shutdown: the flag is observed by the acceptor
/// and worker pool; `trigger` also pokes the listening socket so a
/// blocking `accept` wakes up.
pub struct ShutdownSignal {
    flag: AtomicBool,
    addr: Mutex<Option<std::net::SocketAddr>>,
}

impl ShutdownSignal {
    /// A fresh, un-triggered signal.
    pub fn new() -> Self {
        Self {
            flag: AtomicBool::new(false),
            addr: Mutex::new(None),
        }
    }

    /// Record the bound address (server calls this after `bind`).
    pub fn set_addr(&self, addr: std::net::SocketAddr) {
        *self.addr.lock().expect("shutdown mutex poisoned") = Some(addr);
    }

    /// Has shutdown been requested?
    pub fn is_triggered(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Request shutdown and wake the acceptor.
    pub fn trigger(&self) {
        if self.flag.swap(true, Ordering::AcqRel) {
            return;
        }
        let addr = *self.addr.lock().expect("shutdown mutex poisoned");
        if let Some(addr) = addr {
            // A throwaway connection unblocks `accept`; the acceptor
            // re-checks the flag before handling it.
            let _ = std::net::TcpStream::connect(addr);
        }
    }
}

impl Default for ShutdownSignal {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared state every worker sees.
pub struct Ctx {
    /// Topology catalogue.
    pub registry: TopologyRegistry,
    /// Single-flight table.
    pub flights: Flights,
    /// Per-client quotas.
    pub quotas: Quotas,
    /// The measurement engine.
    pub backend: Arc<dyn Backend>,
    /// Shutdown coordination.
    pub shutdown: Arc<ShutdownSignal>,
    /// Worker threads handed to the backend.
    pub threads: usize,
    /// Process start, for uptime.
    pub started: Instant,
    /// Monotonic request id source.
    pub next_request_id: AtomicU64,
}

/// What the connection handler reports back for logging.
pub struct ResponseInfo {
    /// HTTP status sent.
    pub status: u16,
    /// Total bytes written to the socket.
    pub bytes_out: u64,
    /// Whether the response streamed (chunked).
    pub streamed: bool,
}

fn count_write(out: &mut dyn Write, bytes: &[u8], total: &mut u64) -> std::io::Result<()> {
    out.write_all(bytes)?;
    *total += bytes.len() as u64;
    Ok(())
}

fn send_unary(
    out: &mut dyn Write,
    status: u16,
    body: &[u8],
    extra: &[(&str, &str)],
) -> std::io::Result<ResponseInfo> {
    let mut bytes_out = 0u64;
    let frame = unary_response(status, "application/json", body, extra);
    count_write(out, &frame, &mut bytes_out)?;
    out.flush()?;
    if status < 400 {
        mcast_obs::counter("serve.request.ok").add(1);
    } else {
        mcast_obs::counter("serve.request.error").add(1);
    }
    mcast_obs::counter("serve.bytes_out").add(bytes_out);
    Ok(ResponseInfo {
        status,
        bytes_out,
        streamed: false,
    })
}

fn send_error(
    out: &mut dyn Write,
    status: u16,
    code: &str,
    message: &str,
    extra: &[(&str, Value)],
    headers: &[(&str, &str)],
) -> std::io::Result<ResponseInfo> {
    let body = error_body(status, code, message, extra);
    send_unary(out, status, body.as_bytes(), headers)
}

/// The client id a request runs under.
pub fn client_id(req: &Request) -> &str {
    req.header("x-client-id").filter(|s| !s.is_empty()).unwrap_or("anonymous")
}

/// Route one parsed request and write the full response.
pub fn handle(ctx: &Ctx, req: &Request, out: &mut dyn Write) -> std::io::Result<ResponseInfo> {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/health") => handle_health(ctx, out),
        ("GET", "/v1/stats") => handle_stats(ctx, out),
        ("GET", "/v1/topo") => handle_topo_list(ctx, out),
        ("POST", "/v1/topo") => handle_topo_upload(ctx, req, out),
        ("POST", "/v1/measure") => handle_measure(ctx, req, out),
        ("POST", "/v1/admin/shutdown") => handle_shutdown(ctx, out),
        (_, "/v1/health" | "/v1/stats" | "/v1/topo" | "/v1/measure" | "/v1/admin/shutdown") => {
            send_error(
                out,
                405,
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
                &[],
                &[],
            )
        }
        _ => send_error(
            out,
            404,
            "not_found",
            &format!("no route for {}", req.path),
            &[],
            &[],
        ),
    }
}

fn handle_health(ctx: &Ctx, out: &mut dyn Write) -> std::io::Result<ResponseInfo> {
    let mut body = String::from("{\"ok\":true,\"uptime_ms\":");
    body.push_str(&(ctx.started.elapsed().as_millis() as u64).to_string());
    body.push_str(",\"draining\":");
    body.push_str(if ctx.shutdown.is_triggered() { "true" } else { "false" });
    body.push('}');
    send_unary(out, 200, body.as_bytes(), &[])
}

fn handle_stats(ctx: &Ctx, out: &mut dyn Write) -> std::io::Result<ResponseInfo> {
    let mut counters: Vec<(String, u64)> = mcast_obs::metrics::counters_snapshot()
        .into_iter()
        .filter(|(name, _)| name.starts_with("serve.") || name.starts_with("store.cache."))
        .collect();
    counters.sort();
    let mut body = String::from("{\"counters\":{");
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        write_str(&mut body, name);
        body.push(':');
        body.push_str(&v.to_string());
    }
    body.push_str("},\"queue_depth\":");
    body.push_str(&mcast_obs::gauge("serve.queue_depth").get().to_string());
    body.push_str(",\"inflight\":");
    body.push_str(&ctx.flights.inflight_len().to_string());
    body.push_str(",\"topologies\":");
    body.push_str(&ctx.registry.len().to_string());
    body.push_str(",\"clients\":");
    body.push_str(&ctx.quotas.client_count().to_string());
    body.push('}');
    send_unary(out, 200, body.as_bytes(), &[])
}

fn handle_topo_list(ctx: &Ctx, out: &mut dyn Write) -> std::io::Result<ResponseInfo> {
    let mut body = String::from("{\"topologies\":[");
    for (i, (id, nodes, edges)) in ctx.registry.list().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"id\":");
        write_str(&mut body, id);
        body.push_str(&format!(",\"nodes\":{nodes},\"edges\":{edges}}}"));
    }
    body.push_str("]}");
    send_unary(out, 200, body.as_bytes(), &[])
}

fn check_quota(
    ctx: &Ctx,
    req: &Request,
    out: &mut dyn Write,
) -> std::io::Result<Option<ResponseInfo>> {
    let client = client_id(req);
    match ctx.quotas.admit(client) {
        QuotaDecision::Admit => Ok(None),
        QuotaDecision::Throttle { retry_after_ms } => {
            mcast_obs::counter("serve.request.throttled").add(1);
            let retry_secs = (retry_after_ms / 1000).max(1).to_string();
            send_error(
                out,
                429,
                "quota_exhausted",
                &format!("client `{client}` is out of tokens"),
                &[
                    ("client", Value::Str(client.to_string())),
                    ("retry_after_ms", Value::U64(retry_after_ms)),
                ],
                &[("Retry-After", retry_secs.as_str())],
            )
            .map(Some)
        }
    }
}

fn handle_topo_upload(
    ctx: &Ctx,
    req: &Request,
    out: &mut dyn Write,
) -> std::io::Result<ResponseInfo> {
    if let Some(resp) = check_quota(ctx, req, out)? {
        return Ok(resp);
    }
    let format = req.query_param("format").unwrap_or("edge-list");
    match ctx.registry.register(format, &req.body) {
        Ok((entry, created)) => {
            mcast_obs::counter("serve.topo.upload").add(1);
            let mut body = String::from("{\"id\":");
            write_str(&mut body, &entry.id);
            body.push_str(&format!(
                ",\"nodes\":{},\"edges\":{},\"created\":{created}}}",
                entry.graph.node_count(),
                entry.graph.edge_count()
            ));
            send_unary(out, if created { 201 } else { 200 }, body.as_bytes(), &[])
        }
        Err(err) => send_error(out, 400, "invalid_topology", &err.message, &[], &[]),
    }
}

fn handle_shutdown(ctx: &Ctx, out: &mut dyn Write) -> std::io::Result<ResponseInfo> {
    mcast_obs::info!("serve", "shutdown requested; draining");
    let resp = send_unary(out, 200, b"{\"ok\":true,\"draining\":true}", &[])?;
    ctx.shutdown.trigger();
    Ok(resp)
}

/// Parse the measurement request body into a spec (minus request id).
fn parse_measure_spec(ctx: &Ctx, body: &[u8]) -> Result<(MeasureSpec, bool), (u16, &'static str, String)> {
    let text = std::str::from_utf8(body)
        .map_err(|_| (400u16, "bad_request", "body is not UTF-8".to_string()))?;
    let v = json::parse(text).map_err(|e| (400, "bad_request", format!("body is not JSON: {e}")))?;
    let topo_id = v
        .get("topology")
        .and_then(Value::as_str)
        .ok_or((400, "bad_request", "missing string field `topology`".to_string()))?;
    let topology = ctx.registry.get(topo_id).ok_or((
        404,
        "unknown_topology",
        format!("topology `{topo_id}` is not registered"),
    ))?;
    let kind = match v.get("kind") {
        None => QueryKind::Ratio,
        Some(k) => {
            let name = k
                .as_str()
                .ok_or((400, "bad_request", "`kind` must be a string".to_string()))?;
            QueryKind::parse(name).ok_or((
                400,
                "bad_request",
                format!("unknown kind `{name}` (expected `ratio` or `lhat`)"),
            ))?
        }
    };
    let uint = |field: &str, default: u64| -> Result<u64, (u16, &'static str, String)> {
        match v.get(field) {
            None => Ok(default),
            Some(x) => x
                .as_u64()
                .ok_or((400, "bad_request", format!("`{field}` must be a non-negative integer"))),
        }
    };
    let seed = uint("seed", 1)?;
    let sources = uint("sources", 12)? as usize;
    let receiver_sets = uint("receiver_sets", 12)? as usize;
    if sources == 0 || receiver_sets == 0 {
        return Err((
            400,
            "bad_request",
            "`sources` and `receiver_sets` must be positive".to_string(),
        ));
    }
    let xs = match v.get("xs") {
        None => None,
        Some(arr) => {
            let items = arr
                .as_arr()
                .ok_or((400, "bad_request", "`xs` must be an array".to_string()))?;
            let mut xs = Vec::with_capacity(items.len());
            for item in items {
                let m = item.as_u64().filter(|&m| m >= 1).ok_or((
                    400,
                    "bad_request",
                    "`xs` entries must be integers ≥ 1".to_string(),
                ))? as usize;
                xs.push(m);
            }
            if xs.is_empty() {
                return Err((400, "bad_request", "`xs` must not be empty".to_string()));
            }
            Some(xs)
        }
    };
    let stream = v.get("stream").and_then(Value::as_bool).unwrap_or(false);
    Ok((
        MeasureSpec {
            topology,
            kind,
            seed,
            sources,
            receiver_sets,
            xs,
            threads: ctx.threads,
            request_id: 0,
        },
        stream,
    ))
}

fn backend_error_payload(err: &BackendError) -> String {
    let mut groups = Vec::with_capacity(err.groups.len());
    for g in &err.groups {
        groups.push(Value::Obj(vec![
            ("group_index".to_string(), Value::U64(g.group_index as u64)),
            ("source".to_string(), Value::U64(g.source as u64)),
            ("message".to_string(), Value::Str(g.message.clone())),
        ]));
    }
    error_body(
        err.status,
        err.code,
        &err.message,
        &[
            ("completed", Value::U64(err.completed as u64)),
            ("groups", Value::Arr(groups)),
        ],
    )
}

/// Run the backend while draining its progress lines into `emit`
/// (called on the request thread only). Returns the backend result.
fn run_with_progress(
    ctx: &Ctx,
    spec: &MeasureSpec,
    mut emit: impl FnMut(String) -> std::io::Result<()>,
) -> std::io::Result<Result<MeasureOutput, BackendError>> {
    use std::sync::atomic::AtomicBool as Flag;
    let done = Flag::new(false);
    let slot: Mutex<Option<Result<MeasureOutput, BackendError>>> = Mutex::new(None);
    let lines: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let backend = Arc::clone(&ctx.backend);
    std::thread::scope(|scope| -> std::io::Result<()> {
        scope.spawn(|| {
            let result = backend.measure(spec, &mut |line| {
                lines.lock().expect("progress mutex poisoned").push(line);
            });
            *slot.lock().expect("result mutex poisoned") = Some(result);
            done.store(true, Ordering::Release);
        });
        let started = Instant::now();
        let mut last_heartbeat = 0u64;
        loop {
            let finished = done.load(Ordering::Acquire);
            let drained: Vec<String> =
                std::mem::take(&mut *lines.lock().expect("progress mutex poisoned"));
            for line in drained {
                emit(line)?;
            }
            if finished {
                return Ok(());
            }
            let elapsed_ms = started.elapsed().as_millis() as u64;
            if elapsed_ms >= last_heartbeat + 1000 {
                last_heartbeat = elapsed_ms;
                let mut line = String::from("{\"ev\":\"serve.progress\",\"elapsed_ms\":");
                line.push_str(&elapsed_ms.to_string());
                line.push_str(",\"queue_depth\":");
                line.push_str(&mcast_obs::gauge("serve.queue_depth").get().to_string());
                line.push_str(",\"cache_hit\":");
                line.push_str(&mcast_obs::counter("serve.cache.hit").get().to_string());
                line.push_str(",\"cache_miss\":");
                line.push_str(&mcast_obs::counter("serve.cache.miss").get().to_string());
                line.push('}');
                emit(line)?;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    })?;
    Ok(slot
        .into_inner()
        .expect("result mutex poisoned")
        .expect("backend thread always fills the slot"))
}

fn handle_measure(ctx: &Ctx, req: &Request, out: &mut dyn Write) -> std::io::Result<ResponseInfo> {
    if let Some(resp) = check_quota(ctx, req, out)? {
        return Ok(resp);
    }
    let (mut spec, stream) = match parse_measure_spec(ctx, &req.body) {
        Ok(parsed) => parsed,
        Err((status, code, message)) => {
            return send_error(out, status, code, &message, &[], &[]);
        }
    };
    spec.request_id = ctx.next_request_id.fetch_add(1, Ordering::Relaxed);
    let key = ctx.backend.query_key(&spec);
    let _span = mcast_obs::span_at(format!("serve.measure.{}", spec.kind.name()));

    // Single-flight: at most one thread executes a given key at a time.
    let (outcome, source) = match ctx.flights.join(&key) {
        FlightRole::Memoized(outcome) => (outcome, "memo"),
        FlightRole::Follower(outcome) => (outcome, "flight"),
        FlightRole::Leader => {
            mcast_obs::gauge("serve.inflight").add(1);
            let result = if stream {
                lead_streamed(ctx, &spec, &key, out)
            } else {
                lead_unary(ctx, &spec, &key)
            };
            mcast_obs::gauge("serve.inflight").add(-1);
            match result {
                // Streamed leaders already wrote the response.
                Ok(LeaderOutput::Streamed(info)) => return Ok(info),
                Ok(LeaderOutput::Done(outcome)) => (outcome, "lead"),
                Err(io_err) => {
                    // The connection died mid-execution; retire the
                    // flight with an error outcome so followers are
                    // not stranded, then propagate the IO error.
                    let body = error_body(
                        500,
                        "io_error",
                        &format!("leader connection failed: {io_err}"),
                        &[],
                    );
                    ctx.flights.complete(
                        &key,
                        Arc::new(Outcome {
                            body: Arc::new(body.into_bytes()),
                            is_error: true,
                            cache_hit: false,
                        }),
                    );
                    return Err(io_err);
                }
            }
        }
    };

    if source != "lead" {
        mcast_obs::counter("serve.cache.hit").add(1);
    }
    let status = if outcome.is_error { 500 } else { 200 };
    let cache_header = if outcome.is_error {
        "error"
    } else if source == "lead" && !outcome.cache_hit {
        "miss"
    } else {
        "hit"
    };
    if stream {
        let mut bytes_out = 0u64;
        count_write(out, &chunked_head(status, "application/x-jsonl"), &mut bytes_out)?;
        let mut line = String::from("{\"ev\":\"serve.join\",\"source\":");
        write_str(&mut line, source);
        line.push('}');
        line.push('\n');
        count_write(out, &chunk(line.as_bytes()), &mut bytes_out)?;
        let mut final_line = Vec::with_capacity(outcome.body.len() + 1);
        final_line.extend_from_slice(&outcome.body);
        final_line.push(b'\n');
        count_write(out, &chunk(&final_line), &mut bytes_out)?;
        count_write(out, CHUNK_END, &mut bytes_out)?;
        out.flush()?;
        finish_counts(status, bytes_out);
        Ok(ResponseInfo {
            status,
            bytes_out,
            streamed: true,
        })
    } else {
        send_unary(out, status, &outcome.body, &[("X-Cache", cache_header)])
    }
}

enum LeaderOutput {
    /// Non-streamed: outcome for the caller to render.
    Done(Arc<Outcome>),
    /// Streamed: the response has been fully written already.
    Streamed(ResponseInfo),
}

fn execute(ctx: &Ctx, spec: &MeasureSpec, key: &str, result: Result<MeasureOutput, BackendError>) -> Arc<Outcome> {
    let outcome = match result {
        Ok(output) => {
            if output.cache_hit {
                mcast_obs::counter("serve.cache.hit").add(1);
            } else {
                mcast_obs::counter("serve.cache.miss").add(1);
                mcast_obs::counter("serve.exec").add(1);
            }
            Arc::new(Outcome {
                body: Arc::new(output.body),
                is_error: false,
                cache_hit: output.cache_hit,
            })
        }
        Err(err) => {
            mcast_obs::counter("serve.cache.miss").add(1);
            mcast_obs::counter("serve.exec").add(1);
            mcast_obs::warn!(
                "serve",
                "measurement {key} failed for request {}: {}",
                spec.request_id,
                err.message
            );
            Arc::new(Outcome {
                body: Arc::new(backend_error_payload(&err).into_bytes()),
                is_error: true,
                cache_hit: false,
            })
        }
    };
    ctx.flights.complete(key, Arc::clone(&outcome));
    outcome
}

fn lead_unary(ctx: &Ctx, spec: &MeasureSpec, key: &str) -> std::io::Result<LeaderOutput> {
    let result = run_with_progress(ctx, spec, |_line| Ok(()))?;
    Ok(LeaderOutput::Done(execute(ctx, spec, key, result)))
}

fn finish_counts(status: u16, bytes_out: u64) {
    if status < 400 {
        mcast_obs::counter("serve.request.ok").add(1);
    } else {
        mcast_obs::counter("serve.request.error").add(1);
    }
    mcast_obs::counter("serve.bytes_out").add(bytes_out);
}

fn lead_streamed(
    ctx: &Ctx,
    spec: &MeasureSpec,
    key: &str,
    out: &mut dyn Write,
) -> std::io::Result<LeaderOutput> {
    // The stream must start before the outcome is known, so a failed
    // measurement is reported in-band: a final `error` JSONL line
    // inside a 200 chunked response.
    let mut bytes_out = 0u64;
    count_write(out, &chunked_head(200, "application/x-jsonl"), &mut bytes_out)?;
    let mut line = String::from("{\"ev\":\"serve.join\",\"source\":\"lead\",\"key\":");
    write_str(&mut line, key);
    line.push('}');
    line.push('\n');
    count_write(out, &chunk(line.as_bytes()), &mut bytes_out)?;
    out.flush()?;
    let result = run_with_progress(ctx, spec, |mut line| {
        line.push('\n');
        count_write(out, &chunk(line.as_bytes()), &mut bytes_out)?;
        out.flush()
    })?;
    let outcome = execute(ctx, spec, key, result);
    let mut final_line = Vec::with_capacity(outcome.body.len() + 1);
    final_line.extend_from_slice(&outcome.body);
    final_line.push(b'\n');
    count_write(out, &chunk(&final_line), &mut bytes_out)?;
    count_write(out, CHUNK_END, &mut bytes_out)?;
    out.flush()?;
    let status = if outcome.is_error { 500 } else { 200 };
    finish_counts(status, bytes_out);
    Ok(LeaderOutput::Streamed(ResponseInfo {
        status,
        bytes_out,
        streamed: true,
    }))
}
