//! Hand-rolled HTTP/1.1 subset + JSONL framing.
//!
//! The daemon speaks just enough HTTP/1.1 for `curl` and any stock
//! client library, without pulling an async stack into a std-only
//! workspace:
//!
//! * Requests: one request per connection (`Connection: close`
//!   semantics), request line + headers terminated by CRLFCRLF, body
//!   delimited by `Content-Length`. `Transfer-Encoding` on *requests* is
//!   rejected (501) — uploads are bounded and sized up front so
//!   admission control can shed oversized bodies before buffering them.
//! * Responses: either a sized body (`Content-Length`) or a
//!   `Transfer-Encoding: chunked` stream of JSONL event lines (one JSON
//!   object per chunk) so a client can watch a cold query converge.
//!
//! [`RequestParser`] is incremental: bytes arrive in arbitrary TCP
//! segments and `feed` may be called with any split of the stream — the
//! property suite in `tests/protocol_props.rs` drives every framing
//! path through adversarial split points. [`parse_response`] is the
//! matching client-side decoder used by tests, the bench harness, and
//! the CI smoke client.

use mcast_obs::json::{write_str, Value};
use std::fmt;

/// Hard ceiling on request-line + header bytes: a client that cannot
/// say what it wants in 16 KiB is not speaking this protocol.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default ceiling on request bodies (topology uploads dominate;
/// million-edge MCTB payloads fit comfortably). Servers may lower it.
pub const DEFAULT_MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, percent-decoded (`/v1/measure`).
    pub path: String,
    /// Query parameters in arrival order, percent-decoded.
    pub query: Vec<(String, String)>,
    /// Headers in arrival order; names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// First query parameter with this name.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be framed. Each variant maps to one HTTP
/// status so the server can answer malformed clients deterministically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The request line was not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine,
    /// A header line had no `:` separator or a non-ASCII name.
    BadHeader,
    /// Request line + headers exceeded [`MAX_HEAD_BYTES`].
    HeadTooLarge,
    /// `Content-Length` was present but not a decimal integer.
    BadContentLength,
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's ceiling.
        limit: usize,
    },
    /// The request carried `Transfer-Encoding` (unsupported on uploads).
    UnsupportedTransferEncoding,
    /// The connection closed before the framed request completed.
    UnexpectedEof,
}

impl ProtocolError {
    /// The HTTP status this framing error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ProtocolError::BodyTooLarge { .. } => 413,
            ProtocolError::HeadTooLarge => 431,
            ProtocolError::UnsupportedTransferEncoding => 501,
            _ => 400,
        }
    }

    /// Machine-readable error code for the JSON payload.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::BadRequestLine => "bad_request_line",
            ProtocolError::BadHeader => "bad_header",
            ProtocolError::HeadTooLarge => "head_too_large",
            ProtocolError::BadContentLength => "bad_content_length",
            ProtocolError::BodyTooLarge { .. } => "body_too_large",
            ProtocolError::UnsupportedTransferEncoding => "unsupported_transfer_encoding",
            ProtocolError::UnexpectedEof => "unexpected_eof",
        }
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadRequestLine => write!(f, "malformed request line"),
            ProtocolError::BadHeader => write!(f, "malformed header line"),
            ProtocolError::HeadTooLarge => {
                write!(f, "request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            ProtocolError::BadContentLength => write!(f, "content-length is not an integer"),
            ProtocolError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds the {limit}-byte limit")
            }
            ProtocolError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding is not supported on requests")
            }
            ProtocolError::UnexpectedEof => write!(f, "connection closed mid-request"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Incremental request parser: call [`RequestParser::feed`] with each
/// received segment; `Ok(Some(_))` once the full request (head + body)
/// has arrived. Bytes past the framed request are ignored (the server
/// answers one request per connection).
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    max_body: usize,
    /// Parsed head + how many body bytes it still needs.
    head: Option<(Request, usize)>,
    /// Where the body starts in `buf` once the head is parsed.
    body_start: usize,
}

impl RequestParser {
    /// A parser that rejects bodies larger than `max_body` bytes.
    pub fn new(max_body: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_body,
            head: None,
            body_start: 0,
        }
    }

    /// Feed one received segment. Returns the completed request once
    /// everything (head and declared body) has arrived, `None` while
    /// more bytes are needed.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<Option<Request>, ProtocolError> {
        self.buf.extend_from_slice(bytes);
        if self.head.is_none() {
            // Find CRLFCRLF, rescanning only the suffix that could
            // newly contain it.
            let from = self.buf.len().saturating_sub(bytes.len() + 3);
            let Some(end) = find_subslice(&self.buf[from..], b"\r\n\r\n").map(|i| from + i)
            else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(ProtocolError::HeadTooLarge);
                }
                return Ok(None);
            };
            if end > MAX_HEAD_BYTES {
                return Err(ProtocolError::HeadTooLarge);
            }
            let head_text = std::str::from_utf8(&self.buf[..end])
                .map_err(|_| ProtocolError::BadHeader)?
                .to_string();
            let (request, body_len) = parse_head(&head_text, self.max_body)?;
            self.head = Some((request, body_len));
            self.body_start = end + 4;
        }
        let (_, body_len) = self.head.as_ref().expect("head parsed above");
        if self.buf.len() >= self.body_start + body_len {
            let (mut request, body_len) = self.head.take().expect("head parsed above");
            request.body = self.buf[self.body_start..self.body_start + body_len].to_vec();
            Ok(Some(request))
        } else {
            Ok(None)
        }
    }

    /// Signal end-of-stream: an error unless nothing was ever fed.
    pub fn finish(&self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::UnexpectedEof)
        }
    }
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

fn parse_head(head: &str, max_body: usize) -> Result<(Request, usize), ProtocolError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or(ProtocolError::BadRequestLine)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().filter(|m| !m.is_empty()).ok_or(ProtocolError::BadRequestLine)?;
    let target = parts.next().ok_or(ProtocolError::BadRequestLine)?;
    let version = parts.next().ok_or(ProtocolError::BadRequestLine)?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ProtocolError::BadRequestLine);
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path).ok_or(ProtocolError::BadRequestLine)?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((
                percent_decode(k).ok_or(ProtocolError::BadRequestLine)?,
                percent_decode(v).ok_or(ProtocolError::BadRequestLine)?,
            ));
        }
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ProtocolError::BadHeader)?;
        let name = name.trim();
        if name.is_empty() || !name.is_ascii() {
            return Err(ProtocolError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let request = Request {
        method: method.to_ascii_uppercase(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(ProtocolError::UnsupportedTransferEncoding);
    }
    let body_len = match request.header("content-length") {
        Some(v) => v.parse::<usize>().map_err(|_| ProtocolError::BadContentLength)?,
        None => 0,
    };
    if body_len > max_body {
        return Err(ProtocolError::BodyTooLarge {
            declared: body_len,
            limit: max_body,
        });
    }
    Ok((request, body_len))
}

/// Decode `%XX` escapes and `+` (as space); `None` on truncated or
/// non-hex escapes or invalid UTF-8.
fn percent_decode(s: &str) -> Option<String> {
    if !s.contains('%') && !s.contains('+') {
        return Some(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Frame a sized (non-streaming) response.
pub fn unary_response(
    code: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status_text(code),
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Head of a chunked (streaming) response; follow with [`chunk`] frames
/// and a final [`CHUNK_END`].
pub fn chunked_head(code: u16, content_type: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
        status_text(code)
    )
    .into_bytes()
}

/// One chunk frame (hex length, CRLF, data, CRLF). Empty input framing
/// is the terminator's job — use [`CHUNK_END`] for that.
pub fn chunk(data: &[u8]) -> Vec<u8> {
    let mut out = format!("{:x}\r\n", data.len()).into_bytes();
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
    out
}

/// The chunked-stream terminator.
pub const CHUNK_END: &[u8] = b"0\r\n\r\n";

/// A decoded response (client side: tests, bench, CI smoke client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// The de-chunked (or sized) body.
    pub body: Vec<u8>,
    /// Individual chunk payloads when the response was chunked.
    pub chunks: Option<Vec<Vec<u8>>>,
}

impl ParsedResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == lower)
            .map(|(_, v)| v.as_str())
    }

    /// The body as JSONL lines (streamed responses emit one JSON object
    /// per line).
    pub fn jsonl_lines(&self) -> Vec<&str> {
        std::str::from_utf8(&self.body)
            .ok()
            .map(|text| text.lines().filter(|l| !l.trim().is_empty()).collect())
            .unwrap_or_default()
    }
}

/// Decode a complete response byte stream (read until connection
/// close). Handles sized and chunked bodies.
pub fn parse_response(bytes: &[u8]) -> Result<ParsedResponse, ProtocolError> {
    let head_end = find_subslice(bytes, b"\r\n\r\n").ok_or(ProtocolError::UnexpectedEof)?;
    let head =
        std::str::from_utf8(&bytes[..head_end]).map_err(|_| ProtocolError::BadHeader)?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or(ProtocolError::BadRequestLine)?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().ok_or(ProtocolError::BadRequestLine)?;
    if !version.starts_with("HTTP/1.") {
        return Err(ProtocolError::BadRequestLine);
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ProtocolError::BadRequestLine)?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ProtocolError::BadHeader)?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let after_head = &bytes[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    if chunked {
        let mut body = Vec::new();
        let mut chunks = Vec::new();
        let mut rest = after_head;
        loop {
            let line_end = find_subslice(rest, b"\r\n").ok_or(ProtocolError::UnexpectedEof)?;
            let len_text =
                std::str::from_utf8(&rest[..line_end]).map_err(|_| ProtocolError::BadHeader)?;
            let len = usize::from_str_radix(len_text.trim(), 16)
                .map_err(|_| ProtocolError::BadContentLength)?;
            rest = &rest[line_end + 2..];
            if len == 0 {
                break;
            }
            let data = rest.get(..len).ok_or(ProtocolError::UnexpectedEof)?;
            body.extend_from_slice(data);
            chunks.push(data.to_vec());
            rest = rest.get(len + 2..).ok_or(ProtocolError::UnexpectedEof)?;
        }
        Ok(ParsedResponse {
            status,
            headers,
            body,
            chunks: Some(chunks),
        })
    } else {
        let len = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .map(|(_, v)| v.parse::<usize>().map_err(|_| ProtocolError::BadContentLength))
            .transpose()?
            .unwrap_or(after_head.len());
        let body = after_head.get(..len).ok_or(ProtocolError::UnexpectedEof)?;
        Ok(ParsedResponse {
            status,
            headers,
            body: body.to_vec(),
            chunks: None,
        })
    }
}

/// Render the structured error payload every non-2xx answer carries:
///
/// ```json
/// {"error":{"status":429,"code":"quota_exhausted","message":"…",…}}
/// ```
///
/// `extra` fields are appended inside the `error` object — the partial-
/// failure mapping uses them for `completed` and per-group coordinates.
pub fn error_body(status: u16, code: &str, message: &str, extra: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(96 + message.len());
    out.push_str("{\"error\":{\"status\":");
    out.push_str(&status.to_string());
    out.push_str(",\"code\":");
    write_str(&mut out, code);
    out.push_str(",\"message\":");
    write_str(&mut out, message);
    for (k, v) in extra {
        out.push(',');
        write_str(&mut out, k);
        out.push(':');
        v.write(&mut out);
    }
    out.push_str("}}");
    out
}

/// Encode a request (client side). `headers` should not include
/// `Content-Length` — it is derived from `body`.
pub fn encode_request(
    method: &str,
    target: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Vec<u8> {
    let mut head = format!("{method} {target} HTTP/1.1\r\n");
    for (k, v) in headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    if !body.is_empty() || method == "POST" || method == "PUT" {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(raw: &[u8], max_body: usize) -> Result<Option<Request>, ProtocolError> {
        let mut p = RequestParser::new(max_body);
        p.feed(raw)
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = feed_all(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n", 1024)
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/health");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let req = feed_all(
            b"GET /v1/topo?name=a%20b&stream=1&flag HTTP/1.1\r\n\r\n",
            1024,
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.query_param("name"), Some("a b"));
        assert_eq!(req.query_param("stream"), Some("1"));
        assert_eq!(req.query_param("flag"), Some(""));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn body_arrives_across_arbitrary_splits() {
        let raw = b"POST /v1/measure HTTP/1.1\r\nContent-Length: 11\r\nX-Client-Id: c1\r\n\r\nhello world";
        for split in 0..raw.len() {
            let mut p = RequestParser::new(1024);
            let first = p.feed(&raw[..split]).unwrap();
            if let Some(req) = first {
                assert_eq!(req.body, b"hello world");
                continue;
            }
            let req = p.feed(&raw[split..]).unwrap().expect("complete");
            assert_eq!(req.method, "POST");
            assert_eq!(req.header("x-client-id"), Some("c1"));
            assert_eq!(req.body, b"hello world");
        }
    }

    #[test]
    fn rejects_malformed_frames() {
        assert_eq!(
            feed_all(b"BROKEN\r\n\r\n", 64).unwrap_err(),
            ProtocolError::BadRequestLine
        );
        assert_eq!(
            feed_all(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 64).unwrap_err(),
            ProtocolError::BadHeader
        );
        assert_eq!(
            feed_all(b"GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 64).unwrap_err(),
            ProtocolError::BadContentLength
        );
        assert_eq!(
            feed_all(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 64).unwrap_err(),
            ProtocolError::UnsupportedTransferEncoding
        );
        let err = feed_all(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 64).unwrap_err();
        assert_eq!(
            err,
            ProtocolError::BodyTooLarge {
                declared: 100,
                limit: 64
            }
        );
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn oversized_head_is_rejected_even_unterminated() {
        let mut p = RequestParser::new(64);
        let garbage = vec![b'a'; MAX_HEAD_BYTES + 10];
        assert_eq!(p.feed(&garbage).unwrap_err(), ProtocolError::HeadTooLarge);
    }

    #[test]
    fn unary_response_round_trips() {
        let raw = unary_response(200, "application/json", b"{\"ok\":true}", &[("X-A", "b")]);
        let resp = parse_response(&raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.header("x-a"), Some("b"));
        assert_eq!(resp.body, b"{\"ok\":true}");
        assert!(resp.chunks.is_none());
    }

    #[test]
    fn chunked_response_round_trips() {
        let mut raw = chunked_head(200, "application/x-jsonl");
        raw.extend_from_slice(&chunk(b"{\"ev\":\"a\"}\n"));
        raw.extend_from_slice(&chunk(b"{\"ev\":\"b\"}\n"));
        raw.extend_from_slice(CHUNK_END);
        let resp = parse_response(&raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.chunks.as_ref().unwrap().len(), 2);
        assert_eq!(resp.jsonl_lines(), vec!["{\"ev\":\"a\"}", "{\"ev\":\"b\"}"]);
    }

    #[test]
    fn error_body_is_valid_json_with_extras() {
        let body = error_body(
            429,
            "quota_exhausted",
            "client `c1` is out of tokens",
            &[("retry_after_ms", Value::U64(250))],
        );
        let v = mcast_obs::json::parse(&body).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("status").unwrap().as_u64(), Some(429));
        assert_eq!(e.get("code").unwrap().as_str(), Some("quota_exhausted"));
        assert_eq!(e.get("retry_after_ms").unwrap().as_u64(), Some(250));
    }
}
