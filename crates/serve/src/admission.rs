//! Admission control: a bounded connection queue between the acceptor
//! and the worker pool.
//!
//! The acceptor thread never blocks on request work; it pushes each
//! accepted connection into this queue. When the queue is full the
//! server *load-sheds*: the connection is answered straight from the
//! acceptor with a 503 + `Retry-After` and closed, so overload degrades
//! into fast, explicit rejections instead of unbounded latency. The
//! current depth is exported as the `serve.queue_depth` gauge.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue is at capacity — shed the connection.
    Full,
    /// The queue is closed (shutdown in progress).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with blocking pop, built on `Mutex` + `Condvar`
/// (std-only; no crossbeam in this crate).
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `cap` items (minimum 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("admission mutex poisoned").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push; on rejection the item is handed back so the
    /// caller can shed it (answer 503 and close, for connections).
    pub fn try_push(&self, item: T) -> Result<(), (T, AdmissionError)> {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        if state.closed {
            return Err((item, AdmissionError::Closed));
        }
        if state.items.len() >= self.cap {
            return Err((item, AdmissionError::Full));
        }
        state.items.push_back(item);
        mcast_obs::gauge("serve.queue_depth").set(state.items.len() as i64);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once the queue is closed *and* drained —
    /// the worker-pool exit signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                mcast_obs::gauge("serve.queue_depth").set(state.items.len() as i64);
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("admission mutex poisoned");
        }
    }

    /// Close the queue: future pushes fail, queued items still drain,
    /// and poppers wake up to observe the close.
    pub fn close(&self) {
        let mut state = self.state.lock().expect("admission mutex poisoned");
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_recovers() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err((3, AdmissionError::Full)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err((3, AdmissionError::Closed)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_poppers_wake_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}
