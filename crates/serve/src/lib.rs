//! `mcast-serve`: measurement-as-a-service for the multicast-scaling
//! workspace.
//!
//! ROADMAP item 3 in one crate: the content-addressed result cache and
//! fault-isolated scheduler already answer `N(m)`/`L̂(m)` queries — this
//! crate puts a daemon in front of them so *many concurrent clients*
//! can ask, which is the regime where the Chuang–Sirbu scaling question
//! actually lives (an operator observing tree cost across millions of
//! group-size queries).
//!
//! Layers, bottom-up:
//!
//! * [`protocol`] — hand-rolled HTTP/1.1 subset + JSONL streaming
//!   (incremental parser, split-point tolerant; no hyper/tokio — the
//!   workspace is std-only below the experiment layer).
//! * [`admission`] — bounded connection queue between the acceptor and
//!   the worker pool; overflow is load-shed with a 503 at the door.
//! * [`quota`] — per-client token buckets (`X-Client-Id`), 429 with a
//!   retry hint when a client outruns its rate.
//! * [`registry`] — content-addressed topology catalogue (uploads are
//!   validated through the store's `try_from_csr` decode path) and the
//!   single-flight table that coalesces identical in-flight queries
//!   into one scheduler execution with shared, byte-identical bodies.
//! * [`router`] — the endpoint table, the [`router::Backend`] trait the
//!   experiment layer implements, and the structured error payloads
//!   that map exit-2 partial-failure semantics onto per-request JSON.
//! * [`server`] — acceptor + worker pool + request log + graceful
//!   drain.
//!
//! The crate deliberately knows nothing about measurement itself: the
//! scheduler/cache glue lives in `mcast-experiments`, which implements
//! [`router::Backend`] and wires `mcs serve`. DESIGN.md §12 documents
//! the protocol and its invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod protocol;
pub mod quota;
pub mod registry;
pub mod router;
pub mod server;

pub use admission::{AdmissionError, BoundedQueue};
pub use protocol::{
    encode_request, error_body, parse_response, ParsedResponse, ProtocolError, Request,
    RequestParser,
};
pub use quota::{QuotaConfig, QuotaDecision, Quotas};
pub use registry::{Flights, TopologyRegistry};
pub use router::{
    Backend, BackendError, GroupFailureInfo, MeasureOutput, MeasureSpec, QueryKind,
};
pub use server::{serve, ServeConfig, ServerHandle};
